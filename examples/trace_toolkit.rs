//! Trace toolkit: generate a calibrated synthetic trace, save it as
//! CSV, load it back, and inspect its statistics and NCL-metric
//! distribution (Table I and Fig. 4 in miniature).
//!
//! ```text
//! cargo run --release --example trace_toolkit
//! ```

use std::error::Error;

use dtn_coop_cache::core::ncl::metric_skew;
use dtn_coop_cache::prelude::*;
use dtn_coop_cache::trace::io::{read_trace, write_trace};
use dtn_coop_cache::trace::stats::{metric_distribution, TraceStats};
use dtn_coop_cache::trace::TracePreset;

fn main() -> Result<(), Box<dyn Error>> {
    for preset in TracePreset::ALL {
        // A 5% slice of each trace keeps this example snappy.
        let trace = SyntheticTraceBuilder::from_preset(preset)
            .scale(0.05)
            .seed(42)
            .build();

        // Round-trip through the CSV format.
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf)?;
        let restored = read_trace(&buf[..])?;
        assert_eq!(trace, restored, "CSV round-trip must be lossless");

        let stats = TraceStats::compute(&restored);
        println!("{:<12} {stats}", preset.name());

        // Fig. 4: how skewed is the NCL selection metric?
        let horizon = preset.ncl_horizon();
        let scores = metric_distribution(&restored, horizon.as_secs_f64());
        let skew = metric_skew(&scores);
        let top: Vec<String> = scores
            .iter()
            .take(preset.default_ncl_count())
            .map(|s| format!("{}={:.2}", s.node, s.metric))
            .collect();
        println!(
            "             metric skew at T = {horizon}: max/median = {:.1}x; top NCLs: {}",
            skew.max_over_median,
            top.join(" ")
        );
    }
    Ok(())
}
