//! Vehicular traffic information — the paper's VANET motivation: "the
//! availability of live traffic information about specific road
//! segments will be beneficial for nearby vehicles to avoid traffic
//! delays" (§I).
//!
//! Vehicles form a sparse, community-structured contact graph (roads /
//! districts). Traffic reports are small and expire quickly, so the
//! number of NCLs matters: this example sweeps `K` like Fig. 13 and
//! reports the knee.
//!
//! ```text
//! cargo run --release --example vanet_traffic_info
//! ```

use dtn_coop_cache::prelude::*;

fn main() {
    // 60 vehicles, 6 districts, strongly clustered contacts.
    let trace = SyntheticTraceBuilder::new(60)
        .duration(Duration::days(1))
        .target_contacts(40_000)
        .communities(6)
        .community_boost(6.0)
        .edge_density(0.12)
        .seed(3)
        .build();
    println!(
        "vehicular trace: {} vehicles, {} contacts over {}",
        trace.node_count(),
        trace.contact_count(),
        trace.duration(),
    );

    // Live traffic reports: 256 KiB, relevant for 45 minutes.
    let base = ExperimentConfig {
        mean_data_lifetime: Duration::minutes(45),
        mean_data_size: 256 << 10,
        buffer_range: (4 << 20, 12 << 20),
        ..ExperimentConfig::default()
    };

    println!(
        "\n{:>3} {:>10} {:>10} {:>14}",
        "K", "success", "delay (h)", "copies/item"
    );
    let mut best = (0usize, 0.0f64);
    for k in [1usize, 2, 3, 5, 8, 12] {
        let config = ExperimentConfig {
            ncl_count: k,
            ..base.clone()
        };
        let report = run_experiment(&trace, SchemeKind::Intentional, &config, 5);
        println!(
            "{k:>3} {:>10.3} {:>10.2} {:>14.2}",
            report.success_ratio, report.avg_delay_hours, report.avg_copies_per_item,
        );
        if report.success_ratio > best.1 {
            best = (k, report.success_ratio);
        }
    }
    if best.0 == 12 {
        println!(
            "\nbest K among those tested: {} ({:.3} successful ratio) — this dense \
             network has not hit the §VI-D knee yet; note the overhead column's growth",
            best.0, best.1
        );
    } else {
        println!(
            "\nbest K for this network: {} ({:.3} successful ratio) — more NCLs \
             than that only add caching overhead (§VI-D)",
            best.0, best.1
        );
    }
}
