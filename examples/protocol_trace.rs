//! Protocol trace: watch a single query travel through the intentional
//! caching scheme — push settling, query multicast, NCL broadcast,
//! probabilistic response, delivery (Fig. 5/6 of the paper, live).
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```

use dtn_coop_cache::cache::intentional::{IntentionalConfig, IntentionalScheme, ProtocolEvent};
use dtn_coop_cache::cache::{CachingScheme, NetworkSetup};
use dtn_coop_cache::core::ids::NodeId;
use dtn_coop_cache::core::time::Time;
use dtn_coop_cache::prelude::*;
use dtn_coop_cache::sim::engine::{SimConfig, Simulator};
use dtn_coop_cache::workload::{Workload, WorkloadConfig};

fn main() {
    let trace = SyntheticTraceBuilder::new(24)
        .duration(Duration::days(2))
        .target_contacts(10_000)
        .edge_density(0.3)
        .seed(11)
        .build();

    let scheme = IntentionalScheme::new(IntentionalConfig {
        ncl_count: 3,
        ..IntentionalConfig::default()
    })
    .enable_event_log();

    let mut sim = Simulator::new(&trace, scheme, SimConfig::default());
    let mid = trace.midpoint();
    sim.run_until(mid);
    let capacities: Vec<u64> = (0..trace.node_count() as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rt = sim.rate_table().clone();
    sim.scheme_mut().configure(&NetworkSetup {
        rate_table: &rt,
        now: mid,
        capacities,
        horizon: 3600.0 * 6.0,
        path_refresh: None,
    });
    println!("central nodes: {:?}\n", sim.scheme().central_nodes());

    let workload = Workload::generate(
        trace.node_count(),
        &WorkloadConfig {
            mean_lifetime: Duration::hours(10),
            mean_size: 2 << 20,
            seed: 11,
            ..WorkloadConfig::new((mid, Time(trace.duration().as_secs())))
        },
    );
    sim.add_workload(workload.into_events());
    sim.run_to_end();

    // Pick a delivered query with the richest lifecycle (reached a
    // central node, got broadcast, answered) and print it.
    let events = sim.scheme().events();
    let query_of = |e: &ProtocolEvent| match e {
        ProtocolEvent::QueryAtCentral { query, .. }
        | ProtocolEvent::BroadcastSpread { query, .. }
        | ProtocolEvent::ResponseSpawned { query, .. }
        | ProtocolEvent::Delivered { query, .. } => Some(*query),
        ProtocolEvent::PushSettled { .. } | ProtocolEvent::CentralReelected { .. } => None,
    };
    let delivered = events
        .iter()
        .filter_map(|e| match e {
            ProtocolEvent::Delivered { query, .. } => Some(*query),
            _ => None,
        })
        .max_by_key(|q| events.iter().filter(|e| query_of(e) == Some(*q)).count());
    match delivered {
        Some(q) => {
            println!("lifecycle of query {q}:");
            for e in events {
                let relevant = match e {
                    ProtocolEvent::QueryAtCentral { query, .. }
                    | ProtocolEvent::BroadcastSpread { query, .. }
                    | ProtocolEvent::ResponseSpawned { query, .. }
                    | ProtocolEvent::Delivered { query, .. } => *query == q,
                    ProtocolEvent::PushSettled { .. } | ProtocolEvent::CentralReelected { .. } => {
                        false
                    }
                };
                if relevant {
                    println!("  {e:?}");
                }
            }
        }
        None => println!("no query delivered in this run — try another seed"),
    }

    let settled = events
        .iter()
        .filter(|e| matches!(e, ProtocolEvent::PushSettled { .. }))
        .count();
    let m = sim.metrics();
    println!(
        "\n{} push copies settled; {}/{} queries satisfied (median delay {:?}{})",
        settled,
        m.queries_satisfied,
        m.queries_issued,
        m.median_delay(),
        // With a capped sample vector and no histogram the median is
        // computed from a biased prefix — say so.
        if m.delay_samples_capped() && m.delay_hist.is_none() {
            ", sampled"
        } else {
            ""
        },
    );
}
