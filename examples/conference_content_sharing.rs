//! Conference content sharing — the paper's Smartphone motivation:
//! "it is desirable that mobile users can find interesting digital
//! content from their nearby peers" (§I).
//!
//! Runs all five data-access schemes on an Infocom06-calibrated trace
//! (78 Bluetooth devices at a conference) and prints the comparison —
//! a single-column slice of Fig. 10.
//!
//! ```text
//! cargo run --release --example conference_content_sharing
//! ```

use dtn_coop_cache::prelude::*;
use dtn_coop_cache::trace::TracePreset;

fn main() {
    // A quarter-length Infocom06 stand-in keeps this example fast while
    // preserving contact density.
    let preset = TracePreset::Infocom06;
    let trace = SyntheticTraceBuilder::from_preset(preset)
        .scale(0.25)
        .seed(1)
        .build();
    println!(
        "{} stand-in: {} devices, {} contacts over {}",
        preset.name(),
        trace.node_count(),
        trace.contact_count(),
        trace.duration(),
    );

    // Conference content: photos and slide decks with 3-hour relevance.
    let config = ExperimentConfig {
        ncl_count: preset.default_ncl_count(),
        mean_data_lifetime: Duration::hours(3),
        mean_data_size: 10 << 20, // 10 MiB
        ..ExperimentConfig::default()
    };

    println!(
        "\n{:<14} {:>10} {:>10} {:>14}",
        "scheme", "success", "delay (h)", "copies/item"
    );
    for kind in SchemeKind::ALL {
        let report = run_experiment(&trace, kind, &config, 11);
        println!(
            "{:<14} {:>10.3} {:>10.2} {:>14.2}",
            kind.name(),
            report.success_ratio,
            report.avg_delay_hours,
            report.avg_copies_per_item,
        );
    }
}
