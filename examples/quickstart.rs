//! Quickstart: run the paper's intentional NCL caching scheme on a
//! small synthetic DTN and print the three evaluation metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dtn_coop_cache::prelude::*;

fn main() {
    // A 30-node opportunistic network observed for four days, with a
    // heterogeneous contact pattern (a few hubs, many peripheral nodes).
    let trace = SyntheticTraceBuilder::new(30)
        .duration(Duration::days(4))
        .target_contacts(20_000)
        .edge_density(0.25)
        .seed(7)
        .build();
    println!(
        "trace: {} nodes, {} contacts over {}",
        trace.node_count(),
        trace.contact_count(),
        trace.duration(),
    );

    // Paper-style experiment: first half warm-up, second half workload.
    let config = ExperimentConfig {
        ncl_count: 3,
        mean_data_lifetime: Duration::hours(12),
        mean_data_size: 4 << 20, // 4 MiB
        buffer_range: (32 << 20, 96 << 20),
        ..ExperimentConfig::default()
    };

    let report = run_experiment(&trace, SchemeKind::Intentional, &config, 42);
    println!("central nodes: {:?}", report.central_nodes);
    println!("queries issued:      {}", report.queries_issued);
    println!("successful ratio:    {:.3}", report.success_ratio);
    println!("data access delay:   {:.2} h", report.avg_delay_hours);
    println!(
        "caching overhead:    {:.2} copies/item",
        report.avg_copies_per_item
    );

    // The same run without caching, for contrast.
    let baseline = run_experiment(&trace, SchemeKind::NoCache, &config, 42);
    println!(
        "vs NoCache:          {:.3} successful ratio, {:.2} h delay",
        baseline.success_ratio, baseline.avg_delay_hours
    );
}
