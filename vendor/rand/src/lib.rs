//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `rand` the project actually uses:
//! [`SeedableRng`], the [`Rng`] extension trait with `gen_range` /
//! `gen_bool`, and a deterministic [`rngs::StdRng`] built on
//! xoshiro256++ seeded through splitmix64. The implementation is
//! self-contained, allocation-free and reproducible across platforms —
//! the properties the simulator actually relies on. It makes no attempt
//! to match upstream `rand`'s value streams.

/// A random number generator core: a source of uniform `u64` words.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a small integer seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire's method
/// degenerates to a simple widening multiply here; the tiny residual
/// bias of `< 2^-64` is irrelevant for simulation workloads).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A value drawn uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator — the stand-in for
    /// `rand::rngs::StdRng`. Statistically strong for simulation use
    /// and byte-for-byte reproducible everywhere.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100)
            .any(|_| StdRng::seed_from_u64(7).gen_range(0u64..1000) != c.gen_range(0u64..1000));
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p={p}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn unit_values_cover_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0f64..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }
}
