//! Offline drop-in subset of the `criterion` crate API.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the slice of criterion the bench targets use: `Criterion`,
//! benchmark groups, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple calibrated wall-clock loop: each benchmark is warmed up,
//! an iteration count is chosen to fill the measurement window, and
//! the minimum ns/iter across `sample_size` samples is printed (the
//! minimum is the robust location estimator for wall-clock
//! microbenchmarks — scheduler and interrupt noise is strictly
//! additive, so the fastest sample is the closest to the true cost).
//! Passing
//! `--test` (as `cargo bench -- --test` does for smoke runs) executes
//! every benchmark body exactly once without timing, so CI can keep
//! benches compiling and running without paying for measurements.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs and times one benchmark body.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Minimum nanoseconds per iteration across the samples of the last
    /// `iter` call.
    pub last_ns: f64,
}

impl Bencher<'_> {
    /// Calls `routine` repeatedly and records its fastest-sample
    /// wall-clock cost (noise from preemption only ever slows a sample
    /// down, so the minimum is the most reproducible estimate).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.config.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and calibrate an iteration count that makes one
        // sample last roughly `sample_window`.
        let calibration_start = Instant::now();
        black_box(routine());
        let once = calibration_start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (self.config.sample_window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut best = f64::INFINITY;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            let sample = start.elapsed();
            best = best.min(sample.as_nanos() as f64 / per_sample as f64);
            total += sample;
            if total >= self.config.measurement_time {
                break;
            }
        }
        self.last_ns = best;
    }
}

/// Shared measurement configuration.
#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    sample_window: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            sample_window: Duration::from_millis(25),
            measurement_time: Duration::from_millis(600),
            test_mode: false,
            filter: None,
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.config.measurement_time = t;
        self
    }

    /// Applies command-line arguments (`--test` and a name filter).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.config.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                other if !other.starts_with('-') => {
                    self.config.filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        self
    }

    fn should_run(&self, id: &str) -> bool {
        self.config.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn report(&self, id: &str, ns: f64, ran: bool) {
        if !ran {
            return;
        }
        if self.config.test_mode {
            println!("{id}: ok (test mode)");
        } else {
            println!("{id}: {ns:.0} ns/iter ({:.3} ms)", ns / 1e6);
        }
    }

    /// Benchmarks one routine.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        if self.should_run(id) {
            let mut b = Bencher {
                config: &self.config,
                last_ns: 0.0,
            };
            f(&mut b);
            self.report(id, b.last_ns, true);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one routine with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.should_run(&full) {
            let mut b = Bencher {
                config: &self.criterion.config,
                last_ns: 0.0,
            };
            f(&mut b, input);
            self.criterion.report(&full, b.last_ns, true);
        }
        self
    }

    /// Benchmarks one routine within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.should_run(&full) {
            let mut b = Bencher {
                config: &self.criterion.config,
                last_ns: 0.0,
            };
            f(&mut b);
            self.criterion.report(&full, b.last_ns, true);
        }
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_format() {
        let id = BenchmarkId::new("f", 10);
        assert_eq!(id.id, "f/10");
        let id = BenchmarkId::from_parameter(42);
        assert_eq!(id.id, "42");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion::default();
        c.config.test_mode = true;
        let mut runs = 0;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
