//! Offline drop-in subset of the `proptest` crate API.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the slice of proptest the test-suite uses: the [`Strategy`]
//! trait with `prop_map`, range / tuple / `Just` / `any` / oneof /
//! collection strategies, the [`proptest!`] test macro and the
//! `prop_assert*` family. Test cases are generated from a deterministic
//! per-test seed so failures are reproducible; there is **no shrinking**
//! — a failing case panics with the generated inputs still printable via
//! the assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration. Only the number of generated cases is
/// configurable, mirroring `ProptestConfig::with_cases`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (subset of upstream
/// `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(0u64..=u64::MAX)
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(0u32..=u32::MAX)
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_bool(0.5)
    }
}

/// The result of [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over every value of `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Type-erased strategy arm used by [`prop_oneof!`].
pub type BoxedArm<T> = Box<dyn Fn(&mut StdRng) -> T>;

/// Boxes any strategy into a [`BoxedArm`] (used by `prop_oneof!`).
pub fn boxed_arm<S>(s: S) -> BoxedArm<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| s.generate(rng))
}

/// Uniform choice among type-erased strategies.
pub struct OneOf<T> {
    arms: Vec<BoxedArm<T>>,
}

impl<T> OneOf<T> {
    /// Builds a oneof strategy over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector of values from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of upstream's `prop` module path.
pub mod prop {
    pub use crate::collection;
}

/// Deterministic 64-bit FNV-1a hash, used to derive per-test seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Creates the RNG for one property run (stable across runs).
pub fn runner_rng(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(fnv1a(test_name.as_bytes()))
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body, aborting the
/// current case with a message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "property assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "property assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "property assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a), stringify!($b), left, right, file!(), line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "property assertion failed: {} == {} (left: {:?}, right: {:?}; {}) at {}:{}",
                stringify!($a), stringify!($b), left, right, format!($($fmt)+),
                file!(), line!()
            ));
        }
    }};
}

/// Discards the current case when its inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed_arm($arm)),+])
    };
}

/// Declares property tests: each `fn` runs its body over `cases`
/// randomly generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body Ok(()) })();
                    if let Err(message) = outcome {
                        panic!("{} (case {}/{} of {})",
                               message, case + 1, config.cases, stringify!($name));
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::runner_rng("self_test");
        let s = (1u32..5, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        for _ in 0..1000 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::runner_rng("oneof");
        let s = prop_oneof![Just(1u32), Just(2u32), 5u32..7];
        let mut seen = [false; 3];
        for _ in 0..200 {
            match s.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                5 | 6 => seen[2] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::runner_rng("vec");
        let s = prop::collection::vec(0u64..10, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_runs_and_passes(x in 0u64..100, y in 0u64..100) {
            prop_assume!(x != y);
            prop_assert!(x + y < 200, "x={x} y={y}");
            prop_assert_eq!(x + y, y + x);
        }
    }
}
