//! # dtn-coop-cache
//!
//! A complete reproduction of *"Supporting Cooperative Caching in
//! Disruption Tolerant Networks"* (Gao, Cao, Iyengar, Srivatsa —
//! ICDCS 2011) as a Rust workspace. This facade crate re-exports the
//! public API of every member crate:
//!
//! - [`core`] — opportunistic-path math, NCL selection, popularity,
//!   knapsack replacement (pure algorithms),
//! - [`trace`] — contact traces: synthetic generators calibrated to the
//!   paper's Table I, statistics, CSV I/O,
//! - [`sim`] — a discrete-event DTN simulator with bandwidth-limited
//!   transfers and finite buffers,
//! - [`cache`] — the paper's intentional NCL caching scheme, the
//!   NoCache / RandomCache / CacheData / BundleCache baselines, and the
//!   FIFO / LRU / Greedy-Dual-Size / utility-knapsack replacement
//!   policies,
//! - [`workload`] — data-generation and Zipf query workloads (§VI-A).
//!
//! # Quickstart
//!
//! ```
//! use dtn_coop_cache::prelude::*;
//!
//! // A small synthetic conference trace (Infocom05-like, scaled down).
//! let trace = SyntheticTraceBuilder::new(20)
//!     .duration(Duration::days(1))
//!     .seed(7)
//!     .build();
//!
//! // Run the paper's intentional caching scheme over it.
//! let config = ExperimentConfig {
//!     ncl_count: 2,
//!     mean_data_lifetime: Duration::hours(6),
//!     mean_data_size: 10 << 20,
//!     ..ExperimentConfig::default()
//! };
//! let report = run_experiment(&trace, SchemeKind::Intentional, &config, 42);
//! assert!(report.queries_issued > 0);
//! ```

pub use dtn_cache as cache;
pub use dtn_core as core;
pub use dtn_sim as sim;
pub use dtn_trace as trace;
pub use dtn_workload as workload;

/// Convenient glob import for examples and experiments.
pub mod prelude {
    pub use dtn_cache::experiment::{run_experiment, ExperimentConfig, ExperimentReport};
    pub use dtn_cache::replacement::ReplacementKind;
    pub use dtn_cache::SchemeKind;
    pub use dtn_core::graph::ContactGraph;
    pub use dtn_core::ids::{DataId, NodeId, QueryId};
    pub use dtn_core::ncl::select_central_nodes;
    pub use dtn_core::time::{Duration, Time};
    pub use dtn_sim::overlay::{OverlayKind, OverlaySource, RegimeOverlay};
    pub use dtn_trace::process::ContactProcessKind;
    pub use dtn_trace::synthetic::SyntheticTraceBuilder;
    pub use dtn_trace::trace::ContactTrace;
    pub use dtn_trace::TracePreset;
}
