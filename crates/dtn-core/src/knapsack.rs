//! Cache-replacement knapsack (Eq. 7) and probabilistic data selection
//! (Algorithm 1 of the paper).
//!
//! When two caching nodes meet, their cached items are pooled into a
//! selection set and the node nearer the central node solves a 0/1
//! knapsack: maximise total utility subject to its buffer size. The paper
//! solves it with dynamic programming in pseudo-polynomial time
//! `O(n·S_A)`; since buffers are hundreds of megabytes, this module
//! quantises sizes to a configurable `quantum` (rounding item sizes *up*,
//! so a returned selection always really fits).
//!
//! Algorithm 1 then makes the selection probabilistic: each DP-selected
//! item is only actually cached with probability equal to its utility, and
//! the knapsack is re-solved over the leftovers until the buffer is full
//! or nothing fits. This deliberately lets unpopular data survive with
//! non-negligible probability, protecting cumulative data accessibility
//! (§V-D-3).

use rand::Rng;

/// One candidate item for the cache-replacement knapsack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheItem {
    /// Item size in bytes (must be positive).
    pub size: u64,
    /// Item utility `u_i ∈ [0, 1]` — its popularity probability (Eq. 6).
    pub utility: f64,
}

/// Result of a deterministic knapsack solve.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Selection {
    /// Indices (into the input slice) of the selected items, ascending.
    pub indices: Vec<usize>,
    /// Sum of the selected utilities.
    pub total_utility: f64,
    /// Sum of the selected (true, unquantised) sizes.
    pub total_size: u64,
}

/// 0/1 knapsack solver with size quantisation.
///
/// The solver owns reusable scratch buffers (DP table, decision bits,
/// Algorithm-1 pools), so a long-lived solver performs no per-call heap
/// allocation once the buffers have grown to the working-set size: the
/// `*_in` methods return borrowed results, and the owned-result methods
/// merely copy out of the scratch.
///
/// # Example
///
/// ```
/// use dtn_core::knapsack::{CacheItem, KnapsackSolver};
///
/// let mut solver = KnapsackSolver::new(1);
/// let items = [
///     CacheItem { size: 4, utility: 0.9 },
///     CacheItem { size: 3, utility: 0.6 },
///     CacheItem { size: 3, utility: 0.5 },
/// ];
/// // capacity 6: the two small items (1.1) beat the big one (0.9)
/// let sel = solver.solve(&items, 6);
/// assert_eq!(sel.indices, vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct KnapsackSolver {
    quantum: u64,
    // Reusable scratch: grown on demand, never shrunk, so steady-state
    // calls allocate nothing.
    weights: Vec<usize>,
    dp: Vec<f64>,
    take: Vec<bool>,
    out: Selection,
    sel_pool: Vec<usize>,
    sel_pool_items: Vec<CacheItem>,
    sel_candidates: Vec<usize>,
    sel_taken: Vec<usize>,
    sel_out: Vec<usize>,
}

impl Default for KnapsackSolver {
    /// A solver with a 1 MB quantum, suitable for the paper's
    /// 20–200 MB items in 200–600 MB buffers.
    fn default() -> Self {
        KnapsackSolver::new(1 << 20)
    }
}

/// Upper bound on fruitless Algorithm-1 rounds before giving up, so that
/// pools of near-zero-utility items cannot spin forever.
const MAX_STALLED_ROUNDS: u32 = 8;

fn validate_items(items: &[CacheItem]) {
    for it in items {
        assert!(it.size > 0, "items must have positive size");
        assert!(
            it.utility.is_finite() && it.utility >= 0.0,
            "utility must be finite and non-negative, got {}",
            it.utility
        );
    }
}

impl KnapsackSolver {
    /// Creates a solver that quantises sizes to multiples of `quantum`
    /// bytes (item sizes round up, capacity rounds down — selections are
    /// always feasible at byte granularity).
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn new(quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        KnapsackSolver {
            quantum,
            weights: Vec::new(),
            dp: Vec::new(),
            take: Vec::new(),
            out: Selection::default(),
            sel_pool: Vec::new(),
            sel_pool_items: Vec::new(),
            sel_candidates: Vec::new(),
            sel_taken: Vec::new(),
            sel_out: Vec::new(),
        }
    }

    /// The configured quantum in bytes.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Solves the 0/1 knapsack exactly (at quantum granularity) by
    /// dynamic programming: maximise `Σ u_i` subject to `Σ s_i ≤ capacity`.
    ///
    /// Equivalent to [`solve_in`](Self::solve_in) but returns an owned
    /// `Selection` (one clone of the scratch result).
    ///
    /// # Panics
    ///
    /// Panics if an item has zero size or a utility that is negative or
    /// not finite.
    pub fn solve(&mut self, items: &[CacheItem], capacity: u64) -> Selection {
        self.solve_in(items, capacity).clone()
    }

    /// Solves the 0/1 knapsack into the solver's internal scratch and
    /// returns a borrow of the result — zero heap allocation once the
    /// scratch has grown to the working-set size.
    ///
    /// When every positive-utility item individually fits and their total
    /// quantised weight fits the capacity, the DP is skipped entirely: the
    /// optimum is exactly the positive-utility items in index order, which
    /// is also what the DP reconstruction produces (zero-utility items can
    /// never satisfy the strict `with > dp[w]` improvement test, and the
    /// additions run in the same ascending-index order, so even the f64
    /// `total_utility` is bit-identical to the DP path's).
    ///
    /// # Panics
    ///
    /// Same as [`solve`](Self::solve).
    pub fn solve_in(&mut self, items: &[CacheItem], capacity: u64) -> &Selection {
        validate_items(items);
        self.out.indices.clear();
        self.out.total_utility = 0.0;
        self.out.total_size = 0;
        let cap_units = (capacity / self.quantum) as usize;
        if cap_units == 0 || items.is_empty() {
            return &self.out;
        }
        self.weights.clear();
        self.weights.extend(
            items
                .iter()
                .map(|it| (it.size.div_ceil(self.quantum)) as usize),
        );

        // Fast path: everything worth taking fits at once.
        let mut total_w = 0usize;
        let mut individually_fit = true;
        for (&w_i, it) in self.weights.iter().zip(items) {
            if it.utility > 0.0 {
                if w_i > cap_units {
                    individually_fit = false;
                    break;
                }
                total_w = total_w.saturating_add(w_i);
            }
        }
        if individually_fit && total_w <= cap_units {
            for (i, it) in items.iter().enumerate() {
                if it.utility > 0.0 {
                    self.out.indices.push(i);
                    self.out.total_utility += it.utility;
                    self.out.total_size += it.size;
                }
            }
            return &self.out;
        }

        self.solve_dp(items, cap_units);
        &self.out
    }

    /// Full DP over `self.weights` (already filled for `items`) into
    /// `self.out` (already cleared).
    fn solve_dp(&mut self, items: &[CacheItem], cap_units: usize) {
        // dp[w] = best utility using a prefix of items within weight w;
        // `take[i][w]` records the decision for reconstruction.
        self.dp.clear();
        self.dp.resize(cap_units + 1, 0.0);
        self.take.clear();
        self.take.resize(items.len() * (cap_units + 1), false);
        for (i, (&w_i, it)) in self.weights.iter().zip(items).enumerate() {
            if w_i > cap_units {
                continue;
            }
            let row = i * (cap_units + 1);
            // The classic in-place row update walks w downward so every
            // read of dp[w - w_i] sees the previous row — but a reverse,
            // branchy loop defeats autovectorization. Equivalent flat
            // form: process blocks of width w_i from the top. Within a
            // block all reads land strictly below it (an index read this
            // row is only written in a later, lower block), so the body
            // is a forward, branchless select over disjoint src/dst
            // slices. Each cell's float op order is unchanged, and the
            // pre-zeroed take row makes `take[k] = better` identical to
            // the conditional write.
            let utility = it.utility;
            let mut hi = cap_units + 1;
            while hi > w_i {
                let lo = hi.saturating_sub(w_i).max(w_i);
                let (src, dst) = self.dp.split_at_mut(lo);
                let take_row = &mut self.take[row + lo..row + hi];
                let src = &src[lo - w_i..];
                for (k, (slot, taken)) in dst[..hi - lo].iter_mut().zip(take_row).enumerate() {
                    let with = src[k] + utility;
                    let cur = *slot;
                    let better = with > cur;
                    *slot = if better { with } else { cur };
                    *taken = better;
                }
                hi = lo;
            }
        }

        let mut w = cap_units;
        for i in (0..items.len()).rev() {
            if self.take[i * (cap_units + 1) + w] {
                self.out.indices.push(i);
                w -= self.weights[i];
            }
        }
        self.out.indices.reverse();
        self.out.total_utility = self.out.indices.iter().map(|&i| items[i].utility).sum();
        self.out.total_size = self.out.indices.iter().map(|&i| items[i].size).sum();
        debug_assert!(
            self.out.indices.windows(2).all(|w| w[0] < w[1]),
            "DP reconstruction must yield strictly ascending indices"
        );
        debug_assert!(
            self.out
                .indices
                .iter()
                .map(|&i| self.weights[i])
                .sum::<usize>()
                <= cap_units,
            "DP selection exceeds the quantised capacity"
        );
    }

    /// Greedy density-order approximation: picks items by descending
    /// `utility / size` while they fit. `O(n log n)` — useful when the
    /// DP's `capacity / quantum` table would be large — and never worse
    /// than half the optimum when combined with the best single item
    /// (the classic knapsack bound); this method returns the better of
    /// the two.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid items as [`solve`](Self::solve).
    pub fn solve_greedy(&self, items: &[CacheItem], capacity: u64) -> Selection {
        validate_items(items);
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| {
            let da = items[a].utility / items[a].size as f64;
            let db = items[b].utility / items[b].size as f64;
            db.total_cmp(&da).then(a.cmp(&b))
        });
        let mut indices = Vec::new();
        let mut free = capacity;
        let mut total_utility = 0.0;
        for i in order {
            if items[i].size <= free {
                free -= items[i].size;
                total_utility += items[i].utility;
                indices.push(i);
            }
        }
        indices.sort_unstable();
        // Compare against the single best-fitting item (2-approximation).
        let best_single = (0..items.len())
            .filter(|&i| items[i].size <= capacity)
            .max_by(|&a, &b| items[a].utility.total_cmp(&items[b].utility));
        if let Some(b) = best_single {
            if items[b].utility > total_utility {
                return Selection {
                    indices: vec![b],
                    total_utility: items[b].utility,
                    total_size: items[b].size,
                };
            }
        }
        let total_size = indices.iter().map(|&i| items[i].size).sum();
        Selection {
            indices,
            total_utility,
            total_size,
        }
    }

    /// Algorithm 1: probabilistic data selection.
    ///
    /// Equivalent to
    /// [`probabilistic_select_in`](Self::probabilistic_select_in) but
    /// returns an owned `Vec` (one copy of the scratch result).
    ///
    /// # Panics
    ///
    /// Panics on the same invalid items as [`solve`](Self::solve).
    pub fn probabilistic_select<R: Rng + ?Sized>(
        &mut self,
        items: &[CacheItem],
        capacity: u64,
        rng: &mut R,
    ) -> Vec<usize> {
        self.probabilistic_select_in(items, capacity, rng).to_vec()
    }

    /// Algorithm 1: probabilistic data selection, into internal scratch.
    ///
    /// Repeatedly solves the knapsack over the not-yet-selected items and
    /// walks the DP-selected candidates in decreasing utility order; each
    /// is actually cached with probability `u_i` (a Bernoulli experiment).
    /// Iteration continues — items that failed their coin flip get fresh
    /// chances — until the remaining capacity fits no remaining item, the
    /// pool empties, or a fixed number of consecutive rounds select
    /// nothing (guards against all-zero-utility pools).
    ///
    /// Returns the indices of the items to cache, in selection order. The
    /// RNG draw sequence is identical to the historical allocating
    /// implementation: one `gen_bool` per visited candidate, in the same
    /// visit order.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid items as [`solve`](Self::solve).
    pub fn probabilistic_select_in<R: Rng + ?Sized>(
        &mut self,
        items: &[CacheItem],
        capacity: u64,
        rng: &mut R,
    ) -> &[usize] {
        // Move the scratch vectors out so `self.solve_in` can be called
        // while they are live; moved back before returning.
        let mut selected = std::mem::take(&mut self.sel_out);
        let mut pool = std::mem::take(&mut self.sel_pool);
        let mut pool_items = std::mem::take(&mut self.sel_pool_items);
        let mut candidates = std::mem::take(&mut self.sel_candidates);
        let mut taken = std::mem::take(&mut self.sel_taken);
        selected.clear();
        let mut remaining_cap = capacity;
        // Pool of candidate indices still up for selection.
        pool.clear();
        pool.extend(0..items.len());
        let mut stalled = 0;

        loop {
            pool.retain(|&i| items[i].size <= remaining_cap);
            if pool.is_empty() || stalled >= MAX_STALLED_ROUNDS {
                break;
            }
            pool_items.clear();
            pool_items.extend(pool.iter().map(|&i| items[i]));
            let dp = self.solve_in(&pool_items, remaining_cap);
            if dp.indices.is_empty() {
                break;
            }
            // Visit DP-selected candidates by decreasing utility (the
            // paper's argmax loop over S').
            candidates.clear();
            candidates.extend_from_slice(&dp.indices);
            candidates.sort_by(|&a, &b| {
                pool_items[b]
                    .utility
                    .total_cmp(&pool_items[a].utility)
                    .then(a.cmp(&b))
            });
            let mut progressed = false;
            taken.clear();
            for &c in &candidates {
                let item = pool_items[c];
                if item.size <= remaining_cap && rng.gen_bool(item.utility.clamp(0.0, 1.0)) {
                    selected.push(pool[c]);
                    remaining_cap -= item.size;
                    taken.push(c);
                    progressed = true;
                }
            }
            // Remove the taken items from the pool (descending positions
            // so indices stay valid).
            taken.sort_unstable_by(|a, b| b.cmp(a));
            for &c in &taken {
                pool.swap_remove(c);
            }
            stalled = if progressed { 0 } else { stalled + 1 };
        }

        debug_assert!(
            selected.iter().map(|&i| items[i].size).sum::<u64>() <= capacity,
            "probabilistic selection exceeds the byte capacity"
        );
        self.sel_pool = pool;
        self.sel_pool_items = pool_items;
        self.sel_candidates = candidates;
        self.sel_taken = taken;
        self.sel_out = selected;
        &self.sel_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn items(specs: &[(u64, f64)]) -> Vec<CacheItem> {
        specs
            .iter()
            .map(|&(size, utility)| CacheItem { size, utility })
            .collect()
    }

    /// Exhaustive optimum for small instances.
    fn brute_force(items: &[CacheItem], capacity: u64) -> f64 {
        let mut best = 0.0f64;
        for mask in 0..(1u32 << items.len()) {
            let (mut size, mut value) = (0u64, 0.0f64);
            for (i, it) in items.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    size += it.size;
                    value += it.utility;
                }
            }
            if size <= capacity && value > best {
                best = value;
            }
        }
        best
    }

    /// Runs the full DP, bypassing the everything-fits fast path.
    fn solve_forced_dp(s: &mut KnapsackSolver, it: &[CacheItem], capacity: u64) -> Selection {
        validate_items(it);
        s.out.indices.clear();
        s.out.total_utility = 0.0;
        s.out.total_size = 0;
        let cap_units = (capacity / s.quantum) as usize;
        if cap_units == 0 || it.is_empty() {
            return s.out.clone();
        }
        s.weights.clear();
        s.weights
            .extend(it.iter().map(|x| (x.size.div_ceil(s.quantum)) as usize));
        s.solve_dp(it, cap_units);
        s.out.clone()
    }

    #[test]
    fn empty_inputs() {
        let mut s = KnapsackSolver::new(1);
        assert_eq!(s.solve(&[], 10), Selection::default());
        let it = items(&[(5, 0.5)]);
        assert_eq!(s.solve(&it, 0), Selection::default());
    }

    #[test]
    fn single_item_fits_or_not() {
        let mut s = KnapsackSolver::new(1);
        let it = items(&[(5, 0.5)]);
        assert_eq!(s.solve(&it, 5).indices, vec![0]);
        assert!(s.solve(&it, 4).indices.is_empty());
    }

    #[test]
    fn classic_instance_is_optimal() {
        let mut s = KnapsackSolver::new(1);
        let it = items(&[(4, 0.9), (3, 0.6), (3, 0.5), (2, 0.1)]);
        let sel = s.solve(&it, 6);
        assert_eq!(sel.indices, vec![1, 2]);
        assert!((sel.total_utility - 1.1).abs() < 1e-12);
        assert_eq!(sel.total_size, 6);
    }

    #[test]
    fn quantised_selection_still_fits_in_bytes() {
        // Sizes round UP under quantisation, so this 1000-quantum solver
        // must treat a 1500-byte item as 2 units and never overpack.
        let mut s = KnapsackSolver::new(1000);
        let it = items(&[(1500, 0.9), (1500, 0.8), (1500, 0.7)]);
        let sel = s.solve(&it, 4000);
        assert!(sel.total_size <= 4000);
        assert_eq!(sel.indices.len(), 2);
    }

    #[test]
    fn matches_brute_force_small_instances() {
        let mut s = KnapsackSolver::new(1);
        let it = items(&[(3, 0.2), (5, 0.9), (2, 0.3), (4, 0.55), (1, 0.05)]);
        for cap in 0..=15 {
            let dp = s.solve(&it, cap).total_utility;
            let bf = brute_force(&it, cap);
            assert!((dp - bf).abs() < 1e-9, "cap {cap}: {dp} vs {bf}");
        }
    }

    #[test]
    fn fast_path_matches_forced_dp() {
        // The everything-fits fast path must return exactly what the DP
        // would — same indices, bit-identical floats — including with
        // zero-utility items in the mix (the DP's strict improvement test
        // never takes them).
        let mut s = KnapsackSolver::new(1);
        let cases: &[Vec<CacheItem>] = &[
            items(&[(3, 0.2), (5, 0.0), (2, 0.3), (4, 0.55), (1, 0.05)]),
            items(&[(2, 0.0), (3, 0.0)]),
            items(&[(1, 1.0), (1, 0.5), (1, 0.25)]),
            items(&[(7, 0.9)]),
        ];
        for it in cases {
            let total: u64 = it.iter().map(|x| x.size).sum();
            for cap in 0..=total + 2 {
                let fast = s.solve(it, cap);
                let full = solve_forced_dp(&mut KnapsackSolver::new(1), it, cap);
                assert_eq!(fast, full, "cap {cap} items {it:?}");
            }
        }
    }

    #[test]
    fn blocked_dp_covers_every_seam() {
        // The row update runs in blocks of the item's weight, high to
        // low. Sweep weights against capacities around block multiples
        // (ragged first block, single-cell blocks, weight == capacity)
        // and check the optimum against brute force at every seam.
        for w_i in [1u64, 2, 3, 5, 7, 11] {
            for cap in w_i.saturating_sub(1)..=3 * w_i + 2 {
                let it = items(&[
                    (w_i, 0.7),
                    (w_i, 0.6),
                    (1, 0.05),
                    (w_i + 1, 0.9),
                    (2 * w_i, 1.1),
                ]);
                let mut s = KnapsackSolver::new(1);
                let dp = solve_forced_dp(&mut s, &it, cap).total_utility;
                let bf = brute_force(&it, cap);
                assert!((dp - bf).abs() < 1e-9, "w_i {w_i} cap {cap}: {dp} vs {bf}");
            }
        }
    }

    #[test]
    fn solve_in_reuses_scratch_across_calls() {
        // Back-to-back solves with different shapes must not leak state.
        let mut s = KnapsackSolver::new(1);
        let big = items(&[(4, 0.9), (3, 0.6), (3, 0.5), (2, 0.1)]);
        let small = items(&[(5, 0.5)]);
        assert_eq!(s.solve_in(&big, 6).indices, vec![1, 2]);
        assert_eq!(s.solve_in(&small, 5).indices, vec![0]);
        assert_eq!(s.solve_in(&big, 6).indices, vec![1, 2]);
        assert!(s.solve_in(&small, 4).indices.is_empty());
    }

    #[test]
    fn greedy_respects_capacity_and_half_bound() {
        let s = KnapsackSolver::new(1);
        let it = items(&[(3, 0.2), (5, 0.9), (2, 0.3), (4, 0.55), (1, 0.05)]);
        for cap in 0..=15u64 {
            let greedy = s.solve_greedy(&it, cap);
            let optimal = brute_force(&it, cap);
            assert!(greedy.total_size <= cap);
            assert!(
                greedy.total_utility >= 0.5 * optimal - 1e-9,
                "cap {cap}: greedy {} below half of {optimal}",
                greedy.total_utility
            );
        }
    }

    #[test]
    fn greedy_beats_density_trap_via_single_item() {
        // Density ordering alone would pick the small item (density 1.0)
        // and waste the space for the big high-utility one; the
        // best-single-item fallback rescues it.
        let s = KnapsackSolver::new(1);
        let it = items(&[(1, 0.1), (10, 0.9)]);
        let sel = s.solve_greedy(&it, 10);
        assert_eq!(sel.indices, vec![1]);
    }

    #[test]
    fn probabilistic_select_respects_capacity() {
        let mut s = KnapsackSolver::new(1);
        let it = items(&[(4, 0.9), (3, 0.8), (3, 0.7), (2, 0.95)]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let sel = s.probabilistic_select(&it, 6, &mut rng);
            let total: u64 = sel.iter().map(|&i| it[i].size).sum();
            assert!(total <= 6, "selection {sel:?} overflows");
            // no duplicates
            let mut sorted = sel.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), sel.len());
        }
    }

    #[test]
    fn certain_utility_items_are_always_taken() {
        let mut s = KnapsackSolver::new(1);
        let it = items(&[(2, 1.0), (2, 1.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = s.probabilistic_select(&it, 4, &mut rng);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn zero_utility_pool_terminates_empty() {
        let mut s = KnapsackSolver::new(1);
        let it = items(&[(2, 0.0), (3, 0.0)]);
        let mut rng = StdRng::seed_from_u64(1);
        let sel = s.probabilistic_select(&it, 10, &mut rng);
        assert!(sel.is_empty());
    }

    #[test]
    fn low_utility_items_sometimes_survive() {
        // The whole point of Algorithm 1: a 0.2-utility item must be
        // cached in a non-negligible fraction of runs.
        let mut s = KnapsackSolver::new(1);
        let it = items(&[(2, 0.2)]);
        let mut rng = StdRng::seed_from_u64(99);
        let mut hits = 0;
        for _ in 0..500 {
            if !s.probabilistic_select(&it, 2, &mut rng).is_empty() {
                hits += 1;
            }
        }
        // With ≤8 stalled rounds the per-run selection probability is
        // 1-(0.8)^k for k ∈ [1,8] retries; just require "clearly nonzero
        // and clearly not certain".
        assert!(hits > 50 && hits < 500, "hits={hits}");
    }

    #[test]
    fn probabilistic_select_draws_match_across_scratch_reuse() {
        // The same seed must produce the same selection whether the
        // solver is fresh or has warm scratch from unrelated calls.
        let it = items(&[(4, 0.9), (3, 0.8), (3, 0.7), (2, 0.95), (6, 0.4)]);
        let mut fresh = KnapsackSolver::new(1);
        let mut rng_a = StdRng::seed_from_u64(123);
        let fresh_sel = fresh.probabilistic_select(&it, 9, &mut rng_a);

        let mut warm = KnapsackSolver::new(1);
        let _ = warm.solve(&items(&[(1, 0.5), (2, 0.25)]), 3);
        let mut throwaway = StdRng::seed_from_u64(77);
        let _ = warm.probabilistic_select(&it, 5, &mut throwaway);
        let mut rng_b = StdRng::seed_from_u64(123);
        let warm_sel = warm.probabilistic_select(&it, 9, &mut rng_b);
        assert_eq!(fresh_sel, warm_sel);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_size_item_panics() {
        let mut s = KnapsackSolver::new(1);
        let _ = s.solve(&items(&[(0, 0.5)]), 10);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn zero_quantum_panics() {
        let _ = KnapsackSolver::new(0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn dp_matches_brute_force(
                specs in prop::collection::vec((1u64..20, 0.0f64..1.0), 1..10),
                cap in 0u64..60,
            ) {
                let it = items(&specs);
                let mut s = KnapsackSolver::new(1);
                let dp = s.solve(&it, cap);
                let bf = brute_force(&it, cap);
                prop_assert!((dp.total_utility - bf).abs() < 1e-9,
                    "{} vs {}", dp.total_utility, bf);
                prop_assert!(dp.total_size <= cap);
            }

            #[test]
            fn fast_path_indices_match_forced_dp(
                specs in prop::collection::vec((1u64..20, 0.0f64..1.0), 1..10),
                cap in 0u64..200,
            ) {
                let it = items(&specs);
                let mut s = KnapsackSolver::new(1);
                let fast = s.solve(&it, cap);
                let full = solve_forced_dp(&mut KnapsackSolver::new(1), &it, cap);
                prop_assert_eq!(fast, full);
            }

            #[test]
            fn probabilistic_never_overpacks(
                specs in prop::collection::vec((1u64..50, 0.0f64..1.0), 1..12),
                cap in 0u64..120,
                seed in any::<u64>(),
            ) {
                let it = items(&specs);
                let mut s = KnapsackSolver::new(1);
                let mut rng = StdRng::seed_from_u64(seed);
                let sel = s.probabilistic_select(&it, cap, &mut rng);
                let total: u64 = sel.iter().map(|&i| it[i].size).sum();
                prop_assert!(total <= cap);
                let mut sorted = sel.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), sel.len(), "duplicate selections");
            }
        }
    }
}
