//! Per-item data popularity estimation (Eq. 5–6 of the paper).
//!
//! The occurrences of requests to a data item are modelled as a Poisson
//! process whose rate is estimated from the last `k` requests observed in
//! `[t₁, t_k]`: `λ_d = k / (t_k − t₁)`. The item's *popularity* is the
//! probability that it is requested at least once more before it expires:
//!
//! ```text
//! w_i = 1 − e^{−λ_d · Δ}
//! ```
//!
//! The paper's Eq. (6) writes the exponent as `t_e − t₁`; since the prose
//! defines `w_i` as "the probability that this data will be requested
//! again **in the future** before the data expires", we take `Δ` as the
//! remaining lifetime `t_e − now` (using `t_e − t₁` would count time that
//! has already passed). This matches the prose and keeps `w_i = 0` for
//! expired data.
//!
//! The estimator only stores the first/last request times and a count —
//! the "two time values" of negligible space overhead the paper promises.

use crate::time::Time;

/// Sliding-window Poisson estimator of a data item's request popularity.
///
/// # Example
///
/// ```
/// use dtn_core::popularity::PopularityEstimator;
/// use dtn_core::time::Time;
///
/// let mut est = PopularityEstimator::new();
/// est.record_request(Time(100));
/// est.record_request(Time(200));
/// // Two requests 100 s apart → λ_d = 0.02/s; plenty of lifetime left
/// // → near-certain to be requested again.
/// let w = est.popularity(Time(250), Time(10_000));
/// assert!(w > 0.99);
/// // An expired item is never requested again.
/// assert_eq!(est.popularity(Time(10_001), Time(10_000)), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PopularityEstimator {
    first_request: Option<Time>,
    last_request: Option<Time>,
    requests: u64,
    /// Optional sliding window: `(k, timestamps of the last k requests)`.
    window: Option<(usize, std::collections::VecDeque<Time>)>,
}

impl PopularityEstimator {
    /// Creates an estimator that has seen no requests and uses the whole
    /// request history (the "two time values" variant of the paper).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an estimator that derives `λ_d` from only the **last
    /// `k` requests** — the literal reading of Eq. 5's "past k
    /// requests", which adapts faster when popularity shifts.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (a rate needs at least two timestamps).
    pub fn with_window(k: usize) -> Self {
        assert!(k >= 2, "window must hold at least two requests, got {k}");
        PopularityEstimator {
            window: Some((k, std::collections::VecDeque::with_capacity(k + 1))),
            ..Self::default()
        }
    }

    /// Records one request to the item at time `at`.
    pub fn record_request(&mut self, at: Time) {
        if self.first_request.is_none() {
            self.first_request = Some(at);
        }
        self.last_request = Some(self.last_request.map_or(at, |t| t.max(at)));
        self.requests += 1;
        if let Some((k, win)) = &mut self.window {
            win.push_back(at);
            while win.len() > *k {
                win.pop_front();
            }
        }
    }

    /// Number of requests observed.
    pub fn request_count(&self) -> u64 {
        self.requests
    }

    /// The estimated request rate `λ_d` (requests per second), or `None`
    /// if fewer than two requests (or zero elapsed time) were observed.
    /// Windowed estimators ([`with_window`](Self::with_window)) use the
    /// last `k` requests only.
    pub fn request_rate(&self) -> Option<f64> {
        if let Some((_, win)) = &self.window {
            let first = win.front()?;
            let last = win.back()?;
            if win.len() < 2 || *last <= *first {
                return None;
            }
            return Some(win.len() as f64 / (*last - *first).as_secs_f64());
        }
        let (first, last) = (self.first_request?, self.last_request?);
        if self.requests < 2 || last <= first {
            return None;
        }
        Some(self.requests as f64 / (last - first).as_secs_f64())
    }

    /// The popularity `w_i`: probability of at least one more request
    /// before the item expires at `expires_at`, seen from `now`.
    ///
    /// Returns 0 for expired items and for items never requested ("for
    /// newly created data, the utility value will initially be low since
    /// the data has not yet been requested" — footnote 3 of the paper).
    /// A single observed request yields a small non-zero prior based on
    /// the request having arrived within the item's elapsed lifetime.
    pub fn popularity(&self, now: Time, expires_at: Time) -> f64 {
        if now >= expires_at {
            return 0.0;
        }
        let remaining = (expires_at - now).as_secs_f64();
        match self.request_rate() {
            Some(rate) => 1.0 - (-rate * remaining).exp(),
            None => match (self.requests, self.first_request) {
                // One request at time t₁: crude prior λ ≈ 1/(now − t₁).
                (1, Some(t1)) if now > t1 => {
                    let rate = 1.0 / (now - t1).as_secs_f64();
                    1.0 - (-rate * remaining).exp()
                }
                _ => 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrequested_data_has_zero_popularity() {
        let est = PopularityEstimator::new();
        assert_eq!(est.popularity(Time(10), Time(100)), 0.0);
        assert_eq!(est.request_rate(), None);
    }

    #[test]
    fn expired_data_has_zero_popularity() {
        let mut est = PopularityEstimator::new();
        est.record_request(Time(10));
        est.record_request(Time(20));
        assert_eq!(est.popularity(Time(100), Time(100)), 0.0);
        assert_eq!(est.popularity(Time(150), Time(100)), 0.0);
    }

    #[test]
    fn rate_is_count_over_span() {
        let mut est = PopularityEstimator::new();
        est.record_request(Time(100));
        est.record_request(Time(200));
        est.record_request(Time(300));
        // 3 requests over 200 s
        assert_eq!(est.request_rate(), Some(0.015));
        assert_eq!(est.request_count(), 3);
    }

    #[test]
    fn more_frequent_requests_mean_higher_popularity() {
        let mut hot = PopularityEstimator::new();
        hot.record_request(Time(0));
        hot.record_request(Time(10));
        let mut cold = PopularityEstimator::new();
        cold.record_request(Time(0));
        cold.record_request(Time(1000));
        let (now, exp) = (Time(1000), Time(1500));
        assert!(hot.popularity(now, exp) > cold.popularity(now, exp));
    }

    #[test]
    fn longer_remaining_lifetime_means_higher_popularity() {
        let mut est = PopularityEstimator::new();
        est.record_request(Time(0));
        est.record_request(Time(500));
        let now = Time(600);
        assert!(est.popularity(now, Time(10_000)) > est.popularity(now, Time(700)));
    }

    #[test]
    fn single_request_gives_small_nonzero_prior() {
        let mut est = PopularityEstimator::new();
        est.record_request(Time(100));
        let w = est.popularity(Time(1100), Time(1200));
        assert!(w > 0.0 && w < 0.2, "prior was {w}");
    }

    #[test]
    fn out_of_order_requests_do_not_panic() {
        let mut est = PopularityEstimator::new();
        est.record_request(Time(500));
        est.record_request(Time(100)); // late-arriving record
                                       // first stays 500, last stays 500; rate undefined → prior path.
        assert!(est.popularity(Time(600), Time(1000)) >= 0.0);
    }

    #[test]
    fn windowed_estimator_adapts_faster() {
        // Slow early history, fast recent history.
        let mut full = PopularityEstimator::new();
        let mut windowed = PopularityEstimator::with_window(4);
        let times: Vec<u64> = vec![0, 10_000, 20_000, 30_000, 30_010, 30_020, 30_030, 30_040];
        for &t in &times {
            full.record_request(Time(t));
            windowed.record_request(Time(t));
        }
        let r_full = full.request_rate().expect("enough data");
        let r_win = windowed.request_rate().expect("enough data");
        assert!(
            r_win > 10.0 * r_full,
            "windowed {r_win} must track the recent burst vs {r_full}"
        );
    }

    #[test]
    fn windowed_needs_enough_requests() {
        let mut e = PopularityEstimator::with_window(3);
        assert_eq!(e.request_rate(), None);
        e.record_request(Time(10));
        assert_eq!(e.request_rate(), None);
        e.record_request(Time(20));
        assert!(e.request_rate().is_some());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_window_panics() {
        let _ = PopularityEstimator::with_window(1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn popularity_is_probability(
                times in prop::collection::vec(0u64..1_000_000, 0..20),
                now in 0u64..2_000_000,
                expiry in 0u64..2_000_000,
            ) {
                let mut est = PopularityEstimator::new();
                for t in times {
                    est.record_request(Time(t));
                }
                let w = est.popularity(Time(now), Time(expiry));
                prop_assert!((0.0..=1.0).contains(&w), "w={w}");
            }
        }
    }
}
