//! Process-level system introspection.
//!
//! One shared home for the VmHWM peak-RSS sampler that the bench
//! runner, the city-scale harness, the engine heartbeat and the
//! run-diff harness all report — previously each call site carried its
//! own copy of the `/proc` parse.

/// Peak resident set size of this process in bytes.
///
/// Reads `VmHWM` ("high-water mark") from `/proc/self/status` on Linux;
/// returns 0 on other platforms or if the field is missing. The value
/// is a process-lifetime maximum — it never decreases, so comparing
/// readings across phases only bounds the *later* phase from above.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kib: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kib * 1024;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_monotone_and_plausible() {
        let first = peak_rss_bytes();
        if !cfg!(target_os = "linux") {
            assert_eq!(first, 0);
            return;
        }
        // A test process has at least a few hundred KiB resident and
        // (sanity bound) less than a terabyte.
        assert!(first > 100 * 1024, "implausibly small VmHWM: {first}");
        assert!(first < (1 << 40), "implausibly large VmHWM: {first}");
        // Touch a few MiB and re-read. The kernel reports
        // max(hiwater_rss, current_rss) with lazily-synced per-thread
        // RSS counters, so readings can jitter by a few hundred KiB in
        // a threaded process — allow that slop, but an 8 MiB touch must
        // never make the reading *drop* by more than it.
        let sink = vec![1u8; 8 << 20];
        let slop = 4 << 20;
        let after = peak_rss_bytes();
        assert!(after + slop >= first, "VmHWM dropped: {first} -> {after}");
        drop(sink);
        assert!(peak_rss_bytes() + slop >= after, "VmHWM dropped past slop");
    }
}
