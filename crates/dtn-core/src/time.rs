//! Simulation time: absolute instants and durations in whole seconds.
//!
//! The traces the paper uses have a granularity of 20–300 seconds and all
//! protocol timers are minutes to months, so one-second resolution is
//! exact for every quantity in the reproduction while keeping event-queue
//! ordering free of floating-point pitfalls.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute simulation instant, in seconds since the start of the trace.
///
/// # Example
///
/// ```
/// use dtn_core::time::{Duration, Time};
/// let t = Time::ZERO + Duration::hours(2);
/// assert_eq!(t.as_secs(), 7200);
/// assert_eq!(t - Time::ZERO, Duration::hours(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulation time, in seconds.
///
/// # Example
///
/// ```
/// use dtn_core::time::Duration;
/// assert_eq!(Duration::days(1), Duration::hours(24));
/// assert_eq!(Duration::minutes(3).as_secs(), 180);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The beginning of the simulation.
    pub const ZERO: Time = Time(0);

    /// Returns the instant as whole seconds since simulation start.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds (for rate arithmetic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration of `s` seconds.
    pub fn secs(s: u64) -> Duration {
        Duration(s)
    }

    /// Creates a duration of `m` minutes.
    pub fn minutes(m: u64) -> Duration {
        Duration(m * 60)
    }

    /// Creates a duration of `h` hours.
    pub fn hours(h: u64) -> Duration {
        Duration(h * 3600)
    }

    /// Creates a duration of `d` days.
    pub fn days(d: u64) -> Duration {
        Duration(d * 86_400)
    }

    /// Creates a duration of `w` weeks.
    pub fn weeks(w: u64) -> Duration {
        Duration(w * 7 * 86_400)
    }

    /// Returns the duration as whole seconds.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds (for rate arithmetic).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest second.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        Duration((self.0 as f64 * factor).round() as u64)
    }

    /// Integer division of the duration.
    pub fn div_by(self, divisor: u64) -> Duration {
        Duration(self.0 / divisor)
    }
}

/// Bytes transferable in `seconds` at `bytes_per_sec`, rounded to the
/// nearest byte.
///
/// Computed in f64 so fractional contact durations keep their
/// sub-second share of the budget instead of truncating to whole
/// seconds (a truncating integer product gives a 0.9 s contact a zero
/// budget and under-counts every contact by up to `bytes_per_sec - 1`
/// bytes). Products below 2^53 — far beyond any trace contact at
/// Bluetooth-class bandwidths — are exact, so whole-second durations
/// yield bit-identical budgets to the integer formula.
///
/// # Panics
///
/// Panics if `seconds` is negative or not finite.
pub fn link_budget_bytes(seconds: f64, bytes_per_sec: u64) -> u64 {
    assert!(
        seconds.is_finite() && seconds >= 0.0,
        "link budget duration must be finite and non-negative, got {seconds}"
    );
    (seconds * bytes_per_sec as f64).round() as u64
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    /// Elapsed time between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Time::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: Time) -> Duration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 86_400 && s.is_multiple_of(86_400) {
            write!(f, "{}d", s / 86_400)
        } else if s >= 3600 && s.is_multiple_of(3600) {
            write!(f, "{}h", s / 3600)
        } else if s >= 60 && s.is_multiple_of(60) {
            write!(f, "{}m", s / 60)
        } else {
            write!(f, "{s}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::weeks(1), Duration::days(7));
        assert_eq!(Duration::days(1), Duration::hours(24));
        assert_eq!(Duration::hours(1), Duration::minutes(60));
        assert_eq!(Duration::minutes(1), Duration::secs(60));
    }

    #[test]
    fn time_arithmetic() {
        let t0 = Time(100);
        let t1 = t0 + Duration(50);
        assert_eq!(t1, Time(150));
        assert_eq!(t1 - t0, Duration(50));
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
        assert_eq!(t1.saturating_since(t0), Duration(50));
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(Duration(100).mul_f64(1.5), Duration(150));
        assert_eq!(Duration(100).mul_f64(0.0), Duration::ZERO);
        assert_eq!(Duration(100).div_by(3), Duration(33));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scaling_panics() {
        let _ = Duration(10).mul_f64(-1.0);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Duration::days(3).to_string(), "3d");
        assert_eq!(Duration::hours(5).to_string(), "5h");
        assert_eq!(Duration::minutes(2).to_string(), "2m");
        assert_eq!(Duration(61).to_string(), "61s");
        assert_eq!(Time(5).to_string(), "t+5s");
    }

    #[test]
    fn link_budget_keeps_fractional_seconds() {
        // The old truncating formula starved sub-second contacts:
        // `(0.9 as u64).saturating_mul(262_500)` is 0 bytes.
        assert_eq!((0.9f64 as u64).saturating_mul(262_500), 0);
        assert_eq!(link_budget_bytes(0.9, 262_500), 236_250);
        assert_eq!(link_budget_bytes(2.5, 1_000), 2_500);
        assert_eq!(link_budget_bytes(0.0, 262_500), 0);
    }

    #[test]
    fn link_budget_is_exact_for_whole_seconds() {
        assert_eq!(link_budget_bytes(100.0, 262_500), 100 * 262_500);
        assert_eq!(link_budget_bytes(86_400.0, 262_500), 86_400 * 262_500);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_link_budget_panics() {
        let _ = link_budget_bytes(-1.0, 262_500);
    }

    #[test]
    fn min_max() {
        assert_eq!(Time(3).max(Time(5)), Time(5));
        assert_eq!(Time(3).min(Time(5)), Time(3));
    }
}
