//! Minimal deterministic data parallelism on scoped std threads.
//!
//! The NCL selection metric runs one single-source path search per node
//! — an embarrassingly parallel workload — but this build environment
//! cannot pull in `rayon`. This module provides the one primitive the
//! crate needs: a parallel, **order-preserving** map over a slice.
//!
//! Results are written into per-index slots carved out of one output
//! buffer with `chunks_mut`, so the returned vector is always in input
//! order no matter how the worker threads interleave — callers observe
//! exactly what the serial `iter().map().collect()` would produce, which
//! keeps tie-breaking and downstream sorting deterministic.

use std::num::NonZeroUsize;

/// Number of worker threads to use for `len` items: the machine's
/// available parallelism, capped by the item count and always at least 1.
fn worker_count(len: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, NonZeroUsize::get)
        .min(len)
        .max(1)
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` — including the order of
/// the results — but splits the slice into contiguous chunks processed by
/// scoped worker threads. Falls back to the serial map when the slice is
/// small or only one hardware thread is available. `f` must be pure with
/// respect to ordering: it is called exactly once per item, but calls
/// from different chunks run concurrently.
///
/// # Example
///
/// ```
/// use dtn_core::par::map_slice;
///
/// let squares = map_slice(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 || n < 2 {
        return items.iter().map(f).collect();
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every chunk fills all its slots"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let mapped = map_slice(&items, |&x| x * 3);
        let serial: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        assert_eq!(mapped, serial);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_slice(&empty, |&x| x).is_empty());
        assert_eq!(map_slice(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn calls_f_once_per_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..257).collect();
        let _ = map_slice(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn uneven_chunking_is_covered() {
        // Lengths around worker-count multiples exercise the last,
        // shorter chunk.
        for n in [2usize, 3, 5, 17, 31, 64, 65] {
            let items: Vec<usize> = (0..n).collect();
            assert_eq!(map_slice(&items, |&x| x + 1), (1..=n).collect::<Vec<_>>());
        }
    }
}
