//! Minimal deterministic data parallelism on scoped std threads.
//!
//! The NCL selection metric runs one single-source path search per node
//! — an embarrassingly parallel workload — but this build environment
//! cannot pull in `rayon`. This module provides the one primitive the
//! crate needs: a parallel, **order-preserving** map over a slice.
//!
//! Results are written into per-index slots carved out of one output
//! buffer with `chunks_mut`, so the returned vector is always in input
//! order no matter how the worker threads interleave — callers observe
//! exactly what the serial `iter().map().collect()` would produce, which
//! keeps tie-breaking and downstream sorting deterministic.
//!
//! Worker counts come from three places, in priority order: an explicit
//! request ([`map_slice_threads`]), the `DTN_THREADS` environment
//! variable, and finally `available_parallelism`. All three are capped
//! at the item count so no worker ever receives an empty chunk.

use std::num::NonZeroUsize;

/// The worker count requested through the `DTN_THREADS` environment
/// variable, if set to a positive integer. Benches and CI use this to
/// pin parallelism without plumbing a thread count through every call
/// site.
fn env_threads() -> Option<usize> {
    std::env::var("DTN_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Resolves the worker count for `len` items. `requested == 0` means
/// auto: the `DTN_THREADS` override if set, otherwise the machine's
/// available parallelism. The result is always capped at the item count
/// (a 3-item slice never spawns more than 3 workers — no empty chunks)
/// and at least 1.
pub fn effective_workers(requested: usize, len: usize) -> usize {
    let base = if requested == 0 {
        env_threads()
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    } else {
        requested
    };
    base.min(len).max(1)
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` — including the order of
/// the results — but splits the slice into contiguous chunks processed by
/// scoped worker threads. Falls back to the serial map when the slice is
/// small or only one hardware thread is available. `f` must be pure with
/// respect to ordering: it is called exactly once per item, but calls
/// from different chunks run concurrently.
///
/// # Example
///
/// ```
/// use dtn_core::par::map_slice;
///
/// let squares = map_slice(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_slice_threads(0, items, f)
}

/// [`map_slice`] with an explicit worker count. `threads == 0` means
/// auto (the `DTN_THREADS` override, then available parallelism);
/// any request is capped at the item count. A cap of 1 runs the plain
/// serial map on the calling thread — no scope, no spawns — which is
/// what makes parallelism zero-cost when off.
///
/// # Example
///
/// ```
/// use dtn_core::par::map_slice_threads;
///
/// let doubled = map_slice_threads(2, &[1u64, 2, 3], |&x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn map_slice_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = effective_workers(threads, n);
    if workers <= 1 || n < 2 {
        return items.iter().map(f).collect();
    }

    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every chunk fills all its slots"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let mapped = map_slice(&items, |&x| x * 3);
        let serial: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        assert_eq!(mapped, serial);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_slice(&empty, |&x| x).is_empty());
        assert_eq!(map_slice(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn calls_f_once_per_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..257).collect();
        let _ = map_slice(&items, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), items.len());
    }

    #[test]
    fn uneven_chunking_is_covered() {
        // Lengths around worker-count multiples exercise the last,
        // shorter chunk.
        for n in [2usize, 3, 5, 17, 31, 64, 65] {
            let items: Vec<usize> = (0..n).collect();
            assert_eq!(map_slice(&items, |&x| x + 1), (1..=n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_caps_at_item_count() {
        // Regression: a tiny slice must never spawn more workers than
        // items — an 8-worker request over 3 items would otherwise carve
        // empty chunks.
        assert_eq!(effective_workers(8, 3), 3);
        assert_eq!(effective_workers(0, 1), 1);
        assert_eq!(effective_workers(0, 0), 1);
        assert_eq!(effective_workers(1, 1000), 1);
        assert_eq!(effective_workers(4, 1000), 4);
        // Auto mode caps at the item count too, whatever the machine has.
        for len in [1usize, 2, 3, 7] {
            assert!(effective_workers(0, len) <= len.max(1));
        }
    }

    #[test]
    fn explicit_thread_counts_match_serial() {
        let items: Vec<u64> = (0..100).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 4, 8, 200] {
            assert_eq!(
                map_slice_threads(threads, &items, |&x| x * x + 1),
                serial,
                "threads={threads} diverged from the serial map"
            );
        }
    }

    #[test]
    fn small_slice_stays_serial() {
        // n < 2 short-circuits before any scope is created, for every
        // explicit worker request.
        assert_eq!(map_slice_threads(8, &[41u32], |&x| x + 1), vec![42]);
        let empty: Vec<u32> = Vec::new();
        assert!(map_slice_threads(8, &empty, |&x| x).is_empty());
    }

    /// The single test that touches `DTN_THREADS`: the env var is
    /// process-global, so concentrating every read here keeps the suite
    /// race-free under the parallel test runner.
    #[test]
    fn dtn_threads_env_overrides_auto_mode() {
        std::env::set_var("DTN_THREADS", "3");
        assert_eq!(effective_workers(0, 100), 3);
        // Explicit requests beat the env override.
        assert_eq!(effective_workers(5, 100), 5);
        // The override is still capped at the item count.
        assert_eq!(effective_workers(0, 2), 2);
        // Garbage and non-positive values fall back to auto.
        std::env::set_var("DTN_THREADS", "0");
        assert!(effective_workers(0, 100) >= 1);
        std::env::set_var("DTN_THREADS", "lots");
        assert!(effective_workers(0, 100) >= 1);
        std::env::remove_var("DTN_THREADS");
        assert!(effective_workers(0, 100) >= 1);
    }
}
