//! Fixed-bucket histograms for hot-loop instrumentation.
//!
//! A [`Histogram`] allocates its bucket array once at construction;
//! [`Histogram::record`] is a constant-time array increment with no heap
//! traffic, so it is safe to call from the simulation hot loop. Values
//! are unsigned integers (seconds, hops, bytes); alongside the buckets
//! the histogram keeps the *exact* `count` and `sum`, so
//! [`Histogram::mean`] is exact regardless of bucket resolution — the
//! buckets only quantise the *shape*, never the aggregate.

/// A fixed-bucket histogram over `u64` values.
///
/// Buckets are uniform: bucket `i` covers `[i·width, (i+1)·width)`, and
/// the final bucket additionally absorbs every value at or beyond the
/// nominal range (an explicit overflow bucket).
///
/// # Example
///
/// ```
/// use dtn_core::hist::Histogram;
/// let mut h = Histogram::new(10, 4); // buckets [0,10) [10,20) [20,30) [30,∞)
/// h.record(3);
/// h.record(12);
/// h.record(1_000); // overflow → last bucket
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.sum(), 1_015);
/// assert_eq!(h.counts(), &[1, 1, 0, 1]);
/// assert_eq!(h.mean(), Some(1_015.0 / 3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    width: u64,
    counts: Box<[u64]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` uniform buckets of `width`
    /// each (the last bucket also collects overflow).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `buckets == 0`.
    pub fn new(width: u64, buckets: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            width,
            counts: vec![0; buckets].into_boxed_slice(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value. Constant time, no allocation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let last = self.counts.len() - 1;
        let idx = ((value / self.width) as usize).min(last);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of the recorded values, `None` when empty.
    ///
    /// Computed from the exact running `sum`/`count`, not from bucket
    /// midpoints — bucket resolution does not affect this value.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> u64 {
        self.width
    }

    /// Per-bucket counts; the last entry includes overflow.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The inclusive lower bound of bucket `i`.
    pub fn bucket_start(&self, i: usize) -> u64 {
        self.width * i as u64
    }

    /// Smallest bucket lower bound whose cumulative count reaches
    /// quantile `q` (a bucket-resolution quantile, not exact).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile_bucket(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_start(i));
            }
        }
        Some(self.bucket_start(self.counts.len() - 1))
    }

    /// Merges `other` into `self` bucket by bucket.
    ///
    /// Merging is only defined between histograms of identical geometry
    /// — same bucket width *and* same bucket count. A width-mismatched
    /// merge would silently re-bucket one side's shape, so it is
    /// rejected rather than approximated: the error names both
    /// geometries and `self` is left untouched.
    ///
    /// # Errors
    ///
    /// Returns a description of the geometry mismatch when widths or
    /// bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.width != other.width || self.counts.len() != other.counts.len() {
            return Err(format!(
                "histogram geometry mismatch: {}x{} vs {}x{} (width x buckets)",
                self.width,
                self.counts.len(),
                other.width,
                other.counts.len()
            ));
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Renders a compact one-line-per-bucket ASCII view (empty tail
    /// buckets are skipped), for human-readable run reports.
    pub fn render(&self, label: &str, unit: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{label}: n={} mean={:.1}{unit} max={}{unit}",
            self.count,
            self.mean().unwrap_or(0.0),
            self.max,
        );
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let last_used = self.counts.iter().rposition(|&c| c > 0);
        let Some(last_used) = last_used else {
            return out;
        };
        for i in 0..=last_used {
            let c = self.counts[i];
            let bar = "#".repeat(((c * 40).div_ceil(peak)) as usize);
            let _ = writeln!(
                out,
                "  [{:>8}{unit}, {:>8}{unit}) {:>8} {bar}",
                self.bucket_start(i),
                if i == self.counts.len() - 1 {
                    "inf".to_string()
                } else {
                    self.bucket_start(i + 1).to_string()
                },
                c,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(100, 5);
        for v in [0, 99, 100, 250, 499, 500, 10_000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 3]); // 499→[400,500); 500 & 10k overflow
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 99 + 100 + 250 + 499 + 500 + 10_000);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        // One absurdly coarse bucket: the mean must still be exact.
        let mut h = Histogram::new(1_000_000, 1);
        h.record(7);
        h.record(8);
        assert_eq!(h.mean(), Some(7.5));
        assert_eq!(Histogram::new(1, 1).mean(), None);
    }

    #[test]
    fn quantile_bucket_walks_cumulative_counts() {
        let mut h = Histogram::new(10, 10);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile_bucket(0.0), Some(0));
        assert_eq!(h.quantile_bucket(0.5), Some(40));
        assert_eq!(h.quantile_bucket(1.0), Some(90));
        assert_eq!(Histogram::new(1, 1).quantile_bucket(0.5), None);
    }

    #[test]
    fn render_skips_empty_tail() {
        let mut h = Histogram::new(10, 100);
        h.record(5);
        h.record(15);
        let s = h.render("delay", "s");
        assert!(s.contains("n=2"));
        assert!(s.contains("[       0s,       10s)"));
        assert!(!s.contains("990"), "empty tail buckets must be skipped");
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        let _ = Histogram::new(0, 4);
    }

    #[test]
    fn overflow_bucket_quantiles_clamp_to_last_start() {
        // Everything lands in the overflow bucket: every quantile must
        // answer with the overflow bucket's start, never beyond it.
        let mut h = Histogram::new(10, 4); // overflow bucket starts at 30
        for v in [30, 1_000, u64::MAX / 2] {
            h.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_bucket(q), Some(30), "q={q}");
        }
        // Mixed case: only the top quantiles reach the overflow bucket.
        let mut m = Histogram::new(10, 4);
        m.record(5);
        m.record(500);
        assert_eq!(m.quantile_bucket(0.5), Some(0));
        assert_eq!(m.quantile_bucket(1.0), Some(30));
    }

    #[test]
    fn zero_count_quantile_is_none_for_any_q() {
        let h = Histogram::new(10, 4);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile_bucket(q), None, "q={q}");
        }
        assert_eq!(h.mean(), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn out_of_range_quantile_panics() {
        let mut h = Histogram::new(10, 4);
        h.record(1);
        let _ = h.quantile_bucket(1.5);
    }

    #[test]
    fn merge_sums_matching_geometries_exactly() {
        let mut a = Histogram::new(100, 5);
        let mut b = Histogram::new(100, 5);
        for v in [0, 99, 10_000] {
            a.record(v);
        }
        for v in [150, 350, 10_000] {
            b.record(v);
        }
        a.merge(&b).expect("same geometry merges");
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 99 + 10_000 + 150 + 350 + 10_000);
        assert_eq!(a.max(), 10_000);
        assert_eq!(a.counts(), &[2, 1, 0, 1, 2]);
        // The merged mean stays exact (sum/count, not bucket midpoints).
        assert_eq!(a.mean(), Some(a.sum() as f64 / 6.0));
    }

    #[test]
    fn merge_rejects_mismatched_widths_and_counts() {
        let mut a = Histogram::new(100, 5);
        a.record(42);
        let before = a.clone();

        let wrong_width = Histogram::new(50, 5);
        let err = a.merge(&wrong_width).expect_err("width mismatch");
        assert!(err.contains("mismatch"), "{err}");
        assert_eq!(a, before, "failed merge must leave self untouched");

        let wrong_buckets = Histogram::new(100, 6);
        let err = a.merge(&wrong_buckets).expect_err("bucket-count mismatch");
        assert!(err.contains("5"), "{err}");
        assert!(err.contains("6"), "{err}");
        assert_eq!(a, before, "failed merge must leave self untouched");
    }
}
