//! Delivery probability along a multi-hop opportunistic path.
//!
//! The inter-contact time of each hop `k` on an opportunistic path is
//! exponentially distributed with rate `λ_k` (§III-B of the paper), so the
//! end-to-end delay `Y = Σ X_k` is **hypoexponential**. Eq. (1)–(2) of the
//! paper give its CDF in the distinct-rate case:
//!
//! ```text
//! p(T) = Σ_k C_k · (1 − e^{−λ_k T}),   C_k = Π_{s≠k} λ_s / (λ_s − λ_k)
//! ```
//!
//! That closed form is numerically singular when two rates coincide (the
//! `λ_s − λ_k` denominators vanish) and suffers catastrophic cancellation
//! when they are merely close. This module therefore evaluates the CDF with
//! a three-way strategy:
//!
//! 1. all rates equal → exact Erlang CDF,
//! 2. all rates pairwise well-separated → the closed form above,
//! 3. otherwise → tiny deterministic perturbation of clustered rates,
//!    which bounds the error by `O(ε · r²)` while restoring case 2.
//!
//! Property tests validate all branches against Monte-Carlo simulation.

/// Relative separation below which two rates are treated as "clustered"
/// and perturbed before using the distinct-rate closed form.
const REL_SEPARATION: f64 = 1e-4;

/// Relative perturbation applied to break rate clusters.
const REL_PERTURBATION: f64 = 1e-3;

/// Probability that a sum of independent exponentials with the given
/// `rates` is at most `t` — i.e. the probability that data traverses the
/// path within `t` seconds (the paper's path weight `p_AB(T)`, Eq. 2).
///
/// An empty `rates` slice denotes the zero-hop path from a node to itself
/// and has probability 1 for any `t ≥ 0`.
///
/// The result is clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if any rate is non-positive or non-finite, or if `t` is NaN.
///
/// # Example
///
/// ```
/// use dtn_core::hypoexp::cdf;
///
/// // Single hop: plain exponential CDF.
/// let p = cdf(&[1.0 / 3600.0], 3600.0);
/// assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
///
/// // Adding a hop can only slow delivery down.
/// assert!(cdf(&[0.001, 0.002], 1000.0) < cdf(&[0.001], 1000.0));
/// ```
pub fn cdf(rates: &[f64], t: f64) -> f64 {
    assert!(!t.is_nan(), "time must not be NaN");
    for &r in rates {
        assert!(
            r.is_finite() && r > 0.0,
            "contact rates must be finite and positive, got {r}"
        );
    }
    if t <= 0.0 {
        return if rates.is_empty() { 1.0 } else { 0.0 };
    }
    if rates.is_empty() {
        return 1.0;
    }
    if rates.len() == 1 {
        return clamp01(-(-rates[0] * t).exp_m1());
    }
    if all_equal(rates) {
        return erlang_cdf(rates[0], rates.len() as u32, t);
    }
    if well_separated(rates) {
        return clamp01(distinct_cdf(rates, t));
    }
    // Clustered but not identical: deterministically spread each cluster.
    let spread = spread_clusters(rates);
    clamp01(distinct_cdf(&spread, t))
}

/// Mean of the hypoexponential distribution: `Σ 1/λ_k`, the expected
/// end-to-end delay of the path.
///
/// # Panics
///
/// Panics if any rate is non-positive or non-finite.
///
/// # Example
///
/// ```
/// use dtn_core::hypoexp::mean;
/// assert_eq!(mean(&[0.5, 0.25]), 2.0 + 4.0);
/// ```
pub fn mean(rates: &[f64]) -> f64 {
    rates
        .iter()
        .map(|&r| {
            assert!(r.is_finite() && r > 0.0, "rates must be positive, got {r}");
            1.0 / r
        })
        .sum()
}

/// Probability density of the hypoexponential distribution at `t`,
/// evaluated numerically as the derivative of [`cdf`] (central
/// difference with a step scaled to the distribution's mean).
///
/// Returns 0 for `t < 0` and for the empty path.
///
/// # Panics
///
/// Panics on the same invalid inputs as [`cdf`].
///
/// # Example
///
/// ```
/// use dtn_core::hypoexp::pdf;
/// // Single hop: f(t) = λ e^{−λt}.
/// let l = 0.01;
/// let approx = pdf(&[l], 50.0);
/// let exact = l * (-l * 50.0f64).exp();
/// assert!((approx - exact).abs() < 1e-6);
/// ```
pub fn pdf(rates: &[f64], t: f64) -> f64 {
    assert!(!t.is_nan(), "time must not be NaN");
    if rates.is_empty() || t < 0.0 {
        return 0.0;
    }
    let h = (mean(rates) * 1e-6).max(1e-9);
    let lo = (t - h).max(0.0);
    let hi = t + h;
    ((cdf(rates, hi) - cdf(rates, lo)) / (hi - lo)).max(0.0)
}

/// Erlang CDF: sum of `k` i.i.d. exponentials with rate `rate`.
///
/// `P(Y ≤ t) = 1 − e^{−λt} Σ_{n=0}^{k−1} (λt)^n / n!`
///
/// # Panics
///
/// Panics if `rate` is non-positive or `k == 0`.
///
/// # Example
///
/// ```
/// use dtn_core::hypoexp::erlang_cdf;
/// // One stage reduces to the exponential CDF.
/// let p = erlang_cdf(2.0, 1, 0.5);
/// assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// ```
pub fn erlang_cdf(rate: f64, k: u32, t: f64) -> f64 {
    assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
    assert!(k > 0, "Erlang shape must be at least 1");
    if t <= 0.0 {
        return 0.0;
    }
    let lt = rate * t;
    // Accumulate the truncated Poisson series term-by-term to avoid
    // computing large factorials explicitly.
    let mut term = 1.0;
    let mut sum = 1.0;
    for n in 1..k {
        term *= lt / n as f64;
        sum += term;
    }
    clamp01(1.0 - (-lt).exp() * sum)
}

/// Closed-form CDF for pairwise-distinct rates (Eq. 1–2 of the paper).
fn distinct_cdf(rates: &[f64], t: f64) -> f64 {
    let mut acc = 0.0;
    for (k, &lk) in rates.iter().enumerate() {
        let mut coeff = 1.0;
        for (s, &ls) in rates.iter().enumerate() {
            if s != k {
                coeff *= ls / (ls - lk);
            }
        }
        acc += coeff * -(-lk * t).exp_m1();
    }
    acc
}

fn all_equal(rates: &[f64]) -> bool {
    rates.windows(2).all(|w| w[0] == w[1])
}

fn well_separated(rates: &[f64]) -> bool {
    let mut sorted: Vec<f64> = rates.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    sorted
        .windows(2)
        .all(|w| (w[1] - w[0]) > REL_SEPARATION * w[1])
}

/// Deterministically perturb clustered rates so they become pairwise
/// well-separated while staying within `O(REL_PERTURBATION)` of the input.
fn spread_clusters(rates: &[f64]) -> Vec<f64> {
    let mut indexed: Vec<(usize, f64)> = rates.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("rates are finite"));
    let mut out = vec![0.0; rates.len()];
    let mut prev = 0.0;
    for (rank, (idx, r)) in indexed.into_iter().enumerate() {
        // Scale the nudge with the rank so that an entire cluster of equal
        // rates fans out into distinct values.
        let mut v = r * (1.0 + REL_PERTURBATION * (rank as f64 + 1.0));
        let min_gap = REL_SEPARATION * 2.0 * v;
        if v - prev <= min_gap {
            v = prev + min_gap;
        }
        prev = v;
        out[idx] = v;
    }
    out
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Monte-Carlo estimate of the hypoexponential CDF.
    fn mc_cdf(rates: &[f64], t: f64, samples: u32, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0u32;
        for _ in 0..samples {
            let total: f64 = rates
                .iter()
                .map(|&r| {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    -u.ln() / r
                })
                .sum();
            if total <= t {
                hits += 1;
            }
        }
        f64::from(hits) / f64::from(samples)
    }

    #[test]
    fn zero_hops_is_certain() {
        assert_eq!(cdf(&[], 0.0), 1.0);
        assert_eq!(cdf(&[], 100.0), 1.0);
    }

    #[test]
    fn zero_time_is_impossible_with_hops() {
        assert_eq!(cdf(&[1.0], 0.0), 0.0);
        assert_eq!(cdf(&[1.0, 2.0], -5.0), 0.0);
    }

    #[test]
    fn single_hop_matches_exponential() {
        let l = 1.0 / 3600.0;
        for t in [60.0f64, 3600.0, 86_400.0] {
            let expect = 1.0 - (-l * t).exp();
            assert!((cdf(&[l], t) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn equal_rates_match_erlang() {
        let p = cdf(&[0.5, 0.5, 0.5], 4.0);
        let e = erlang_cdf(0.5, 3, 4.0);
        assert!((p - e).abs() < 1e-12, "{p} vs {e}");
    }

    #[test]
    fn distinct_rates_match_monte_carlo() {
        let rates = [1.0 / 100.0, 1.0 / 350.0, 1.0 / 1000.0];
        for t in [200.0, 1000.0, 4000.0] {
            let exact = cdf(&rates, t);
            let approx = mc_cdf(&rates, t, 200_000, 42);
            assert!(
                (exact - approx).abs() < 5e-3,
                "t={t}: exact {exact} vs mc {approx}"
            );
        }
    }

    #[test]
    fn near_equal_rates_are_stable_and_accurate() {
        // Rates that differ by 1e-9 relative — the naive closed form
        // produces garbage here; the cluster-spreading path must not.
        let base = 1.0 / 500.0;
        let rates = [base, base * (1.0 + 1e-9), base * (1.0 - 1e-9)];
        let t = 1500.0;
        let exact = cdf(&rates, t);
        let erlang = erlang_cdf(base, 3, t);
        assert!(
            (exact - erlang).abs() < 1e-2,
            "stabilised {exact} vs erlang {erlang}"
        );
        assert!((0.0..=1.0).contains(&exact));
    }

    #[test]
    fn erlang_cdf_monotone_in_stages() {
        // More stages → stochastically larger sum → smaller CDF.
        let (rate, t) = (0.01, 300.0);
        let mut prev = 1.0;
        for k in 1..8 {
            let p = erlang_cdf(rate, k, t);
            assert!(p < prev, "k={k}: {p} !< {prev}");
            prev = p;
        }
    }

    #[test]
    fn pdf_matches_exponential_for_one_hop() {
        let l = 1.0 / 500.0;
        for t in [10.0f64, 250.0, 2000.0] {
            let exact = l * (-l * t).exp();
            assert!((pdf(&[l], t) - exact).abs() < 1e-7, "t={t}");
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoid integral of the pdf tracks the CDF.
        let rates = [1e-3, 2e-3];
        let (mut acc, dt) = (0.0, 5.0);
        let mut t = 0.0;
        while t < 3000.0 {
            acc += 0.5 * (pdf(&rates, t) + pdf(&rates, t + dt)) * dt;
            t += dt;
        }
        let exact = cdf(&rates, 3000.0);
        assert!((acc - exact).abs() < 1e-3, "{acc} vs {exact}");
    }

    #[test]
    fn pdf_edge_cases() {
        assert_eq!(pdf(&[], 5.0), 0.0);
        assert_eq!(pdf(&[0.1], -1.0), 0.0);
        assert!(pdf(&[0.1, 0.1], 0.0) >= 0.0);
    }

    #[test]
    fn mean_is_sum_of_inverse_rates() {
        assert!((mean(&[0.1, 0.2]) - 15.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let _ = cdf(&[0.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_time() {
        let _ = cdf(&[1.0], f64::NAN);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn rate_strategy() -> impl Strategy<Value = f64> {
            // Rates from ~1/month to ~1/10s, the realistic DTN range.
            (1e-7f64..1e-1).prop_map(|x| x)
        }

        proptest! {
            #[test]
            fn cdf_is_probability(
                rates in prop::collection::vec(rate_strategy(), 1..6),
                t in 0.0f64..1e7,
            ) {
                let p = cdf(&rates, t);
                prop_assert!((0.0..=1.0).contains(&p), "p={p}");
            }

            #[test]
            fn cdf_monotone_in_time(
                rates in prop::collection::vec(rate_strategy(), 1..6),
                t1 in 0.0f64..1e6,
                dt in 0.0f64..1e6,
            ) {
                let p1 = cdf(&rates, t1);
                let p2 = cdf(&rates, t1 + dt);
                prop_assert!(p2 >= p1 - 1e-9, "p({})={} > p({})={}", t1, p1, t1 + dt, p2);
            }

            #[test]
            fn extra_hop_never_helps(
                rates in prop::collection::vec(rate_strategy(), 1..5),
                extra in rate_strategy(),
                t in 1.0f64..1e6,
            ) {
                let base = cdf(&rates, t);
                let mut longer = rates.clone();
                longer.push(extra);
                let ext = cdf(&longer, t);
                prop_assert!(ext <= base + 1e-6, "extending path raised p: {base} -> {ext}");
            }

            #[test]
            fn closed_form_tracks_monte_carlo(
                rates in prop::collection::vec(1e-4f64..1e-1, 2..5),
                t in 10.0f64..1e5,
                seed in any::<u64>(),
            ) {
                let exact = cdf(&rates, t);
                let approx = mc_cdf(&rates, t, 20_000, seed);
                prop_assert!((exact - approx).abs() < 0.02,
                    "exact {exact} vs mc {approx} for rates {rates:?}, t={t}");
            }
        }
    }
}
