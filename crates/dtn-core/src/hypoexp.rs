//! Delivery probability along a multi-hop opportunistic path.
//!
//! The inter-contact time of each hop `k` on an opportunistic path is
//! exponentially distributed with rate `λ_k` (§III-B of the paper), so the
//! end-to-end delay `Y = Σ X_k` is **hypoexponential**. Eq. (1)–(2) of the
//! paper give its CDF in the distinct-rate case:
//!
//! ```text
//! p(T) = Σ_k C_k · (1 − e^{−λ_k T}),   C_k = Π_{s≠k} λ_s / (λ_s − λ_k)
//! ```
//!
//! That closed form is numerically singular when two rates coincide (the
//! `λ_s − λ_k` denominators vanish) and suffers catastrophic cancellation
//! when they are merely close. This module therefore evaluates the CDF with
//! a three-way strategy:
//!
//! 1. all rates equal → exact Erlang CDF,
//! 2. all rates pairwise well-separated → the closed form above,
//! 3. otherwise → tiny deterministic perturbation of clustered rates,
//!    which bounds the error by `O(ε · r²)` while restoring case 2.
//!
//! The workhorse is the incremental [`Accumulator`]: it maintains the
//! coefficients `C_k` of the partial product and extends them by one stage
//! in `O(r)` using
//!
//! ```text
//! C'_k = C_k · λ_n / (λ_n − λ_k),    C'_n = Π_s λ_s / (λ_s − λ_n)
//! ```
//!
//! so a path search that grows paths hop by hop pays `O(r)` per extension
//! instead of re-deriving all coefficients in `O(r²)`. The batch [`cdf`]
//! function is defined *on top of* the accumulator (push the rates in
//! order, then evaluate), which makes batch and incremental evaluation
//! produce bit-identical results by construction — the property the
//! differential path-equivalence tests rely on.
//!
//! Property tests validate all branches against Monte-Carlo simulation.

/// Relative separation below which two rates are treated as "clustered"
/// and perturbed before using the distinct-rate closed form.
const REL_SEPARATION: f64 = 1e-4;

/// Relative perturbation applied to break rate clusters.
const REL_PERTURBATION: f64 = 1e-3;

/// Incrementally maintained hypoexponential CDF of a growing rate
/// sequence.
///
/// Pushing a rate costs `O(r)`; evaluating the CDF costs `O(r)`;
/// [`Accumulator::extended_cdf`] evaluates the CDF of the sequence plus
/// one extra stage in `O(r)` **without allocating or mutating** — the
/// exact value a `clone → push → cdf_at` round trip would produce.
///
/// # Example
///
/// ```
/// use dtn_core::hypoexp::{cdf, Accumulator};
///
/// let mut acc = Accumulator::new();
/// acc.push(1e-3);
/// acc.push(2e-3);
/// assert_eq!(acc.cdf_at(1500.0), cdf(&[1e-3, 2e-3], 1500.0));
/// // Candidate evaluation without materialising the extension:
/// assert_eq!(acc.extended_cdf(5e-4, 1500.0), cdf(&[1e-3, 2e-3, 5e-4], 1500.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    /// Raw rates in push order.
    rates: Vec<f64>,
    /// Effective (possibly perturbed) rates backing the coefficients.
    spread: Vec<f64>,
    /// Closed-form coefficients `C_k` over `spread`.
    coeffs: Vec<f64>,
    /// All raw rates pushed so far are bitwise equal (Erlang fast path).
    all_equal: bool,
}

impl Accumulator {
    /// An empty accumulator: the zero-hop path with CDF 1.
    pub fn new() -> Self {
        Accumulator {
            rates: Vec::new(),
            spread: Vec::new(),
            coeffs: Vec::new(),
            all_equal: true,
        }
    }

    /// Number of stages pushed so far.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether no stage has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Raw rates in push order.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn assert_rate(rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "contact rates must be finite and positive, got {rate}"
        );
    }

    /// Effective rate for a new stage: `rate` nudged upward until it is
    /// well-separated from every rate already backing the coefficients.
    /// Deterministic, and a function of the push prefix only — so any two
    /// evaluations that share a prefix share its perturbations.
    fn effective_rate(&self, rate: f64) -> f64 {
        let mut eff = rate;
        let mut adjusted = true;
        while adjusted {
            adjusted = false;
            for &s in &self.spread {
                if (eff - s).abs() <= REL_SEPARATION * eff.max(s) {
                    eff = eff.max(s) * (1.0 + REL_PERTURBATION);
                    adjusted = true;
                }
            }
        }
        eff
    }

    /// Appends one exponential stage with the given contact rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is non-positive or non-finite.
    pub fn push(&mut self, rate: f64) {
        Self::assert_rate(rate);
        if !self.rates.is_empty() && rate != self.rates[0] {
            self.all_equal = false;
        }
        let eff = self.effective_rate(rate);
        let mut c_new = 1.0;
        for k in 0..self.spread.len() {
            let lk = self.spread[k];
            // One reciprocal serves both the coefficient update
            // (eff/(eff−λk) = −eff·inv) and the new coefficient's factor
            // (λk·inv) — this exact operation order is mirrored by every
            // extension evaluator below, keeping them bit-identical.
            let inv = 1.0 / (lk - eff);
            self.coeffs[k] *= -eff * inv;
            c_new *= lk * inv;
        }
        self.rates.push(rate);
        self.spread.push(eff);
        self.coeffs.push(c_new);
    }

    /// CDF of the accumulated stage sequence at time `t` — the path
    /// weight `p(t)`, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN.
    pub fn cdf_at(&self, t: f64) -> f64 {
        assert!(!t.is_nan(), "time must not be NaN");
        if t <= 0.0 {
            return if self.rates.is_empty() { 1.0 } else { 0.0 };
        }
        if self.rates.is_empty() {
            return 1.0;
        }
        if self.all_equal {
            return erlang_cdf(self.rates[0], self.rates.len() as u32, t);
        }
        let mut acc = 0.0;
        for k in 0..self.spread.len() {
            acc += self.coeffs[k] * -(-self.spread[k] * t).exp_m1();
        }
        clamp01(acc)
    }

    /// CDF at `t` of the accumulated sequence extended by one stage of
    /// the given `rate`, without mutating or allocating.
    ///
    /// Performs the same floating-point operations in the same order as
    /// `clone() → push(rate) → cdf_at(t)`, so the result is bit-identical
    /// to that round trip — this is what lets an incremental path search
    /// agree exactly with batch re-evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is non-positive or non-finite, or `t` is NaN.
    pub fn extended_cdf(&self, rate: f64, t: f64) -> f64 {
        Self::assert_rate(rate);
        assert!(!t.is_nan(), "time must not be NaN");
        if t <= 0.0 {
            return 0.0;
        }
        if self.all_equal && (self.rates.is_empty() || rate == self.rates[0]) {
            return erlang_cdf(rate, self.rates.len() as u32 + 1, t);
        }
        let eff = self.effective_rate(rate);
        let mut c_new = 1.0;
        let mut acc = 0.0;
        for k in 0..self.spread.len() {
            let lk = self.spread[k];
            let inv = 1.0 / (lk - eff);
            acc += (self.coeffs[k] * (-eff * inv)) * -(-lk * t).exp_m1();
            c_new *= lk * inv;
        }
        acc += c_new * -(-eff * t).exp_m1();
        clamp01(acc)
    }
}

/// An [`Accumulator`] paired with a fixed evaluation time `t`, caching
/// the per-stage exponential factor `1 − e^{−λ_k t}` incrementally — the
/// path search's working representation of a settled node's path.
///
/// Two amortisations on top of the plain accumulator, both exact:
///
/// - **extension** ([`push`]) appends one cached exponential instead of
///   recomputing all of them, so extending a path costs one `exp`;
/// - **candidate evaluation** ([`extended_cdf`]) reuses the cached
///   factors and needs only a single fresh exponential per candidate,
///   with the cluster scan fused into the evaluation loop in the
///   (overwhelmingly common) well-separated case.
///
/// The cached factors are the exact bit patterns the inline expression
/// `-(-λ_k t).exp_m1()` produces (`exp_m1` is deterministic), and the
/// evaluation replays [`Accumulator::push`]'s arithmetic op for op, so
/// [`extended_cdf`] is bit-identical to a
/// `clone → push → cdf_at` round trip on the underlying accumulator.
///
/// [`push`]: HorizonAccumulator::push
/// [`extended_cdf`]: HorizonAccumulator::extended_cdf
#[derive(Debug, Clone)]
pub struct HorizonAccumulator {
    acc: Accumulator,
    t: f64,
    /// `-(-spread[k] * t).exp_m1()` per stage.
    em1: Vec<f64>,
}

impl HorizonAccumulator {
    /// An empty accumulator evaluating at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN.
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "time must not be NaN");
        HorizonAccumulator {
            acc: Accumulator::new(),
            t,
            em1: Vec::new(),
        }
    }

    /// The underlying rate accumulator.
    pub fn accumulator(&self) -> &Accumulator {
        &self.acc
    }

    /// The fixed evaluation time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Appends one exponential stage, extending the exponential cache by
    /// the new stage's factor — one `exp` regardless of path length.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is non-positive or non-finite.
    pub fn push(&mut self, rate: f64) {
        self.acc.push(rate);
        let eff = *self.acc.spread.last().expect("push appended a stage");
        self.em1.push(-(-eff * self.t).exp_m1());
    }

    /// CDF of the accumulated sequence at the fixed time.
    pub fn cdf(&self) -> f64 {
        self.acc.cdf_at(self.t)
    }

    /// CDF at the fixed time of the accumulated sequence extended by one
    /// stage of `rate` — bit-identical to
    /// [`Accumulator::extended_cdf`] with the same arguments, in `O(r)`
    /// multiply-adds and exactly one fresh exponential.
    ///
    /// When `rate` is well-separated from every existing stage (the
    /// common case), a branchless separation scan clears the way for a
    /// flat, autovectorizable evaluation loop; a clustered candidate
    /// falls back to the perturbing path before anything accumulates.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is non-positive or non-finite.
    pub fn extended_cdf(&self, rate: f64) -> f64 {
        Accumulator::assert_rate(rate);
        if self.t <= 0.0 {
            return 0.0;
        }
        let a = &self.acc;
        if a.all_equal && (a.rates.is_empty() || rate == a.rates[0]) {
            return erlang_cdf(rate, a.rates.len() as u32 + 1, self.t);
        }
        // Separation scan first, as its own branchless reduction: the
        // original fused check forced an early exit in every iteration
        // of the evaluation loop, defeating autovectorization. Hoisted,
        // the scan is a pure max/compare reduction and the evaluation
        // loop below runs flat. Bit-identical either way: the fused form
        // also bailed to the perturbed path before accumulating anything.
        let mut clustered = false;
        for &lk in &a.spread {
            clustered |= (rate - lk).abs() <= REL_SEPARATION * rate.max(lk);
        }
        if clustered {
            return self.extended_cdf_perturbed(rate);
        }
        // Flat evaluation: independent multiply-adds per stage, one
        // running product. Per-stage operation order matches the fused
        // original exactly — f64 accumulation is never reassociated.
        let mut c_new = 1.0;
        let mut sum = 0.0;
        for k in 0..a.spread.len() {
            let lk = a.spread[k];
            let inv = 1.0 / (lk - rate);
            sum += (a.coeffs[k] * (-rate * inv)) * self.em1[k];
            c_new *= lk * inv;
        }
        sum += c_new * -(-rate * self.t).exp_m1();
        clamp01(sum)
    }

    /// Slow path for clustered candidates: derive the perturbed
    /// effective rate exactly as [`Accumulator::push`] would, then
    /// evaluate with the cached exponentials.
    #[cold]
    fn extended_cdf_perturbed(&self, rate: f64) -> f64 {
        let a = &self.acc;
        let eff = a.effective_rate(rate);
        let mut c_new = 1.0;
        let mut sum = 0.0;
        for k in 0..a.spread.len() {
            let lk = a.spread[k];
            let inv = 1.0 / (lk - eff);
            sum += (a.coeffs[k] * (-eff * inv)) * self.em1[k];
            c_new *= lk * inv;
        }
        sum += c_new * -(-eff * self.t).exp_m1();
        clamp01(sum)
    }
}

/// Probability that a sum of independent exponentials with the given
/// `rates` is at most `t` — i.e. the probability that data traverses the
/// path within `t` seconds (the paper's path weight `p_AB(T)`, Eq. 2).
///
/// An empty `rates` slice denotes the zero-hop path from a node to itself
/// and has probability 1 for any `t ≥ 0`.
///
/// The result is clamped to `[0, 1]`. Defined as pushing the rates into
/// an [`Accumulator`] in order and evaluating, so batch and incremental
/// evaluation agree bitwise.
///
/// # Panics
///
/// Panics if any rate is non-positive or non-finite, or if `t` is NaN.
///
/// # Example
///
/// ```
/// use dtn_core::hypoexp::cdf;
///
/// // Single hop: plain exponential CDF.
/// let p = cdf(&[1.0 / 3600.0], 3600.0);
/// assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
///
/// // Adding a hop can only slow delivery down.
/// assert!(cdf(&[0.001, 0.002], 1000.0) < cdf(&[0.001], 1000.0));
/// ```
pub fn cdf(rates: &[f64], t: f64) -> f64 {
    assert!(!t.is_nan(), "time must not be NaN");
    let mut acc = Accumulator::new();
    for &r in rates {
        acc.push(r);
    }
    acc.cdf_at(t)
}

/// Mean of the hypoexponential distribution: `Σ 1/λ_k`, the expected
/// end-to-end delay of the path.
///
/// # Panics
///
/// Panics if any rate is non-positive or non-finite.
///
/// # Example
///
/// ```
/// use dtn_core::hypoexp::mean;
/// assert_eq!(mean(&[0.5, 0.25]), 2.0 + 4.0);
/// ```
pub fn mean(rates: &[f64]) -> f64 {
    rates
        .iter()
        .map(|&r| {
            assert!(r.is_finite() && r > 0.0, "rates must be positive, got {r}");
            1.0 / r
        })
        .sum()
}

/// Probability density of the hypoexponential distribution at `t`,
/// evaluated numerically as the derivative of [`cdf`] (central
/// difference with a step scaled to the distribution's mean).
///
/// Returns 0 for `t < 0` and for the empty path.
///
/// # Panics
///
/// Panics on the same invalid inputs as [`cdf`].
///
/// # Example
///
/// ```
/// use dtn_core::hypoexp::pdf;
/// // Single hop: f(t) = λ e^{−λt}.
/// let l = 0.01;
/// let approx = pdf(&[l], 50.0);
/// let exact = l * (-l * 50.0f64).exp();
/// assert!((approx - exact).abs() < 1e-6);
/// ```
pub fn pdf(rates: &[f64], t: f64) -> f64 {
    assert!(!t.is_nan(), "time must not be NaN");
    if rates.is_empty() || t < 0.0 {
        return 0.0;
    }
    let h = (mean(rates) * 1e-6).max(1e-9);
    let lo = (t - h).max(0.0);
    let hi = t + h;
    ((cdf(rates, hi) - cdf(rates, lo)) / (hi - lo)).max(0.0)
}

/// Erlang CDF: sum of `k` i.i.d. exponentials with rate `rate`.
///
/// `P(Y ≤ t) = 1 − e^{−λt} Σ_{n=0}^{k−1} (λt)^n / n!`
///
/// # Panics
///
/// Panics if `rate` is non-positive or `k == 0`.
///
/// # Example
///
/// ```
/// use dtn_core::hypoexp::erlang_cdf;
/// // One stage reduces to the exponential CDF.
/// let p = erlang_cdf(2.0, 1, 0.5);
/// assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// ```
pub fn erlang_cdf(rate: f64, k: u32, t: f64) -> f64 {
    assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
    assert!(k > 0, "Erlang shape must be at least 1");
    if t <= 0.0 {
        return 0.0;
    }
    let lt = rate * t;
    // Accumulate the truncated Poisson series term-by-term to avoid
    // computing large factorials explicitly.
    let mut term = 1.0;
    let mut sum = 1.0;
    for n in 1..k {
        term *= lt / n as f64;
        sum += term;
    }
    clamp01(1.0 - (-lt).exp() * sum)
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Monte-Carlo estimate of the hypoexponential CDF.
    fn mc_cdf(rates: &[f64], t: f64, samples: u32, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0u32;
        for _ in 0..samples {
            let total: f64 = rates
                .iter()
                .map(|&r| {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    -u.ln() / r
                })
                .sum();
            if total <= t {
                hits += 1;
            }
        }
        f64::from(hits) / f64::from(samples)
    }

    #[test]
    fn zero_hops_is_certain() {
        assert_eq!(cdf(&[], 0.0), 1.0);
        assert_eq!(cdf(&[], 100.0), 1.0);
    }

    #[test]
    fn zero_time_is_impossible_with_hops() {
        assert_eq!(cdf(&[1.0], 0.0), 0.0);
        assert_eq!(cdf(&[1.0, 2.0], -5.0), 0.0);
    }

    #[test]
    fn single_hop_matches_exponential() {
        let l = 1.0 / 3600.0;
        for t in [60.0f64, 3600.0, 86_400.0] {
            let expect = 1.0 - (-l * t).exp();
            assert!((cdf(&[l], t) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn equal_rates_match_erlang() {
        let p = cdf(&[0.5, 0.5, 0.5], 4.0);
        let e = erlang_cdf(0.5, 3, 4.0);
        assert!((p - e).abs() < 1e-12, "{p} vs {e}");
    }

    #[test]
    fn distinct_rates_match_monte_carlo() {
        let rates = [1.0 / 100.0, 1.0 / 350.0, 1.0 / 1000.0];
        for t in [200.0, 1000.0, 4000.0] {
            let exact = cdf(&rates, t);
            let approx = mc_cdf(&rates, t, 200_000, 42);
            assert!(
                (exact - approx).abs() < 5e-3,
                "t={t}: exact {exact} vs mc {approx}"
            );
        }
    }

    #[test]
    fn near_equal_rates_are_stable_and_accurate() {
        // Rates that differ by 1e-9 relative — the naive closed form
        // produces garbage here; the cluster-spreading path must not.
        let base = 1.0 / 500.0;
        let rates = [base, base * (1.0 + 1e-9), base * (1.0 - 1e-9)];
        let t = 1500.0;
        let exact = cdf(&rates, t);
        let erlang = erlang_cdf(base, 3, t);
        assert!(
            (exact - erlang).abs() < 1e-2,
            "stabilised {exact} vs erlang {erlang}"
        );
        assert!((0.0..=1.0).contains(&exact));
    }

    #[test]
    fn erlang_cdf_monotone_in_stages() {
        // More stages → stochastically larger sum → smaller CDF.
        let (rate, t) = (0.01, 300.0);
        let mut prev = 1.0;
        for k in 1..8 {
            let p = erlang_cdf(rate, k, t);
            assert!(p < prev, "k={k}: {p} !< {prev}");
            prev = p;
        }
    }

    #[test]
    fn pdf_matches_exponential_for_one_hop() {
        let l = 1.0 / 500.0;
        for t in [10.0f64, 250.0, 2000.0] {
            let exact = l * (-l * t).exp();
            assert!((pdf(&[l], t) - exact).abs() < 1e-7, "t={t}");
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoid integral of the pdf tracks the CDF.
        let rates = [1e-3, 2e-3];
        let (mut acc, dt) = (0.0, 5.0);
        let mut t = 0.0;
        while t < 3000.0 {
            acc += 0.5 * (pdf(&rates, t) + pdf(&rates, t + dt)) * dt;
            t += dt;
        }
        let exact = cdf(&rates, 3000.0);
        assert!((acc - exact).abs() < 1e-3, "{acc} vs {exact}");
    }

    #[test]
    fn pdf_edge_cases() {
        assert_eq!(pdf(&[], 5.0), 0.0);
        assert_eq!(pdf(&[0.1], -1.0), 0.0);
        assert!(pdf(&[0.1, 0.1], 0.0) >= 0.0);
    }

    #[test]
    fn mean_is_sum_of_inverse_rates() {
        assert!((mean(&[0.1, 0.2]) - 15.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let _ = cdf(&[0.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_time() {
        let _ = cdf(&[1.0], f64::NAN);
    }

    #[test]
    fn accumulator_empty_is_certain() {
        let acc = Accumulator::new();
        assert!(acc.is_empty());
        assert_eq!(acc.cdf_at(0.0), 1.0);
        assert_eq!(acc.cdf_at(100.0), 1.0);
    }

    #[test]
    fn accumulator_matches_batch_bitwise() {
        let sequences: [&[f64]; 6] = [
            &[1e-3],
            &[1e-3, 2e-3],
            &[5e-4, 5e-4, 5e-4],
            &[1e-2, 1e-5, 3e-3, 7e-4],
            &[2e-3, 2e-3 * (1.0 + 1e-9)],
            &[1e-4, 1e-4, 9e-2, 1e-4],
        ];
        for rates in sequences {
            let mut acc = Accumulator::new();
            for &r in rates {
                acc.push(r);
            }
            for t in [0.0, 30.0, 900.0, 40_000.0] {
                let batch = cdf(rates, t);
                let inc = acc.cdf_at(t);
                assert!(
                    batch == inc,
                    "rates {rates:?} t={t}: batch {batch} != incremental {inc}"
                );
            }
        }
    }

    #[test]
    fn extended_cdf_matches_push_bitwise() {
        let prefix = [1e-3, 4e-3, 4e-3];
        let extensions = [2e-3, 4e-3, 4e-3 * (1.0 + 1e-9), 1e-6];
        let mut acc = Accumulator::new();
        for &r in &prefix {
            acc.push(r);
        }
        for &ext in &extensions {
            for t in [0.0, 120.0, 5_000.0] {
                let lazy = acc.extended_cdf(ext, t);
                let mut materialised = acc.clone();
                materialised.push(ext);
                let eager = materialised.cdf_at(t);
                assert!(
                    lazy == eager,
                    "ext {ext} t={t}: extended {lazy} != push+eval {eager}"
                );
            }
        }
        // From an empty accumulator too (the source-node case).
        let empty = Accumulator::new();
        assert_eq!(empty.extended_cdf(1e-3, 500.0), cdf(&[1e-3], 500.0));
    }

    #[test]
    fn horizon_accumulator_matches_extended_cdf_bitwise() {
        let prefixes: [&[f64]; 4] = [&[], &[1e-3], &[4e-3, 4e-3], &[1e-2, 1e-5, 3e-3, 7e-4]];
        // Includes a clustered extension (relative gap 1e-9) to force the
        // perturbing slow path, and exact-duplicate rates for the Erlang
        // branch.
        let extensions = [2e-3, 4e-3, 4e-3 * (1.0 + 1e-9), 1e-6];
        for prefix in prefixes {
            for t in [0.0, 120.0, 5_000.0] {
                let mut acc = Accumulator::new();
                let mut hacc = HorizonAccumulator::new(t);
                for &r in prefix {
                    acc.push(r);
                    hacc.push(r);
                }
                assert_eq!(hacc.cdf(), acc.cdf_at(t));
                for &ext in &extensions {
                    let hoisted = hacc.extended_cdf(ext);
                    let inline = acc.extended_cdf(ext, t);
                    assert!(
                        hoisted == inline,
                        "prefix {prefix:?} ext {ext} t={t}: hoisted {hoisted} != inline {inline}"
                    );
                }
            }
        }
    }

    #[test]
    fn accumulator_extension_never_raises_cdf() {
        // Monotonicity under extension is what makes label-setting exact;
        // the incremental form must preserve it for shared prefixes.
        let mut acc = Accumulator::new();
        let t = 2_000.0;
        let mut prev = acc.cdf_at(t);
        for &r in &[3e-3, 3e-3, 1e-2, 3e-3 * (1.0 + 1e-8), 5e-4] {
            let lazy = acc.extended_cdf(r, t);
            assert!(lazy <= prev, "extension raised weight {prev} -> {lazy}");
            acc.push(r);
            prev = acc.cdf_at(t);
            assert_eq!(prev, lazy);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn rate_strategy() -> impl Strategy<Value = f64> {
            // Rates from ~1/month to ~1/10s, the realistic DTN range.
            (1e-7f64..1e-1).prop_map(|x| x)
        }

        proptest! {
            #[test]
            fn cdf_is_probability(
                rates in prop::collection::vec(rate_strategy(), 1..6),
                t in 0.0f64..1e7,
            ) {
                let p = cdf(&rates, t);
                prop_assert!((0.0..=1.0).contains(&p), "p={p}");
            }

            #[test]
            fn cdf_monotone_in_time(
                rates in prop::collection::vec(rate_strategy(), 1..6),
                t1 in 0.0f64..1e6,
                dt in 0.0f64..1e6,
            ) {
                let p1 = cdf(&rates, t1);
                let p2 = cdf(&rates, t1 + dt);
                prop_assert!(p2 >= p1 - 1e-9, "p({})={} > p({})={}", t1, p1, t1 + dt, p2);
            }

            #[test]
            fn extra_hop_never_helps(
                rates in prop::collection::vec(rate_strategy(), 1..5),
                extra in rate_strategy(),
                t in 1.0f64..1e6,
            ) {
                let base = cdf(&rates, t);
                let mut longer = rates.clone();
                longer.push(extra);
                let ext = cdf(&longer, t);
                prop_assert!(ext <= base + 1e-6, "extending path raised p: {base} -> {ext}");
            }

            #[test]
            fn closed_form_tracks_monte_carlo(
                rates in prop::collection::vec(1e-4f64..1e-1, 2..5),
                t in 10.0f64..1e5,
                seed in any::<u64>(),
            ) {
                let exact = cdf(&rates, t);
                let approx = mc_cdf(&rates, t, 20_000, seed);
                prop_assert!((exact - approx).abs() < 0.02,
                    "exact {exact} vs mc {approx} for rates {rates:?}, t={t}");
            }

            #[test]
            fn incremental_and_batch_agree(
                rates in prop::collection::vec(rate_strategy(), 1..7),
                t in 0.0f64..1e6,
            ) {
                let mut acc = Accumulator::new();
                let mut hacc = HorizonAccumulator::new(t);
                for (i, &r) in rates.iter().enumerate() {
                    // Candidate evaluation (inline and with hoisted
                    // exponentials), materialisation and batch
                    // re-evaluation must all agree exactly at every prefix.
                    let lazy = acc.extended_cdf(r, t);
                    let hoisted = hacc.extended_cdf(r);
                    acc.push(r);
                    hacc.push(r);
                    let eager = acc.cdf_at(t);
                    let batch = cdf(&rates[..=i], t);
                    prop_assert!(lazy == hoisted && lazy == eager && eager == batch,
                        "prefix {:?} t={}: lazy {} hoisted {} eager {} batch {}",
                        &rates[..=i], t, lazy, hoisted, eager, batch);
                }
            }
        }
    }
}
