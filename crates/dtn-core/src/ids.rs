//! Identifier newtypes for nodes, data items and queries.
//!
//! Plain integers are easy to mix up in a simulator that juggles node
//! indices, data identifiers and query identifiers at the same time; the
//! newtypes below make such confusion a compile error (C-NEWTYPE).

use std::fmt;

/// Identifier of a mobile node (a device/user) in the network.
///
/// Nodes are dense indices `0..N`, which lets graph code use them directly
/// as `Vec` indices via [`NodeId::index`].
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// let n = NodeId(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as a `usize` suitable for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Globally unique identifier of a data item.
///
/// The paper assumes "each node may generate data with a globally unique
/// identifier"; the simulator hands these out sequentially.
///
/// # Example
///
/// ```
/// use dtn_core::ids::DataId;
/// assert_eq!(DataId(7).to_string(), "d7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DataId(pub u64);

impl fmt::Display for DataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

impl From<u64> for DataId {
    fn from(v: u64) -> Self {
        DataId(v)
    }
}

/// Globally unique identifier of a query.
///
/// # Example
///
/// ```
/// use dtn_core::ids::QueryId;
/// assert_eq!(QueryId(42).to_string(), "q42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u64> for QueryId {
    fn from(v: u64) -> Self {
        QueryId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip_and_index() {
        let n: NodeId = 5u32.into();
        assert_eq!(n, NodeId(5));
        assert_eq!(n.index(), 5);
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        assert_eq!(NodeId(1).to_string(), "n1");
        assert_eq!(DataId(1).to_string(), "d1");
        assert_eq!(QueryId(1).to_string(), "q1");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(DataId(1));
        set.insert(DataId(1));
        set.insert(DataId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
        assert!(QueryId(9) > QueryId(8));
    }
}
