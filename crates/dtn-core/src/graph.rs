//! The network contact graph `G(V, E)`.
//!
//! Vertices are mobile nodes; an undirected edge `e_ij` with weight `λ_ij`
//! models the Poisson contact process between nodes `i` and `j` (§III-B of
//! the paper). The graph is the input to opportunistic-path search
//! ([`crate::path`]) and NCL selection ([`crate::ncl`]).

use crate::ids::NodeId;
use crate::rate::RateTable;
use crate::time::Time;

/// Undirected contact graph with exponential contact rates as edge weights.
///
/// # Example
///
/// ```
/// use dtn_core::graph::ContactGraph;
/// use dtn_core::ids::NodeId;
///
/// let mut g = ContactGraph::new(3);
/// g.set_rate(NodeId(0), NodeId(1), 0.5);
/// assert_eq!(g.rate(NodeId(1), NodeId(0)), Some(0.5));
/// assert_eq!(g.rate(NodeId(1), NodeId(2)), None);
/// assert_eq!(g.degree(NodeId(0)), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContactGraph {
    /// adjacency[i] = sorted-by-insertion list of (neighbor, rate)
    adjacency: Vec<Vec<(NodeId, f64)>>,
}

impl ContactGraph {
    /// Creates a graph of `nodes` isolated nodes.
    pub fn new(nodes: usize) -> Self {
        ContactGraph {
            adjacency: vec![Vec::new(); nodes],
        }
    }

    /// Builds the graph from every pair in a [`RateTable`] that has met at
    /// least once, using the rates estimated at time `now`.
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_core::graph::ContactGraph;
    /// use dtn_core::ids::NodeId;
    /// use dtn_core::rate::RateTable;
    /// use dtn_core::time::Time;
    ///
    /// let mut table = RateTable::new(3, Time::ZERO);
    /// table.record(NodeId(0), NodeId(1), Time(50));
    /// let g = ContactGraph::from_rate_table(&table, Time(100));
    /// assert_eq!(g.edge_count(), 1);
    /// ```
    pub fn from_rate_table(table: &RateTable, now: Time) -> Self {
        let mut g = ContactGraph::new(table.node_count());
        for (a, b, rate) in table.iter_rates(now) {
            g.set_rate(a, b, rate);
        }
        g
    }

    /// Rebuilds this graph in place from a [`RateTable`], reusing the
    /// per-node adjacency allocations. Equivalent to replacing `self`
    /// with [`ContactGraph::from_rate_table`], but allocation-free once
    /// the graph has reached its steady-state size — the path periodic
    /// re-elections take.
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_core::graph::ContactGraph;
    /// use dtn_core::ids::NodeId;
    /// use dtn_core::rate::RateTable;
    /// use dtn_core::time::Time;
    ///
    /// let mut table = RateTable::new(3, Time::ZERO);
    /// table.record(NodeId(0), NodeId(1), Time(50));
    /// let mut g = ContactGraph::new(0);
    /// g.refresh_from_rate_table(&table, Time(100));
    /// assert_eq!(g.node_count(), 3);
    /// assert_eq!(g.edge_count(), 1);
    /// ```
    pub fn refresh_from_rate_table(&mut self, table: &RateTable, now: Time) {
        self.reset_for(table.node_count());
        for (a, b, rate) in table.iter_rates(now) {
            self.set_rate(a, b, rate);
        }
    }

    /// Like [`ContactGraph::refresh_from_rate_table`], but weighting
    /// edges by the regime-tracking
    /// [`current_rate`](crate::rate::RateEstimator::current_rate)
    /// instead of the cumulative time average. Pairs that have gone
    /// silent see their rates decay, so the graph reflects the *current*
    /// contact regime — the view online NCL re-election needs to demote
    /// hubs that stopped meeting anyone.
    pub fn refresh_from_current_rates(&mut self, table: &RateTable, now: Time) {
        self.reset_for(table.node_count());
        for (a, b, rate) in table.iter_current_rates(now) {
            self.set_rate(a, b, rate);
        }
    }

    /// Clears all edges and resizes to `nodes`, keeping allocations.
    fn reset_for(&mut self, nodes: usize) {
        self.adjacency.resize(nodes, Vec::new());
        for list in &mut self.adjacency {
            list.clear();
        }
    }

    /// Number of nodes (including isolated ones).
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Sets (or replaces) the contact rate of the pair `a`–`b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, either node is out of range, or `rate` is not
    /// finite and positive.
    pub fn set_rate(&mut self, a: NodeId, b: NodeId, rate: f64) {
        assert_ne!(a, b, "a node does not contact itself");
        assert!(
            rate.is_finite() && rate > 0.0,
            "contact rate must be finite and positive, got {rate}"
        );
        let n = self.adjacency.len();
        assert!(
            a.index() < n && b.index() < n,
            "node out of range for graph of {n} nodes"
        );
        Self::upsert(&mut self.adjacency[a.index()], b, rate);
        Self::upsert(&mut self.adjacency[b.index()], a, rate);
    }

    fn upsert(list: &mut Vec<(NodeId, f64)>, peer: NodeId, rate: f64) {
        if let Some(entry) = list.iter_mut().find(|(p, _)| *p == peer) {
            entry.1 = rate;
        } else {
            list.push((peer, rate));
        }
    }

    /// The contact rate of the pair, or `None` if they never meet.
    pub fn rate(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.adjacency
            .get(a.index())?
            .iter()
            .find(|(p, _)| *p == b)
            .map(|(_, r)| *r)
    }

    /// Neighbors of `node` with their contact rates.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, f64)] {
        &self.adjacency[node.index()]
    }

    /// Number of distinct nodes `node` ever meets.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Iterates over all node ids of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// Assigns each node a connected-component id (`0..component
    /// count`, in order of first discovery).
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_core::graph::ContactGraph;
    /// use dtn_core::ids::NodeId;
    ///
    /// let mut g = ContactGraph::new(4);
    /// g.set_rate(NodeId(0), NodeId(1), 0.1);
    /// let comps = g.connected_components();
    /// assert_eq!(comps[0], comps[1]);
    /// assert_ne!(comps[0], comps[2]);
    /// ```
    pub fn connected_components(&self) -> Vec<usize> {
        let n = self.adjacency.len();
        let mut component = vec![usize::MAX; n];
        let mut next = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            component[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for &(peer, _) in &self.adjacency[u] {
                    if component[peer.index()] == usize::MAX {
                        component[peer.index()] = next;
                        stack.push(peer.index());
                    }
                }
            }
            next += 1;
        }
        component
    }

    /// Whether the subgraph induced by `nodes` is connected — the
    /// structural property the paper claims for each NCL's caching
    /// nodes ("the set of caching nodes at each NCL forms a connected
    /// subgraph of the network contact graph", §V-A).
    ///
    /// An empty or single-node set counts as connected.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    pub fn is_connected_subset(&self, nodes: &[NodeId]) -> bool {
        if nodes.len() <= 1 {
            return true;
        }
        let member: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![nodes[0]];
        seen.insert(nodes[0]);
        while let Some(u) = stack.pop() {
            for &(peer, _) in self.neighbors(u) {
                if member.contains(&peer) && seen.insert(peer) {
                    stack.push(peer);
                }
            }
        }
        seen.len() == member.len()
    }
}

/// Read-only view of a contact graph, abstracting over its storage.
///
/// Path search ([`crate::path`]) and NCL selection ([`crate::ncl`]) are
/// generic over this trait, so they run unchanged on the pointer-rich
/// [`ContactGraph`] (small networks, incremental edits) and on the
/// compact [`CsrGraph`] (city-scale networks, build-once sweeps).
pub trait Topology {
    /// Number of nodes (including isolated ones).
    fn node_count(&self) -> usize;

    /// Neighbors of `node` with their contact rates.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn neighbors(&self, node: NodeId) -> &[(NodeId, f64)];

    /// Number of distinct nodes `node` ever meets.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }
}

impl Topology for ContactGraph {
    fn node_count(&self) -> usize {
        ContactGraph::node_count(self)
    }

    fn neighbors(&self, node: NodeId) -> &[(NodeId, f64)] {
        ContactGraph::neighbors(self, node)
    }
}

/// Compressed-sparse-row contact graph for city-scale networks.
///
/// Stores the same undirected weighted graph as [`ContactGraph`] in two
/// flat arrays: `offsets[i]..offsets[i + 1]` indexes the entry slice of
/// node `i`. Per-node overhead is one `u32`; each directed half-edge is
/// one `(NodeId, f64)` entry. Neighbors are sorted by ascending id,
/// which [`CsrGraph::rate`] exploits with a binary search.
///
/// The graph is build-once: there is no `set_rate`. Rebuild from edges
/// (or a [`RateTable`]) when rates change.
///
/// # Example
///
/// ```
/// use dtn_core::graph::{CsrGraph, Topology};
/// use dtn_core::ids::NodeId;
///
/// let g = CsrGraph::from_edges(3, [(NodeId(0), NodeId(1), 0.5)]);
/// assert_eq!(g.rate(NodeId(1), NodeId(0)), Some(0.5));
/// assert_eq!(g.degree(NodeId(0)), 1);
/// assert_eq!(g.degree(NodeId(2)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    /// `offsets[i]..offsets[i + 1]` bounds node `i`'s entries; length
    /// `node_count + 1`. u32 suffices for < 4 B directed half-edges.
    offsets: Vec<u32>,
    /// Directed half-edges `(neighbor, rate)`, sorted by ascending
    /// neighbor id within each node's slice.
    entries: Vec<(NodeId, f64)>,
}

impl CsrGraph {
    /// Builds the graph from undirected edges `(a, b, rate)`.
    ///
    /// Duplicate pairs keep the last rate given, matching
    /// [`ContactGraph::set_rate`] replace semantics.
    ///
    /// # Panics
    ///
    /// Panics if any edge has `a == b`, a node out of range, or a rate
    /// that is not finite and positive.
    pub fn from_edges(
        nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>,
    ) -> Self {
        let mut directed: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for (a, b, rate) in edges {
            assert_ne!(a, b, "a node does not contact itself");
            assert!(
                rate.is_finite() && rate > 0.0,
                "contact rate must be finite and positive, got {rate}"
            );
            assert!(
                a.index() < nodes && b.index() < nodes,
                "node out of range for graph of {nodes} nodes"
            );
            directed.push((a, b, rate));
            directed.push((b, a, rate));
        }
        // Stable by (source, neighbor): later duplicates stay adjacent
        // and later-given rates win below.
        directed.sort_by_key(|&(src, dst, _)| (src, dst));
        let mut offsets = vec![0u32; nodes + 1];
        let mut entries: Vec<(NodeId, f64)> = Vec::with_capacity(directed.len());
        for &(src, dst, rate) in &directed {
            if let Some(&mut (last, ref mut r)) = entries.last_mut() {
                // `offsets[i + 1]` is node i's entry count during this
                // pass, so a non-zero count means the trailing entry is
                // `src`'s and a matching neighbor is a duplicate pair.
                if offsets[src.index() + 1] > 0 && last == dst {
                    *r = rate; // duplicate pair: replace, don't append
                    continue;
                }
            }
            entries.push((dst, rate));
            offsets[src.index() + 1] += 1;
        }
        for i in 0..nodes {
            offsets[i + 1] += offsets[i];
        }
        CsrGraph { offsets, entries }
    }

    /// Builds the graph from every pair in a [`RateTable`] that has met
    /// at least once, using the rates estimated at time `now`. The CSR
    /// counterpart of [`ContactGraph::from_rate_table`]; same edge set,
    /// but neighbors come out sorted by id rather than in insertion
    /// order.
    pub fn from_rate_table(table: &RateTable, now: Time) -> Self {
        CsrGraph::from_edges(table.node_count(), table.iter_rates(now))
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.entries.len() / 2
    }

    /// The contact rate of the pair, or `None` if they never meet.
    pub fn rate(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let list = Topology::neighbors(self, a);
        let i = list.binary_search_by_key(&b, |&(p, _)| p).ok()?;
        Some(list[i].1)
    }

    /// Iterates over all node ids of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }
}

impl Topology for CsrGraph {
    fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    fn neighbors(&self, node: NodeId) -> &[(NodeId, f64)] {
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        &self.entries[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::RateTable;

    #[test]
    fn empty_graph() {
        let g = ContactGraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(g.rate(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn set_rate_is_symmetric_and_replaces() {
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(1), 0.25);
        assert_eq!(g.rate(NodeId(0), NodeId(1)), Some(0.25));
        assert_eq!(g.rate(NodeId(1), NodeId(0)), Some(0.25));
        g.set_rate(NodeId(1), NodeId(0), 0.5);
        assert_eq!(g.rate(NodeId(0), NodeId(1)), Some(0.5));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbors_reflect_edges() {
        let mut g = ContactGraph::new(4);
        g.set_rate(NodeId(0), NodeId(1), 0.1);
        g.set_rate(NodeId(0), NodeId(2), 0.2);
        let mut peers: Vec<u32> = g.neighbors(NodeId(0)).iter().map(|(p, _)| p.0).collect();
        peers.sort_unstable();
        assert_eq!(peers, vec![1, 2]);
        assert_eq!(g.degree(NodeId(3)), 0);
    }

    #[test]
    fn refresh_matches_from_rate_table_and_drops_stale_edges() {
        let mut t = RateTable::new(4, Time::ZERO);
        t.record(NodeId(0), NodeId(1), Time(10));
        let mut g = ContactGraph::new(4);
        // A stale edge from a previous refresh must disappear.
        g.set_rate(NodeId(2), NodeId(3), 0.9);
        g.refresh_from_rate_table(&t, Time(100));
        let fresh = ContactGraph::from_rate_table(&t, Time(100));
        assert_eq!(g.node_count(), fresh.node_count());
        assert_eq!(g.edge_count(), fresh.edge_count());
        assert_eq!(
            g.rate(NodeId(0), NodeId(1)),
            fresh.rate(NodeId(0), NodeId(1))
        );
        assert_eq!(g.rate(NodeId(2), NodeId(3)), None);
    }

    #[test]
    fn from_rate_table_carries_rates() {
        let mut t = RateTable::new(3, Time::ZERO);
        t.record(NodeId(0), NodeId(2), Time(10));
        t.record(NodeId(0), NodeId(2), Time(20));
        let g = ContactGraph::from_rate_table(&t, Time(100));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.rate(NodeId(0), NodeId(2)), Some(0.02));
    }

    #[test]
    fn nodes_iterates_all() {
        let g = ContactGraph::new(3);
        let ids: Vec<_> = g.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn components_identify_islands() {
        let mut g = ContactGraph::new(6);
        g.set_rate(NodeId(0), NodeId(1), 0.1);
        g.set_rate(NodeId(1), NodeId(2), 0.1);
        g.set_rate(NodeId(3), NodeId(4), 0.1);
        let comps = g.connected_components();
        assert_eq!(comps[0], comps[1]);
        assert_eq!(comps[1], comps[2]);
        assert_eq!(comps[3], comps[4]);
        assert_ne!(comps[0], comps[3]);
        assert_ne!(comps[5], comps[0]);
        assert_ne!(comps[5], comps[3]);
    }

    #[test]
    fn connected_subset_checks_induced_graph() {
        let mut g = ContactGraph::new(5);
        // path 0-1-2-3
        g.set_rate(NodeId(0), NodeId(1), 0.1);
        g.set_rate(NodeId(1), NodeId(2), 0.1);
        g.set_rate(NodeId(2), NodeId(3), 0.1);
        assert!(g.is_connected_subset(&[NodeId(0), NodeId(1), NodeId(2)]));
        // 0 and 2 are connected in G but not in the induced subgraph
        // (the connecting node 1 is excluded).
        assert!(!g.is_connected_subset(&[NodeId(0), NodeId(2)]));
        assert!(g.is_connected_subset(&[NodeId(4)]));
        assert!(g.is_connected_subset(&[]));
    }

    #[test]
    fn csr_matches_contact_graph_from_rate_table() {
        let mut t = RateTable::new(5, Time::ZERO);
        t.record(NodeId(0), NodeId(1), Time(10));
        t.record(NodeId(0), NodeId(1), Time(30));
        t.record(NodeId(3), NodeId(1), Time(40));
        t.record(NodeId(2), NodeId(4), Time(50));
        let dense = ContactGraph::from_rate_table(&t, Time(100));
        let csr = CsrGraph::from_rate_table(&t, Time(100));
        assert_eq!(Topology::node_count(&csr), dense.node_count());
        assert_eq!(csr.edge_count(), dense.edge_count());
        for a in dense.nodes() {
            assert_eq!(Topology::degree(&csr, a), dense.degree(a));
            for b in dense.nodes() {
                if a != b {
                    assert_eq!(csr.rate(a, b), dense.rate(a, b), "pair {a:?}-{b:?}");
                }
            }
        }
    }

    #[test]
    fn csr_neighbors_are_sorted_and_symmetric() {
        let g = CsrGraph::from_edges(
            4,
            [
                (NodeId(2), NodeId(0), 0.3),
                (NodeId(0), NodeId(1), 0.1),
                (NodeId(3), NodeId(0), 0.2),
            ],
        );
        let peers: Vec<u32> = Topology::neighbors(&g, NodeId(0))
            .iter()
            .map(|&(p, _)| p.0)
            .collect();
        assert_eq!(peers, vec![1, 2, 3]);
        assert_eq!(g.rate(NodeId(3), NodeId(0)), Some(0.2));
        assert_eq!(g.rate(NodeId(1), NodeId(2)), None);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn csr_duplicate_pairs_keep_last_rate() {
        let g = CsrGraph::from_edges(
            3,
            [(NodeId(0), NodeId(1), 0.1), (NodeId(1), NodeId(0), 0.9)],
        );
        assert_eq!(g.rate(NodeId(0), NodeId(1)), Some(0.9));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(Topology::degree(&g, NodeId(0)), 1);
    }

    #[test]
    fn csr_empty_and_isolated_nodes() {
        let g = CsrGraph::from_edges(3, []);
        assert_eq!(Topology::node_count(&g), 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(Topology::degree(&g, NodeId(2)), 0);
        let empty = CsrGraph::default();
        assert_eq!(Topology::node_count(&empty), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn csr_rejects_out_of_range() {
        let _ = CsrGraph::from_edges(2, [(NodeId(0), NodeId(5), 0.1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_rate() {
        let mut g = ContactGraph::new(2);
        g.set_rate(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = ContactGraph::new(2);
        g.set_rate(NodeId(0), NodeId(7), 0.1);
    }
}
