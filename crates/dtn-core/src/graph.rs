//! The network contact graph `G(V, E)`.
//!
//! Vertices are mobile nodes; an undirected edge `e_ij` with weight `λ_ij`
//! models the Poisson contact process between nodes `i` and `j` (§III-B of
//! the paper). The graph is the input to opportunistic-path search
//! ([`crate::path`]) and NCL selection ([`crate::ncl`]).

use crate::ids::NodeId;
use crate::rate::RateTable;
use crate::time::Time;

/// Undirected contact graph with exponential contact rates as edge weights.
///
/// # Example
///
/// ```
/// use dtn_core::graph::ContactGraph;
/// use dtn_core::ids::NodeId;
///
/// let mut g = ContactGraph::new(3);
/// g.set_rate(NodeId(0), NodeId(1), 0.5);
/// assert_eq!(g.rate(NodeId(1), NodeId(0)), Some(0.5));
/// assert_eq!(g.rate(NodeId(1), NodeId(2)), None);
/// assert_eq!(g.degree(NodeId(0)), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContactGraph {
    /// adjacency[i] = sorted-by-insertion list of (neighbor, rate)
    adjacency: Vec<Vec<(NodeId, f64)>>,
}

impl ContactGraph {
    /// Creates a graph of `nodes` isolated nodes.
    pub fn new(nodes: usize) -> Self {
        ContactGraph {
            adjacency: vec![Vec::new(); nodes],
        }
    }

    /// Builds the graph from every pair in a [`RateTable`] that has met at
    /// least once, using the rates estimated at time `now`.
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_core::graph::ContactGraph;
    /// use dtn_core::ids::NodeId;
    /// use dtn_core::rate::RateTable;
    /// use dtn_core::time::Time;
    ///
    /// let mut table = RateTable::new(3, Time::ZERO);
    /// table.record(NodeId(0), NodeId(1), Time(50));
    /// let g = ContactGraph::from_rate_table(&table, Time(100));
    /// assert_eq!(g.edge_count(), 1);
    /// ```
    pub fn from_rate_table(table: &RateTable, now: Time) -> Self {
        let mut g = ContactGraph::new(table.node_count());
        for (a, b, rate) in table.iter_rates(now) {
            g.set_rate(a, b, rate);
        }
        g
    }

    /// Rebuilds this graph in place from a [`RateTable`], reusing the
    /// per-node adjacency allocations. Equivalent to replacing `self`
    /// with [`ContactGraph::from_rate_table`], but allocation-free once
    /// the graph has reached its steady-state size — the path periodic
    /// re-elections take.
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_core::graph::ContactGraph;
    /// use dtn_core::ids::NodeId;
    /// use dtn_core::rate::RateTable;
    /// use dtn_core::time::Time;
    ///
    /// let mut table = RateTable::new(3, Time::ZERO);
    /// table.record(NodeId(0), NodeId(1), Time(50));
    /// let mut g = ContactGraph::new(0);
    /// g.refresh_from_rate_table(&table, Time(100));
    /// assert_eq!(g.node_count(), 3);
    /// assert_eq!(g.edge_count(), 1);
    /// ```
    pub fn refresh_from_rate_table(&mut self, table: &RateTable, now: Time) {
        self.reset_for(table.node_count());
        for (a, b, rate) in table.iter_rates(now) {
            self.set_rate(a, b, rate);
        }
    }

    /// Like [`ContactGraph::refresh_from_rate_table`], but weighting
    /// edges by the regime-tracking
    /// [`current_rate`](crate::rate::RateEstimator::current_rate)
    /// instead of the cumulative time average. Pairs that have gone
    /// silent see their rates decay, so the graph reflects the *current*
    /// contact regime — the view online NCL re-election needs to demote
    /// hubs that stopped meeting anyone.
    pub fn refresh_from_current_rates(&mut self, table: &RateTable, now: Time) {
        self.reset_for(table.node_count());
        for (a, b, rate) in table.iter_current_rates(now) {
            self.set_rate(a, b, rate);
        }
    }

    /// Clears all edges and resizes to `nodes`, keeping allocations.
    fn reset_for(&mut self, nodes: usize) {
        self.adjacency.resize(nodes, Vec::new());
        for list in &mut self.adjacency {
            list.clear();
        }
    }

    /// Number of nodes (including isolated ones).
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Sets (or replaces) the contact rate of the pair `a`–`b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`, either node is out of range, or `rate` is not
    /// finite and positive.
    pub fn set_rate(&mut self, a: NodeId, b: NodeId, rate: f64) {
        assert_ne!(a, b, "a node does not contact itself");
        assert!(
            rate.is_finite() && rate > 0.0,
            "contact rate must be finite and positive, got {rate}"
        );
        let n = self.adjacency.len();
        assert!(
            a.index() < n && b.index() < n,
            "node out of range for graph of {n} nodes"
        );
        Self::upsert(&mut self.adjacency[a.index()], b, rate);
        Self::upsert(&mut self.adjacency[b.index()], a, rate);
    }

    fn upsert(list: &mut Vec<(NodeId, f64)>, peer: NodeId, rate: f64) {
        if let Some(entry) = list.iter_mut().find(|(p, _)| *p == peer) {
            entry.1 = rate;
        } else {
            list.push((peer, rate));
        }
    }

    /// The contact rate of the pair, or `None` if they never meet.
    pub fn rate(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.adjacency
            .get(a.index())?
            .iter()
            .find(|(p, _)| *p == b)
            .map(|(_, r)| *r)
    }

    /// Neighbors of `node` with their contact rates.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, f64)] {
        &self.adjacency[node.index()]
    }

    /// Number of distinct nodes `node` ever meets.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Iterates over all node ids of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// Assigns each node a connected-component id (`0..component
    /// count`, in order of first discovery).
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_core::graph::ContactGraph;
    /// use dtn_core::ids::NodeId;
    ///
    /// let mut g = ContactGraph::new(4);
    /// g.set_rate(NodeId(0), NodeId(1), 0.1);
    /// let comps = g.connected_components();
    /// assert_eq!(comps[0], comps[1]);
    /// assert_ne!(comps[0], comps[2]);
    /// ```
    pub fn connected_components(&self) -> Vec<usize> {
        let n = self.adjacency.len();
        let mut component = vec![usize::MAX; n];
        let mut next = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            component[start] = next;
            stack.push(start);
            while let Some(u) = stack.pop() {
                for &(peer, _) in &self.adjacency[u] {
                    if component[peer.index()] == usize::MAX {
                        component[peer.index()] = next;
                        stack.push(peer.index());
                    }
                }
            }
            next += 1;
        }
        component
    }

    /// Whether the subgraph induced by `nodes` is connected — the
    /// structural property the paper claims for each NCL's caching
    /// nodes ("the set of caching nodes at each NCL forms a connected
    /// subgraph of the network contact graph", §V-A).
    ///
    /// An empty or single-node set counts as connected.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    pub fn is_connected_subset(&self, nodes: &[NodeId]) -> bool {
        if nodes.len() <= 1 {
            return true;
        }
        let member: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![nodes[0]];
        seen.insert(nodes[0]);
        while let Some(u) = stack.pop() {
            for &(peer, _) in self.neighbors(u) {
                if member.contains(&peer) && seen.insert(peer) {
                    stack.push(peer);
                }
            }
        }
        seen.len() == member.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::RateTable;

    #[test]
    fn empty_graph() {
        let g = ContactGraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(g.rate(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn set_rate_is_symmetric_and_replaces() {
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(1), 0.25);
        assert_eq!(g.rate(NodeId(0), NodeId(1)), Some(0.25));
        assert_eq!(g.rate(NodeId(1), NodeId(0)), Some(0.25));
        g.set_rate(NodeId(1), NodeId(0), 0.5);
        assert_eq!(g.rate(NodeId(0), NodeId(1)), Some(0.5));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn neighbors_reflect_edges() {
        let mut g = ContactGraph::new(4);
        g.set_rate(NodeId(0), NodeId(1), 0.1);
        g.set_rate(NodeId(0), NodeId(2), 0.2);
        let mut peers: Vec<u32> = g.neighbors(NodeId(0)).iter().map(|(p, _)| p.0).collect();
        peers.sort_unstable();
        assert_eq!(peers, vec![1, 2]);
        assert_eq!(g.degree(NodeId(3)), 0);
    }

    #[test]
    fn refresh_matches_from_rate_table_and_drops_stale_edges() {
        let mut t = RateTable::new(4, Time::ZERO);
        t.record(NodeId(0), NodeId(1), Time(10));
        let mut g = ContactGraph::new(4);
        // A stale edge from a previous refresh must disappear.
        g.set_rate(NodeId(2), NodeId(3), 0.9);
        g.refresh_from_rate_table(&t, Time(100));
        let fresh = ContactGraph::from_rate_table(&t, Time(100));
        assert_eq!(g.node_count(), fresh.node_count());
        assert_eq!(g.edge_count(), fresh.edge_count());
        assert_eq!(
            g.rate(NodeId(0), NodeId(1)),
            fresh.rate(NodeId(0), NodeId(1))
        );
        assert_eq!(g.rate(NodeId(2), NodeId(3)), None);
    }

    #[test]
    fn from_rate_table_carries_rates() {
        let mut t = RateTable::new(3, Time::ZERO);
        t.record(NodeId(0), NodeId(2), Time(10));
        t.record(NodeId(0), NodeId(2), Time(20));
        let g = ContactGraph::from_rate_table(&t, Time(100));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.rate(NodeId(0), NodeId(2)), Some(0.02));
    }

    #[test]
    fn nodes_iterates_all() {
        let g = ContactGraph::new(3);
        let ids: Vec<_> = g.nodes().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn components_identify_islands() {
        let mut g = ContactGraph::new(6);
        g.set_rate(NodeId(0), NodeId(1), 0.1);
        g.set_rate(NodeId(1), NodeId(2), 0.1);
        g.set_rate(NodeId(3), NodeId(4), 0.1);
        let comps = g.connected_components();
        assert_eq!(comps[0], comps[1]);
        assert_eq!(comps[1], comps[2]);
        assert_eq!(comps[3], comps[4]);
        assert_ne!(comps[0], comps[3]);
        assert_ne!(comps[5], comps[0]);
        assert_ne!(comps[5], comps[3]);
    }

    #[test]
    fn connected_subset_checks_induced_graph() {
        let mut g = ContactGraph::new(5);
        // path 0-1-2-3
        g.set_rate(NodeId(0), NodeId(1), 0.1);
        g.set_rate(NodeId(1), NodeId(2), 0.1);
        g.set_rate(NodeId(2), NodeId(3), 0.1);
        assert!(g.is_connected_subset(&[NodeId(0), NodeId(1), NodeId(2)]));
        // 0 and 2 are connected in G but not in the induced subgraph
        // (the connecting node 1 is excluded).
        assert!(!g.is_connected_subset(&[NodeId(0), NodeId(2)]));
        assert!(g.is_connected_subset(&[NodeId(4)]));
        assert!(g.is_connected_subset(&[]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_rate() {
        let mut g = ContactGraph::new(2);
        g.set_rate(NodeId(0), NodeId(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = ContactGraph::new(2);
        g.set_rate(NodeId(0), NodeId(7), 0.1);
    }
}
