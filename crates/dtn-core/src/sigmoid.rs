//! Probabilistic query-response function (Eq. 4 of the paper).
//!
//! When a caching node cannot estimate its delivery probability to the
//! requester (it only keeps paths to the central nodes), it decides
//! whether to return cached data using a sigmoid of the *remaining* query
//! time `t = T_q − t₀`:
//!
//! ```text
//! p_R(t) = k₁ / (1 + e^{−k₂·t})
//! k₁ = 2·p_min,   k₂ = (1/T_q)·ln( p_max / (2·p_min − p_max) )
//! ```
//!
//! with user parameters `p_max ∈ (0, 1]` and `p_min ∈ (p_max/2, p_max)`,
//! so that `p_R(0) = p_min` and `p_R(T_q) = p_max`: the more time remains,
//! the more likely the (possibly redundant) copy is sent back.

use crate::error::CoreError;
use crate::time::Duration;

/// The sigmoid response-probability function, pre-validated.
///
/// # Example
///
/// ```
/// use dtn_core::sigmoid::ResponseFunction;
/// use dtn_core::time::Duration;
///
/// // The paper's Fig. 7 parameters.
/// let f = ResponseFunction::new(0.45, 0.8, Duration::hours(10))?;
/// assert!((f.probability(Duration::ZERO) - 0.45).abs() < 1e-9);
/// assert!((f.probability(Duration::hours(10)) - 0.8).abs() < 1e-9);
/// # Ok::<(), dtn_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseFunction {
    k1: f64,
    k2: f64,
    p_min: f64,
    p_max: f64,
    query_constraint: Duration,
}

impl ResponseFunction {
    /// Builds the response function from the minimum/maximum response
    /// probabilities and the query time constraint `T_q`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless
    /// `0 < p_max ≤ 1`, `p_max/2 < p_min < p_max`, and `T_q > 0`.
    pub fn new(p_min: f64, p_max: f64, query_constraint: Duration) -> Result<Self, CoreError> {
        if !(p_max > 0.0 && p_max <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "p_max",
                reason: format!("must lie in (0, 1], got {p_max}"),
            });
        }
        if !(p_min > p_max / 2.0 && p_min < p_max) {
            return Err(CoreError::InvalidParameter {
                name: "p_min",
                reason: format!(
                    "must lie in (p_max/2, p_max) = ({}, {p_max}), got {p_min}",
                    p_max / 2.0
                ),
            });
        }
        if query_constraint == Duration::ZERO {
            return Err(CoreError::InvalidParameter {
                name: "query_constraint",
                reason: "must be positive".into(),
            });
        }
        let k1 = 2.0 * p_min;
        let k2 = (p_max / (2.0 * p_min - p_max)).ln() / query_constraint.as_secs_f64();
        Ok(ResponseFunction {
            k1,
            k2,
            p_min,
            p_max,
            query_constraint,
        })
    }

    /// The response probability for `remaining` time until the query
    /// expires. Clamped to `[p_min, p_max]` outside the `[0, T_q]` domain.
    pub fn probability(&self, remaining: Duration) -> f64 {
        let t = remaining
            .as_secs_f64()
            .min(self.query_constraint.as_secs_f64());
        (self.k1 / (1.0 + (-self.k2 * t).exp())).clamp(self.p_min, self.p_max)
    }

    /// The configured minimum response probability `p_R(0)`.
    pub fn p_min(&self) -> f64 {
        self.p_min
    }

    /// The configured maximum response probability `p_R(T_q)`.
    pub fn p_max(&self) -> f64 {
        self.p_max
    }

    /// The query time constraint `T_q`.
    pub fn query_constraint(&self) -> Duration {
        self.query_constraint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_fig7() -> ResponseFunction {
        ResponseFunction::new(0.45, 0.8, Duration::hours(10)).expect("valid paper parameters")
    }

    #[test]
    fn endpoints_match_parameters() {
        let f = paper_fig7();
        assert!((f.probability(Duration::ZERO) - 0.45).abs() < 1e-9);
        assert!((f.probability(Duration::hours(10)) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn monotone_increasing_in_remaining_time() {
        let f = paper_fig7();
        let mut prev = 0.0;
        for h in 0..=10 {
            let p = f.probability(Duration::hours(h));
            assert!(p >= prev, "h={h}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn clamped_beyond_constraint() {
        let f = paper_fig7();
        assert_eq!(f.probability(Duration::hours(20)), f.p_max());
    }

    #[test]
    fn accessors_roundtrip() {
        let f = paper_fig7();
        assert_eq!(f.p_min(), 0.45);
        assert_eq!(f.p_max(), 0.8);
        assert_eq!(f.query_constraint(), Duration::hours(10));
    }

    #[test]
    fn rejects_p_min_below_half_p_max() {
        let err = ResponseFunction::new(0.3, 0.8, Duration::hours(1)).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidParameter { name: "p_min", .. }
        ));
    }

    #[test]
    fn rejects_p_min_at_or_above_p_max() {
        assert!(ResponseFunction::new(0.8, 0.8, Duration::hours(1)).is_err());
        assert!(ResponseFunction::new(0.9, 0.8, Duration::hours(1)).is_err());
    }

    #[test]
    fn rejects_bad_p_max() {
        assert!(ResponseFunction::new(0.45, 0.0, Duration::hours(1)).is_err());
        assert!(ResponseFunction::new(0.45, 1.2, Duration::hours(1)).is_err());
    }

    #[test]
    fn rejects_zero_constraint() {
        assert!(ResponseFunction::new(0.45, 0.8, Duration::ZERO).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn probability_always_within_bounds(
                p_max in 0.1f64..1.0,
                frac in 0.51f64..0.99,
                tq_secs in 60u64..1_000_000,
                t_secs in 0u64..2_000_000,
            ) {
                let p_min = p_max * frac;
                let f = ResponseFunction::new(p_min, p_max, Duration(tq_secs))
                    .expect("parameters constructed to be valid");
                let p = f.probability(Duration(t_secs));
                prop_assert!(p >= p_min - 1e-12 && p <= p_max + 1e-12, "p={p}");
            }
        }
    }
}
