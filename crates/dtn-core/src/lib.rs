//! Core algorithms for cooperative caching in Disruption Tolerant Networks.
//!
//! This crate implements the mathematical machinery of *"Supporting
//! Cooperative Caching in Disruption Tolerant Networks"* (Gao, Cao, Iyengar,
//! Srivatsa — ICDCS 2011) as pure, simulator-independent algorithms:
//!
//! - [`hypoexp`] — delivery probability along a multi-hop opportunistic
//!   path (hypoexponential distribution, Eq. 1–2 of the paper),
//! - [`graph`] / [`path`] — the network contact graph and
//!   shortest-opportunistic-path search,
//! - [`ncl`] — the Network Central Location selection metric (Eq. 3),
//! - [`sigmoid`] — the probabilistic query-response function (Eq. 4),
//! - [`popularity`] — per-item data popularity estimation (Eq. 6),
//! - [`knapsack`] — the cache-replacement knapsack solver and the paper's
//!   probabilistic data selection (Algorithm 1),
//! - [`rate`] — online pairwise contact-rate estimation,
//! - [`par`] — deterministic order-preserving parallel map used by the
//!   NCL metric sweep,
//! - [`hist`] — alloc-free fixed-bucket histograms for hot-loop
//!   instrumentation (delays, hop counts, buffer occupancy),
//! - [`sys`] — process-level introspection (the shared VmHWM peak-RSS
//!   sampler behind bench reports and the engine heartbeat).
//!
//! # Example
//!
//! Select the two most central nodes of a small contact graph:
//!
//! ```
//! use dtn_core::graph::ContactGraph;
//! use dtn_core::ids::NodeId;
//! use dtn_core::ncl::select_central_nodes;
//!
//! let mut g = ContactGraph::new(4);
//! // node 0 contacts everyone often; the others contact only node 0.
//! g.set_rate(NodeId(0), NodeId(1), 1.0 / 3600.0);
//! g.set_rate(NodeId(0), NodeId(2), 1.0 / 3600.0);
//! g.set_rate(NodeId(0), NodeId(3), 1.0 / 7200.0);
//! g.set_rate(NodeId(1), NodeId(2), 1.0 / 86_400.0);
//!
//! let horizon = 6.0 * 3600.0; // T = 6 hours
//! let ncls = select_central_nodes(&g, 2, horizon);
//! assert_eq!(ncls[0].node, NodeId(0));
//! ```

pub mod error;
pub mod graph;
pub mod hist;
pub mod hypoexp;
pub mod ids;
pub mod knapsack;
pub mod ncl;
pub mod par;
pub mod path;
pub mod popularity;
pub mod rate;
pub mod sigmoid;
pub mod sys;
pub mod time;

pub use error::CoreError;
pub use graph::ContactGraph;
pub use ids::{DataId, NodeId, QueryId};
pub use time::{Duration, Time};
