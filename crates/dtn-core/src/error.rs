//! Error types shared by the core algorithms.

use std::error::Error;
use std::fmt;

/// Error returned by fallible constructors and solvers in this crate.
///
/// # Example
///
/// ```
/// use dtn_core::sigmoid::ResponseFunction;
/// use dtn_core::time::Duration;
///
/// // p_min must lie in (p_max/2, p_max); 0.2 < 0.8/2 is rejected.
/// let err = ResponseFunction::new(0.2, 0.8, Duration::hours(10)).unwrap_err();
/// assert!(err.to_string().contains("p_min"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A numeric parameter was outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A node id referenced a node outside the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the graph.
        len: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::NodeOutOfRange { node, len } => {
                write!(f, "node n{node} out of range for graph of {len} nodes")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvalidParameter {
            name: "p_min",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("p_min"));
        let e = CoreError::NodeOutOfRange { node: 9, len: 4 };
        assert!(e.to_string().contains("n9"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
