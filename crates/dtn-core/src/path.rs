//! Opportunistic paths and shortest-opportunistic-path search.
//!
//! Definition 1 of the paper: an *r-hop opportunistic path* between nodes
//! `A` and `B` is a simple path on the contact graph whose weight is the
//! probability `p_AB(T)` that data traverses it within time `T`
//! (hypoexponential CDF, [`crate::hypoexp`]). The "distance" between two
//! nodes is the weight of their *best* path — the one maximising `p_AB(T)`.
//!
//! [`shortest_paths`] computes the best path from one source to every
//! other node with a label-setting (Dijkstra-style) search. Label-setting
//! is exact here because extending a path by one hop adds an independent
//! positive delay, so the weight of any extension is **never larger** than
//! the weight of its prefix — the same monotonicity Dijkstra's algorithm
//! requires.
//!
//! The search is allocation-free on its hot path: heap labels carry only
//! `(weight, node)`, the route tree lives in predecessor arrays, and each
//! relaxation evaluates the candidate weight with
//! [`hypoexp::HorizonAccumulator::extended_cdf`] — `O(r)` multiply-adds
//! plus a single fresh exponential, without materialising the extended
//! path (the per-stage exponentials are cached and extended incrementally
//! along the route tree). One [`hypoexp::HorizonAccumulator`] is built
//! per *settled* node (by extending its parent's), so the whole search
//! performs `O(N)` allocations instead of `O(E)` path clones. Concrete
//! [`OpportunisticPath`] values are reconstructed lazily by
//! [`PathTable::path_to`]. [`shortest_paths_naive`] retains the original
//! owned-path formulation as a differential-testing and benchmarking
//! reference.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{ContactGraph, Topology};
use crate::hypoexp;
use crate::ids::NodeId;

/// A concrete opportunistic path: the visited nodes and per-hop contact
/// rates.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::path::OpportunisticPath;
///
/// let p = OpportunisticPath::new(vec![NodeId(0), NodeId(3)], vec![0.001]);
/// assert_eq!(p.hops(), 1);
/// assert!(p.weight(10_000.0) > 0.9999);
/// assert_eq!(p.expected_delay(), 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OpportunisticPath {
    nodes: Vec<NodeId>,
    rates: Vec<f64>,
}

impl OpportunisticPath {
    /// Creates a path from its node sequence and per-hop rates.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes.len() == rates.len() + 1` and `nodes` is
    /// non-empty.
    pub fn new(nodes: Vec<NodeId>, rates: Vec<f64>) -> Self {
        assert!(!nodes.is_empty(), "a path visits at least one node");
        assert_eq!(
            nodes.len(),
            rates.len() + 1,
            "an r-hop path visits r+1 nodes"
        );
        OpportunisticPath { nodes, rates }
    }

    /// The trivial zero-hop path from a node to itself (weight 1).
    pub fn trivial(node: NodeId) -> Self {
        OpportunisticPath {
            nodes: vec![node],
            rates: Vec::new(),
        }
    }

    /// The node sequence `A, N₁, …, B`.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Per-hop contact rates `λ₁, …, λ_r`.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// First node of the path.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the path.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Number of hops `r`.
    pub fn hops(&self) -> usize {
        self.rates.len()
    }

    /// The path weight `p_AB(T)` — probability of traversal within
    /// `horizon` seconds (Eq. 2 of the paper).
    pub fn weight(&self, horizon: f64) -> f64 {
        hypoexp::cdf(&self.rates, horizon)
    }

    /// Expected end-to-end delay `Σ 1/λ_k` in seconds.
    pub fn expected_delay(&self) -> f64 {
        hypoexp::mean(&self.rates)
    }
}

/// Best opportunistic paths from one source to every node, at a fixed
/// time horizon.
///
/// Produced by [`shortest_paths`]. The table is what each mobile node
/// maintains in the paper ("a node maintains its shortest opportunistic
/// path to each NCL", §IV-A; optionally to all nodes, §V-C).
///
/// The table stores the route *tree* compactly — a predecessor and an
/// incoming rate per node plus the settled weight — so [`weight_to`] is
/// `O(1)` and concrete paths are only materialised on demand by
/// [`path_to`].
///
/// [`weight_to`]: PathTable::weight_to
/// [`path_to`]: PathTable::path_to
#[derive(Debug, Clone)]
pub struct PathTable {
    source: NodeId,
    horizon: f64,
    /// Predecessor on the best path; `None` for the source and for
    /// unreachable nodes.
    prev: Vec<Option<NodeId>>,
    /// Rate of the edge `prev[v] → v`; meaningless unless `prev[v]` is set.
    rate_into: Vec<f64>,
    /// Settled best weight; 0 for unreachable nodes, 1 for the source.
    weight: Vec<f64>,
    reached: Vec<bool>,
}

impl PathTable {
    /// The source node the table was computed for.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The time horizon `T` used for path weights.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The weight of the best path to `dest`: 1 for the source itself,
    /// 0 if `dest` is unreachable. `O(1)` — the weight was fixed when the
    /// search settled `dest`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range.
    pub fn weight_to(&self, dest: NodeId) -> f64 {
        self.weight[dest.index()]
    }

    /// The best path to `dest`, if one exists, reconstructed from the
    /// predecessor tree in `O(hops)`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range.
    pub fn path_to(&self, dest: NodeId) -> Option<OpportunisticPath> {
        if !self.reached[dest.index()] {
            return None;
        }
        let mut nodes = vec![dest];
        let mut rates = Vec::new();
        let mut cur = dest;
        while let Some(parent) = self.prev[cur.index()] {
            rates.push(self.rate_into[cur.index()]);
            nodes.push(parent);
            cur = parent;
        }
        nodes.reverse();
        rates.reverse();
        Some(OpportunisticPath::new(nodes, rates))
    }

    /// Iterates over `(destination, weight)` for every reachable node,
    /// including the source itself with weight 1.
    pub fn iter_weights(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.reached
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            .map(|(i, _)| (NodeId(i as u32), self.weight[i]))
    }
}

/// Heap entry: the tentative best weight of a node. Routes live in the
/// predecessor arrays, so labels are two words and never allocate.
#[derive(Debug)]
struct Label {
    weight: f64,
    node: NodeId,
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.node == other.node
    }
}
impl Eq for Label {}
impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Label {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on weight; tie-break on node id for determinism.
        self.weight
            .total_cmp(&other.weight)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Computes the best (maximum-weight) opportunistic path from `source` to
/// every other node within time horizon `horizon` seconds.
///
/// Runs a label-setting search in `O(E log E)` heap operations. Each
/// relaxation evaluates the extended path's hypoexponential weight
/// incrementally ([`hypoexp::HorizonAccumulator::extended_cdf`] — `O(r)`
/// multiply-adds plus one exponential, allocation-free) instead of
/// rebuilding the coefficient set from scratch (`O(r²)` plus two clones
/// per relaxation in the naive formulation, retained as
/// [`shortest_paths_naive`]). Both evaluate the exact same arithmetic,
/// so the computed weights are bit-identical.
///
/// # Panics
///
/// Panics if `source` is out of range or `horizon` is not finite and
/// positive.
///
/// # Example
///
/// ```
/// use dtn_core::graph::ContactGraph;
/// use dtn_core::ids::NodeId;
/// use dtn_core::path::shortest_paths;
///
/// let mut g = ContactGraph::new(3);
/// g.set_rate(NodeId(0), NodeId(1), 0.01);
/// g.set_rate(NodeId(1), NodeId(2), 0.01);
/// let table = shortest_paths(&g, NodeId(0), 1000.0);
/// assert_eq!(table.weight_to(NodeId(0)), 1.0);
/// assert!(table.weight_to(NodeId(1)) > table.weight_to(NodeId(2)));
/// assert_eq!(table.path_to(NodeId(2)).unwrap().hops(), 2);
/// ```
pub fn shortest_paths<G: Topology>(graph: &G, source: NodeId, horizon: f64) -> PathTable {
    assert!(
        horizon.is_finite() && horizon > 0.0,
        "horizon must be finite and positive, got {horizon}"
    );
    let n = graph.node_count();
    assert!(
        source.index() < n,
        "source n{source} out of range for graph of {n} nodes"
    );

    let mut settled = vec![false; n];
    let mut reached = vec![false; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut rate_into = vec![0.0f64; n];
    let mut best = vec![f64::NEG_INFINITY; n];
    let mut weight = vec![0.0f64; n];
    // CDF accumulator of each settled node's best path (with its cached
    // per-stage exponentials), built by extending the parent's by the
    // tree edge — one allocation and one exp per settled node, none per
    // relaxation.
    let mut accs: Vec<Option<hypoexp::HorizonAccumulator>> = vec![None; n];

    let mut heap = BinaryHeap::new();
    heap.push(Label {
        weight: 1.0,
        node: source,
    });
    best[source.index()] = 1.0;
    reached[source.index()] = true;

    while let Some(Label { weight: w, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        weight[node.index()] = w;
        let acc = match prev[node.index()] {
            None => hypoexp::HorizonAccumulator::new(horizon),
            Some(parent) => {
                let mut acc = accs[parent.index()]
                    .as_ref()
                    .expect("parent settles before child")
                    .clone();
                acc.push(rate_into[node.index()]);
                acc
            }
        };
        for &(peer, rate) in graph.neighbors(node) {
            if settled[peer.index()] {
                continue;
            }
            let cand = acc.extended_cdf(rate);
            if cand > best[peer.index()] {
                best[peer.index()] = cand;
                prev[peer.index()] = Some(node);
                rate_into[peer.index()] = rate;
                reached[peer.index()] = true;
                heap.push(Label {
                    weight: cand,
                    node: peer,
                });
            }
        }
        accs[node.index()] = Some(acc);
    }

    PathTable {
        source,
        horizon,
        prev,
        rate_into,
        weight,
        reached,
    }
}

/// Best-path weights from one source, stored sparsely — only the nodes
/// the bounded search actually settled, sorted by id.
///
/// Produced by [`bounded_shortest_paths`]. Unlike [`PathTable`], whose
/// arrays are `O(N)` per source, a `SparseReach` is `O(touched)` — the
/// representation city-scale oracles cache per source without `N²`
/// blow-up.
#[derive(Debug, Clone)]
pub struct SparseReach {
    source: NodeId,
    horizon: f64,
    /// `(destination, weight)` sorted by ascending destination id; the
    /// source itself appears with weight 1.
    entries: Vec<(NodeId, f64)>,
}

impl SparseReach {
    /// The source node the reach was computed for.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The time horizon `T` used for path weights.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The weight of the best bounded path to `dest`; 0 if the search
    /// never settled `dest`. `O(log touched)` binary search.
    pub fn weight_to(&self, dest: NodeId) -> f64 {
        match self.entries.binary_search_by_key(&dest, |&(d, _)| d) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// All `(destination, weight)` entries, sorted by destination id.
    pub fn entries(&self) -> &[(NodeId, f64)] {
        &self.entries
    }
}

/// Reusable workspace for [`bounded_shortest_paths`].
///
/// All per-node arrays are epoch-stamped: a search only initializes the
/// slots it actually touches, and the next search invalidates them by
/// bumping the epoch instead of clearing `O(N)` memory. Keep one scratch
/// per thread and pass it to every call; repeated searches on a large
/// graph then cost `O(touched)` time and zero allocations (beyond heap
/// growth on the first calls).
#[derive(Debug, Default)]
pub struct ReachScratch {
    epoch: u64,
    stamp: Vec<u64>,
    settled: Vec<bool>,
    best: Vec<f64>,
    weight: Vec<f64>,
    hops: Vec<u32>,
    /// Predecessor in the route tree; `u32::MAX` = none (source).
    prev: Vec<u32>,
    rate_into: Vec<f64>,
    accs: Vec<Option<hypoexp::HorizonAccumulator>>,
    touched: Vec<u32>,
    heap: BinaryHeap<Label>,
}

impl ReachScratch {
    /// Creates an empty scratch; arrays grow to the graph size on first
    /// use.
    pub fn new() -> Self {
        ReachScratch::default()
    }

    /// Starts a fresh search epoch over `n` nodes.
    fn prepare(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.settled.resize(n, false);
            self.best.resize(n, f64::NEG_INFINITY);
            self.weight.resize(n, 0.0);
            self.hops.resize(n, 0);
            self.prev.resize(n, u32::MAX);
            self.rate_into.resize(n, 0.0);
            self.accs.resize(n, None);
        }
        // Drop the previous search's accumulators so resident memory
        // stays proportional to one touched set, not the whole graph.
        for &i in &self.touched {
            self.accs[i as usize] = None;
        }
        self.touched.clear();
        self.heap.clear();
        self.epoch += 1;
    }

    /// First-touch initialization of node `i` in the current epoch.
    fn touch(&mut self, i: usize) {
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.settled[i] = false;
            self.best[i] = f64::NEG_INFINITY;
            self.weight[i] = 0.0;
            self.hops[i] = 0;
            self.prev[i] = u32::MAX;
            self.rate_into[i] = 0.0;
            self.touched.push(i as u32);
        }
    }
}

/// [`shortest_paths`] with a hop bound and sparse output: the search
/// settles nodes exactly like the unbounded algorithm but stops relaxing
/// from nodes whose settled best path already has `max_hops` hops.
///
/// With `max_hops` at least the graph diameter the result is identical
/// to [`shortest_paths`] (same arithmetic, same tie-breaks). With a
/// smaller bound, weights are exact over the ≤`max_hops`-hop path space
/// and *lower bounds* on the unbounded weights — the standard truncation
/// the paper's multi-hop analysis itself applies ("opportunistic paths
/// with at most r hops", §III-B). Work and memory are `O(touched)`
/// rather than `O(N)`, which is what makes per-source caching viable at
/// city scale.
///
/// # Panics
///
/// Panics if `source` is out of range, `horizon` is not finite and
/// positive, or `max_hops == 0`.
pub fn bounded_shortest_paths<G: Topology>(
    graph: &G,
    source: NodeId,
    horizon: f64,
    max_hops: usize,
    scratch: &mut ReachScratch,
) -> SparseReach {
    assert!(
        horizon.is_finite() && horizon > 0.0,
        "horizon must be finite and positive, got {horizon}"
    );
    let n = graph.node_count();
    assert!(
        source.index() < n,
        "source n{source} out of range for graph of {n} nodes"
    );
    assert!(max_hops > 0, "a zero-hop search reaches nothing");

    scratch.prepare(n);
    scratch.touch(source.index());
    scratch.best[source.index()] = 1.0;
    scratch.heap.push(Label {
        weight: 1.0,
        node: source,
    });

    while let Some(Label { weight: w, node }) = scratch.heap.pop() {
        let ni = node.index();
        if scratch.settled[ni] {
            continue;
        }
        scratch.settled[ni] = true;
        scratch.weight[ni] = w;
        let (hops, acc) = if scratch.prev[ni] == u32::MAX {
            (0u32, hypoexp::HorizonAccumulator::new(horizon))
        } else {
            let parent = scratch.prev[ni] as usize;
            let mut acc = scratch.accs[parent]
                .as_ref()
                .expect("parent settles before child")
                .clone();
            acc.push(scratch.rate_into[ni]);
            (scratch.hops[parent] + 1, acc)
        };
        scratch.hops[ni] = hops;
        if (hops as usize) < max_hops {
            for &(peer, rate) in graph.neighbors(node) {
                let pi = peer.index();
                scratch.touch(pi);
                if scratch.settled[pi] {
                    continue;
                }
                let cand = acc.extended_cdf(rate);
                if cand > scratch.best[pi] {
                    scratch.best[pi] = cand;
                    scratch.prev[pi] = ni as u32;
                    scratch.rate_into[pi] = rate;
                    scratch.heap.push(Label {
                        weight: cand,
                        node: peer,
                    });
                }
            }
        }
        scratch.accs[ni] = Some(acc);
    }

    let mut entries: Vec<(NodeId, f64)> = scratch
        .touched
        .iter()
        .filter(|&&i| scratch.settled[i as usize])
        .map(|&i| (NodeId(i), scratch.weight[i as usize]))
        .collect();
    entries.sort_unstable_by_key(|&(id, _)| id);
    SparseReach {
        source,
        horizon,
        entries,
    }
}

/// The original owned-path formulation of the search, kept as a reference
/// implementation: every relaxation clones the node and rate vectors of
/// the tentative path and re-evaluates the full hypoexponential CDF from
/// scratch. Returns the best path per destination (`None` when
/// unreachable; the source maps to its trivial path).
///
/// This exists for differential testing (`tests/path_equivalence.rs`
/// asserts [`shortest_paths`] matches it exactly) and as the baseline leg
/// of the `path_engine` benchmark. Simulation and selection code should
/// always use [`shortest_paths`].
///
/// # Panics
///
/// Panics on the same invalid inputs as [`shortest_paths`].
pub fn shortest_paths_naive(
    graph: &ContactGraph,
    source: NodeId,
    horizon: f64,
) -> Vec<Option<OpportunisticPath>> {
    assert!(
        horizon.is_finite() && horizon > 0.0,
        "horizon must be finite and positive, got {horizon}"
    );
    let n = graph.node_count();
    assert!(
        source.index() < n,
        "source n{source} out of range for graph of {n} nodes"
    );

    struct OwnedLabel {
        weight: f64,
        node: NodeId,
        path: OpportunisticPath,
    }
    impl PartialEq for OwnedLabel {
        fn eq(&self, other: &Self) -> bool {
            self.weight == other.weight && self.node == other.node
        }
    }
    impl Eq for OwnedLabel {}
    impl PartialOrd for OwnedLabel {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for OwnedLabel {
        fn cmp(&self, other: &Self) -> Ordering {
            self.weight
                .total_cmp(&other.weight)
                .then_with(|| other.node.cmp(&self.node))
        }
    }

    let mut settled = vec![false; n];
    let mut paths: Vec<Option<OpportunisticPath>> = vec![None; n];
    let mut best = vec![f64::NEG_INFINITY; n];
    let mut heap = BinaryHeap::new();
    heap.push(OwnedLabel {
        weight: 1.0,
        node: source,
        path: OpportunisticPath::trivial(source),
    });
    best[source.index()] = 1.0;

    while let Some(OwnedLabel { weight, node, path }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        for &(peer, rate) in graph.neighbors(node) {
            if settled[peer.index()] {
                continue;
            }
            let mut rates = path.rates().to_vec();
            rates.push(rate);
            let w = hypoexp::cdf(&rates, horizon);
            if w > best[peer.index()] {
                best[peer.index()] = w;
                let mut nodes = path.nodes().to_vec();
                nodes.push(peer);
                heap.push(OwnedLabel {
                    weight: w,
                    node: peer,
                    path: OpportunisticPath::new(nodes, rates),
                });
            }
        }
        paths[node.index()] = Some(path);
        let _ = weight;
    }

    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(rates: &[f64]) -> ContactGraph {
        let mut g = ContactGraph::new(rates.len() + 1);
        for (i, &r) in rates.iter().enumerate() {
            g.set_rate(NodeId(i as u32), NodeId(i as u32 + 1), r);
        }
        g
    }

    #[test]
    fn source_has_weight_one() {
        let g = line_graph(&[0.1]);
        let t = shortest_paths(&g, NodeId(0), 100.0);
        assert_eq!(t.weight_to(NodeId(0)), 1.0);
        assert_eq!(t.path_to(NodeId(0)).unwrap().hops(), 0);
    }

    #[test]
    fn unreachable_node_has_weight_zero() {
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(1), 0.1);
        let t = shortest_paths(&g, NodeId(0), 100.0);
        assert_eq!(t.weight_to(NodeId(2)), 0.0);
        assert!(t.path_to(NodeId(2)).is_none());
    }

    #[test]
    fn picks_relay_over_weak_direct_edge() {
        // 0—2 direct but very slow; 0—1—2 via two fast hops wins.
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(2), 1e-7);
        g.set_rate(NodeId(0), NodeId(1), 1e-2);
        g.set_rate(NodeId(1), NodeId(2), 1e-2);
        let t = shortest_paths(&g, NodeId(0), 3600.0);
        let p = t.path_to(NodeId(2)).unwrap();
        assert_eq!(p.hops(), 2, "expected relay path, got {:?}", p.nodes());
        assert_eq!(p.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn picks_fast_direct_edge_over_detour() {
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(2), 1e-2);
        g.set_rate(NodeId(0), NodeId(1), 1e-2);
        g.set_rate(NodeId(1), NodeId(2), 1e-2);
        let t = shortest_paths(&g, NodeId(0), 3600.0);
        assert_eq!(t.path_to(NodeId(2)).unwrap().hops(), 1);
    }

    #[test]
    fn path_endpoints_are_consistent() {
        let g = line_graph(&[0.1, 0.2, 0.3]);
        let t = shortest_paths(&g, NodeId(0), 50.0);
        for dest in g.nodes() {
            let p = t.path_to(dest).unwrap();
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.destination(), dest);
        }
    }

    #[test]
    fn stored_weight_matches_reconstructed_path() {
        // The O(1) cached weight must be exactly the weight of the path
        // that path_to reconstructs.
        let mut g = ContactGraph::new(6);
        let edges = [
            (0, 1, 2e-3),
            (1, 2, 5e-3),
            (0, 2, 1e-3),
            (2, 3, 4e-3),
            (1, 4, 6e-4),
            (4, 5, 9e-3),
            (3, 5, 2e-4),
        ];
        for &(a, b, r) in &edges {
            g.set_rate(NodeId(a), NodeId(b), r);
        }
        let horizon = 1800.0;
        let t = shortest_paths(&g, NodeId(0), horizon);
        for dest in g.nodes() {
            if let Some(p) = t.path_to(dest) {
                assert_eq!(
                    t.weight_to(dest),
                    p.weight(horizon),
                    "cached vs reconstructed weight differ for n{dest}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_reference_exactly() {
        let mut g = ContactGraph::new(7);
        let edges = [
            (0, 1, 2e-3),
            (1, 2, 5e-3),
            (0, 2, 1e-3),
            (2, 3, 4e-3),
            (1, 3, 1e-4),
            (3, 4, 8e-3),
            (0, 4, 5e-5),
            (4, 5, 3e-3),
            (2, 6, 7e-4),
        ];
        for &(a, b, r) in &edges {
            g.set_rate(NodeId(a), NodeId(b), r);
        }
        let horizon = 2500.0;
        let table = shortest_paths(&g, NodeId(0), horizon);
        let naive = shortest_paths_naive(&g, NodeId(0), horizon);
        for dest in g.nodes() {
            let opt = table.path_to(dest);
            let refp = naive[dest.index()].as_ref();
            match (opt, refp) {
                (None, None) => {}
                (Some(p), Some(r)) => {
                    assert_eq!(p.nodes(), r.nodes(), "route mismatch to n{dest}");
                    assert_eq!(
                        table.weight_to(dest),
                        r.weight(horizon),
                        "weight mismatch to n{dest}"
                    );
                }
                (a, b) => panic!("reachability mismatch to n{dest}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn weights_match_brute_force_on_small_graphs() {
        // Exhaustively enumerate all simple paths and compare.
        let mut g = ContactGraph::new(5);
        let edges = [
            (0, 1, 2e-3),
            (1, 2, 5e-3),
            (0, 2, 1e-3),
            (2, 3, 4e-3),
            (1, 3, 1e-4),
            (3, 4, 8e-3),
            (0, 4, 5e-5),
        ];
        for &(a, b, r) in &edges {
            g.set_rate(NodeId(a), NodeId(b), r);
        }
        let horizon = 2000.0;
        let table = shortest_paths(&g, NodeId(0), horizon);

        for dest in 1..5u32 {
            let mut visited = vec![false; 5];
            visited[0] = true;
            let mut best = 0.0;
            tests_dfs(
                &g,
                NodeId(0),
                NodeId(dest),
                &mut visited,
                &mut Vec::new(),
                horizon,
                &mut best,
            );
            let got = table.weight_to(NodeId(dest));
            assert!(
                (got - best).abs() < 1e-9,
                "dest {dest}: label-setting {got} vs brute force {best}"
            );
        }
    }

    #[test]
    fn bounded_search_matches_unbounded_with_slack_hops() {
        let mut g = ContactGraph::new(7);
        let edges = [
            (0, 1, 2e-3),
            (1, 2, 5e-3),
            (0, 2, 1e-3),
            (2, 3, 4e-3),
            (1, 3, 1e-4),
            (3, 4, 8e-3),
            (0, 4, 5e-5),
            (4, 5, 3e-3),
        ];
        for &(a, b, r) in &edges {
            g.set_rate(NodeId(a), NodeId(b), r);
        }
        let horizon = 2500.0;
        let mut scratch = ReachScratch::new();
        for src in g.nodes() {
            let full = shortest_paths(&g, src, horizon);
            let reach = bounded_shortest_paths(&g, src, horizon, 64, &mut scratch);
            let reachable: Vec<_> = full.iter_weights().collect();
            assert_eq!(reach.entries(), &reachable[..], "source {src:?}");
            for dest in g.nodes() {
                assert_eq!(
                    reach.weight_to(dest),
                    full.weight_to(dest),
                    "source {src:?} dest {dest:?}"
                );
            }
        }
        // Node 6 is isolated: never settled from 0, weight 0.
        let reach = bounded_shortest_paths(&g, NodeId(0), horizon, 64, &mut scratch);
        assert_eq!(reach.weight_to(NodeId(6)), 0.0);
        assert_eq!(reach.source(), NodeId(0));
        assert_eq!(reach.horizon(), horizon);
    }

    #[test]
    fn bounded_search_runs_on_csr_storage() {
        use crate::graph::CsrGraph;
        let mut g = ContactGraph::new(5);
        let edges = [(0, 1, 2e-3), (1, 2, 5e-3), (2, 3, 4e-3), (0, 3, 1e-4)];
        for &(a, b, r) in &edges {
            g.set_rate(NodeId(a), NodeId(b), r);
        }
        let csr = CsrGraph::from_edges(5, edges.iter().map(|&(a, b, r)| (NodeId(a), NodeId(b), r)));
        let mut scratch = ReachScratch::new();
        let dense = bounded_shortest_paths(&g, NodeId(0), 1800.0, 64, &mut scratch);
        let sparse = bounded_shortest_paths(&csr, NodeId(0), 1800.0, 64, &mut scratch);
        // Same weights; routes may differ only where neighbor-iteration
        // order breaks exact ties, which these rates do not produce.
        assert_eq!(dense.entries(), sparse.entries());
    }

    #[test]
    fn hop_bound_truncates_reach() {
        let g = line_graph(&[0.1, 0.1, 0.1]);
        let mut scratch = ReachScratch::new();
        let one = bounded_shortest_paths(&g, NodeId(0), 100.0, 1, &mut scratch);
        assert!(one.weight_to(NodeId(1)) > 0.0);
        assert_eq!(one.weight_to(NodeId(2)), 0.0);
        let two = bounded_shortest_paths(&g, NodeId(0), 100.0, 2, &mut scratch);
        assert!(two.weight_to(NodeId(2)) > 0.0);
        assert_eq!(two.weight_to(NodeId(3)), 0.0);
        // Weights inside the bound match the unbounded search exactly.
        let full = shortest_paths(&g, NodeId(0), 100.0);
        assert_eq!(two.weight_to(NodeId(1)), full.weight_to(NodeId(1)));
        assert_eq!(two.weight_to(NodeId(2)), full.weight_to(NodeId(2)));
    }

    #[test]
    fn scratch_reuse_is_stateless_across_searches() {
        let g = line_graph(&[0.2, 0.05, 0.01]);
        let mut scratch = ReachScratch::new();
        let first = bounded_shortest_paths(&g, NodeId(0), 200.0, 8, &mut scratch);
        // A different source in between must not contaminate the repeat.
        let _ = bounded_shortest_paths(&g, NodeId(3), 200.0, 8, &mut scratch);
        let again = bounded_shortest_paths(&g, NodeId(0), 200.0, 8, &mut scratch);
        assert_eq!(first.entries(), again.entries());
    }

    #[test]
    #[should_panic(expected = "zero-hop")]
    fn bounded_rejects_zero_hops() {
        let g = line_graph(&[0.1]);
        let _ = bounded_shortest_paths(&g, NodeId(0), 100.0, 0, &mut ReachScratch::new());
    }

    #[test]
    fn iter_weights_covers_reachable_set() {
        let g = line_graph(&[0.1, 0.1]);
        let t = shortest_paths(&g, NodeId(1), 100.0);
        let all: Vec<_> = t.iter_weights().collect();
        assert_eq!(all.len(), 3);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn rejects_bad_horizon() {
        let g = line_graph(&[0.1]);
        let _ = shortest_paths(&g, NodeId(0), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// On random graphs the label-setting result must match brute
            /// force enumeration of simple paths.
            #[test]
            fn matches_brute_force(
                n in 2usize..6,
                edges in prop::collection::vec((0u32..6, 0u32..6, 1e-5f64..1e-1), 1..12),
                horizon in 100.0f64..1e5,
            ) {
                let mut g = ContactGraph::new(n);
                for (a, b, r) in edges {
                    let (a, b) = (a % n as u32, b % n as u32);
                    if a != b {
                        g.set_rate(NodeId(a), NodeId(b), r);
                    }
                }
                let table = shortest_paths(&g, NodeId(0), horizon);
                for dest in 1..n as u32 {
                    let mut visited = vec![false; n];
                    visited[0] = true;
                    let mut best = 0.0;
                    super::tests_dfs(&g, NodeId(0), NodeId(dest), &mut visited,
                        &mut Vec::new(), horizon, &mut best);
                    let got = table.weight_to(NodeId(dest));
                    prop_assert!((got - best).abs() < 1e-6,
                        "dest {}: {} vs {}", dest, got, best);
                }
            }
        }
    }

    /// Shared DFS helper for the brute-force comparisons above.
    fn tests_dfs(
        g: &ContactGraph,
        cur: NodeId,
        target: NodeId,
        visited: &mut Vec<bool>,
        rates: &mut Vec<f64>,
        horizon: f64,
        best: &mut f64,
    ) {
        if cur == target {
            let w = crate::hypoexp::cdf(rates, horizon);
            if w > *best {
                *best = w;
            }
            return;
        }
        for &(peer, rate) in g.neighbors(cur) {
            if !visited[peer.index()] {
                visited[peer.index()] = true;
                rates.push(rate);
                tests_dfs(g, peer, target, visited, rates, horizon, best);
                rates.pop();
                visited[peer.index()] = false;
            }
        }
    }
}
