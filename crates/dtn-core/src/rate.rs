//! Online estimation of pairwise contact rates.
//!
//! The paper models the contacts of each node pair as a Poisson process
//! whose rate `λ_ij` "is calculated at real-time from the cumulative
//! contacts between nodes i and j in a time-average manner" (§III-B).
//! [`RateEstimator`] implements exactly that estimator for one pair;
//! [`RateTable`] holds one estimator per unordered pair of a fixed node
//! population.

use crate::ids::NodeId;
use crate::time::Time;

/// Cumulative time-averaged Poisson rate estimator for one node pair.
///
/// # Example
///
/// ```
/// use dtn_core::rate::RateEstimator;
/// use dtn_core::time::Time;
///
/// let mut est = RateEstimator::new(Time::ZERO);
/// est.record_contact(Time(100));
/// est.record_contact(Time(200));
/// // two contacts over 1000 seconds of observation
/// assert_eq!(est.rate(Time(1000)), Some(2e-3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RateEstimator {
    observed_since: Time,
    contacts: u64,
    last_contact: Option<Time>,
    /// Exponentially weighted moving average of inter-contact gaps.
    ewma_gap_secs: Option<f64>,
    /// Number of positive inter-contact gaps folded into the moments.
    gap_count: u64,
    /// Running sum of positive inter-contact gaps, in seconds.
    gap_sum_secs: f64,
    /// Running sum of squared positive inter-contact gaps.
    gap_sq_sum_secs: f64,
}

/// Smoothing factor of the EWMA inter-contact estimator: the weight of
/// the newest gap.
pub const EWMA_ALPHA: f64 = 0.25;

impl RateEstimator {
    /// Creates an estimator observing from `since` with no contacts yet.
    pub fn new(since: Time) -> Self {
        RateEstimator {
            observed_since: since,
            contacts: 0,
            last_contact: None,
            ewma_gap_secs: None,
            gap_count: 0,
            gap_sum_secs: 0.0,
            gap_sq_sum_secs: 0.0,
        }
    }

    /// Records one contact between the pair.
    pub fn record_contact(&mut self, at: Time) {
        if let Some(prev) = self.last_contact {
            let gap = at.saturating_since(prev).as_secs_f64();
            if gap > 0.0 {
                self.ewma_gap_secs = Some(match self.ewma_gap_secs {
                    Some(ewma) => EWMA_ALPHA * gap + (1.0 - EWMA_ALPHA) * ewma,
                    None => gap,
                });
                self.gap_count += 1;
                self.gap_sum_secs += gap;
                self.gap_sq_sum_secs += gap * gap;
            }
        }
        self.last_contact = Some(self.last_contact.map_or(at, |t| t.max(at)));
        self.contacts += 1;
    }

    /// Number of contacts recorded so far.
    pub fn contact_count(&self) -> u64 {
        self.contacts
    }

    /// The cumulative time-averaged rate `contacts / elapsed`, or `None`
    /// if no contact has been observed yet (the pair's edge does not exist
    /// in the contact graph) or no time has elapsed.
    pub fn rate(&self, now: Time) -> Option<f64> {
        let elapsed = now.saturating_since(self.observed_since).as_secs_f64();
        if self.contacts == 0 || elapsed <= 0.0 {
            return None;
        }
        Some(self.contacts as f64 / elapsed)
    }

    /// A recency-weighted rate `1 / ewma(gap)` that tracks changes in
    /// the contact pattern faster than the paper's cumulative average.
    /// `None` until two gapped contacts have been observed.
    pub fn recent_rate(&self) -> Option<f64> {
        self.ewma_gap_secs.map(|g| 1.0 / g)
    }

    /// When this pair last met, if ever.
    pub fn last_contact(&self) -> Option<Time> {
        self.last_contact
    }

    /// A regime-tracking rate estimate: the EWMA inter-contact gap,
    /// damped by how long the pair has been silent —
    /// `1 / max(ewma_gap, now − last_contact)`.
    ///
    /// Unlike [`RateEstimator::rate`], which averages over the whole
    /// observation window and never forgets, and
    /// [`RateEstimator::recent_rate`], which freezes at the last
    /// observed gap when a pair stops meeting, this estimate decays as
    /// a pair goes quiet: a once-busy pair that has been silent for
    /// `Δt ≫ ewma_gap` is rated `1/Δt`. Used by online NCL re-election,
    /// where yesterday's hubs must lose their rank once they stop
    /// meeting anyone. `None` until the first contact.
    pub fn current_rate(&self, now: Time) -> Option<f64> {
        let last = self.last_contact?;
        let silence = now.saturating_since(last).as_secs_f64();
        let gap = match self.ewma_gap_secs {
            Some(g) => g,
            // Zero or one gap observed: fall back to the cumulative
            // mean inter-contact time.
            None => {
                let elapsed = now.saturating_since(self.observed_since).as_secs_f64();
                if elapsed <= 0.0 {
                    return None;
                }
                elapsed / self.contacts as f64
            }
        };
        Some(1.0 / gap.max(silence))
    }

    /// Squared coefficient of variation of the observed inter-contact
    /// gaps, `Var(gap) / E[gap]²` — a dispersion diagnostic for the
    /// paper's Poisson contact model (§III-B).
    ///
    /// An exponential (Poisson) pair scores ≈ 1; heavy-tailed
    /// inter-contact laws (Pareto, bounded power law) score well above
    /// 1; near-periodic schedules score near 0. NCL selection and the
    /// delay predictions that flow from `λ_ij` assume exponential gaps,
    /// so a `gap_cv2` far from 1 warns that those predictions are
    /// optimistic. `None` until three gapped contacts (two gaps) have
    /// been observed.
    pub fn gap_cv2(&self) -> Option<f64> {
        if self.gap_count < 2 {
            return None;
        }
        let n = self.gap_count as f64;
        let mean = self.gap_sum_secs / n;
        if mean <= 0.0 {
            return None;
        }
        let var = (self.gap_sq_sum_secs / n - mean * mean).max(0.0);
        Some(var / (mean * mean))
    }
}

/// Symmetric table of [`RateEstimator`]s for all `N·(N−1)/2` node pairs.
///
/// Contacts are symmetric (§III-B), so the table stores each unordered
/// pair once and `record` / `rate` accept the endpoints in either order.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::rate::RateTable;
/// use dtn_core::time::Time;
///
/// let mut table = RateTable::new(3, Time::ZERO);
/// table.record(NodeId(0), NodeId(2), Time(10));
/// assert_eq!(
///     table.rate(NodeId(2), NodeId(0), Time(100)),
///     table.rate(NodeId(0), NodeId(2), Time(100)),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct RateTable {
    nodes: usize,
    cells: Cells,
    /// Bumped on every [`RateTable::record`]; lets consumers detect how
    /// much the table has changed without comparing cells.
    generation: u64,
}

/// Largest population stored as a dense packed triangle. Above this the
/// table switches to sparse adjacency storage: real contact traces are
/// sparse (each node meets a bounded peer set), so `O(N²)` cells —
/// 240 GB at 100 000 nodes — would be almost entirely never-met pairs.
pub const DENSE_NODE_LIMIT: usize = 2048;

/// Storage behind a [`RateTable`]. A pair absent from the sparse map is
/// semantically a fresh [`RateEstimator`] (no contacts yet), so the two
/// layouts are observationally identical.
#[derive(Debug, Clone)]
enum Cells {
    /// Packed upper triangle, one cell per unordered pair.
    Dense(Vec<RateEstimator>),
    /// Per-low-endpoint adjacency rows sorted by high endpoint, with
    /// estimators in a shared arena. Memory is `O(pairs that met)`.
    Sparse {
        /// `adj[lo]` = `(hi, arena index)` sorted by `hi`.
        adj: Vec<Vec<(u32, u32)>>,
        arena: Vec<RateEstimator>,
        /// Observation start for estimators created on first contact.
        since: Time,
    },
}

impl RateTable {
    /// Creates a table for `nodes` nodes, all pairs observed from `since`.
    ///
    /// Populations up to [`DENSE_NODE_LIMIT`] use a dense packed
    /// triangle; larger ones use sparse adjacency storage with identical
    /// observable behavior.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize, since: Time) -> Self {
        Self::new_with_limit(nodes, since, DENSE_NODE_LIMIT)
    }

    /// [`RateTable::new`] with an explicit dense/sparse cutover, so tests
    /// can exercise the sparse layout at differential-testable sizes.
    fn new_with_limit(nodes: usize, since: Time, dense_limit: usize) -> Self {
        assert!(nodes > 0, "rate table needs at least one node");
        let cells = if nodes <= dense_limit {
            let pairs = nodes * (nodes.saturating_sub(1)) / 2;
            Cells::Dense(vec![RateEstimator::new(since); pairs])
        } else {
            Cells::Sparse {
                adj: vec![Vec::new(); nodes],
                arena: Vec::new(),
                since,
            }
        };
        RateTable {
            nodes,
            cells,
            generation: 0,
        }
    }

    /// Number of nodes covered by the table.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Records a contact between `a` and `b` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either node is out of range.
    #[inline]
    pub fn record(&mut self, a: NodeId, b: NodeId, at: Time) {
        let (lo, hi) = self.pair(a, b);
        match &mut self.cells {
            Cells::Dense(cells) => {
                cells[Self::dense_index(self.nodes, lo, hi)].record_contact(at);
            }
            Cells::Sparse { adj, arena, since } => {
                let row = &mut adj[lo];
                match row.binary_search_by_key(&(hi as u32), |&(h, _)| h) {
                    Ok(i) => arena[row[i].1 as usize].record_contact(at),
                    Err(i) => {
                        let mut est = RateEstimator::new(*since);
                        est.record_contact(at);
                        row.insert(i, (hi as u32, arena.len() as u32));
                        arena.push(est);
                    }
                }
            }
        }
        self.generation += 1;
    }

    /// Monotone version counter: the number of contacts recorded into
    /// this table since construction. Consumers caching anything derived
    /// from the table (e.g. the path oracle's contact-graph snapshot) can
    /// compare generations to decide when their copy has drifted too far,
    /// independent of simulated wall-clock time.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The estimated contact rate of the pair, if they have ever met.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either node is out of range.
    #[inline]
    pub fn rate(&self, a: NodeId, b: NodeId, now: Time) -> Option<f64> {
        self.estimator(a, b).and_then(|e| e.rate(now))
    }

    /// Cumulative number of contacts recorded for the pair.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either node is out of range.
    #[inline]
    pub fn contact_count(&self, a: NodeId, b: NodeId) -> u64 {
        self.estimator(a, b).map_or(0, RateEstimator::contact_count)
    }

    /// The pair's recency-weighted rate (see
    /// [`RateEstimator::recent_rate`]).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either node is out of range.
    #[inline]
    pub fn recent_rate(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.estimator(a, b).and_then(RateEstimator::recent_rate)
    }

    /// The pair's gap-dispersion diagnostic (see
    /// [`RateEstimator::gap_cv2`]).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either node is out of range.
    #[inline]
    pub fn gap_cv2(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.estimator(a, b).and_then(RateEstimator::gap_cv2)
    }

    /// Contact-weighted mean of [`RateEstimator::gap_cv2`] over all
    /// pairs with a defined dispersion, or `None` if no pair has one.
    ///
    /// Weighting by gap count makes the aggregate answer "how
    /// Poisson-like is the traffic the estimator actually sees", rather
    /// than letting barely-observed pairs (whose two-gap CV² is mostly
    /// noise) dominate a flat average.
    pub fn mean_gap_cv2(&self) -> Option<f64> {
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for (_, _, e) in self.iter_estimators() {
            if let Some(cv2) = e.gap_cv2() {
                let w = e.gap_count as f64;
                weighted += cv2 * w;
                weight += w;
            }
        }
        if weight > 0.0 {
            Some(weighted / weight)
        } else {
            None
        }
    }

    /// Total contacts recorded across all pairs.
    pub fn total_contacts(&self) -> u64 {
        let cells: &[RateEstimator] = match &self.cells {
            Cells::Dense(cells) => cells,
            Cells::Sparse { arena, .. } => arena,
        };
        cells.iter().map(RateEstimator::contact_count).sum()
    }

    /// Iterates over all pairs that have met at least once, yielding
    /// `(a, b, rate)` with `a < b`.
    pub fn iter_rates(&self, now: Time) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.iter_estimators()
            .filter_map(move |(a, b, e)| e.rate(now).map(|r| (a, b, r)))
    }

    /// Like [`RateTable::iter_rates`], but yielding the regime-tracking
    /// [`RateEstimator::current_rate`] of each pair.
    pub fn iter_current_rates(
        &self,
        now: Time,
    ) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.iter_estimators()
            .filter_map(move |(a, b, e)| e.current_rate(now).map(|r| (a, b, r)))
    }

    /// All touchable cells in `(lo asc, hi asc)` order. Dense yields
    /// every pair (including never-met ones); sparse yields only pairs
    /// that have met — the difference is unobservable through the
    /// `filter_map`-based public iterators because a never-met
    /// estimator's rates are all `None`.
    fn iter_estimators(&self) -> Box<dyn Iterator<Item = (NodeId, NodeId, &RateEstimator)> + '_> {
        match &self.cells {
            Cells::Dense(cells) => {
                let n = self.nodes as u32;
                Box::new((0..n).flat_map(move |a| {
                    (a + 1..n).map(move |b| {
                        let idx = Self::dense_index(self.nodes, a as usize, b as usize);
                        (NodeId(a), NodeId(b), &cells[idx])
                    })
                }))
            }
            Cells::Sparse { adj, arena, .. } => {
                Box::new(adj.iter().enumerate().flat_map(move |(lo, row)| {
                    row.iter().map(move |&(hi, idx)| {
                        (NodeId(lo as u32), NodeId(hi), &arena[idx as usize])
                    })
                }))
            }
        }
    }

    /// The pair's estimator; `None` when a sparse table has never seen
    /// the pair (semantically a fresh estimator).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either node is out of range.
    #[inline]
    fn estimator(&self, a: NodeId, b: NodeId) -> Option<&RateEstimator> {
        let (lo, hi) = self.pair(a, b);
        match &self.cells {
            Cells::Dense(cells) => Some(&cells[Self::dense_index(self.nodes, lo, hi)]),
            Cells::Sparse { adj, arena, .. } => {
                let row = &adj[lo];
                row.binary_search_by_key(&(hi as u32), |&(h, _)| h)
                    .ok()
                    .map(|i| &arena[row[i].1 as usize])
            }
        }
    }

    /// Validates a pair and returns its `(lo, hi)` indices.
    #[inline]
    fn pair(&self, a: NodeId, b: NodeId) -> (usize, usize) {
        assert_ne!(a, b, "a node does not contact itself");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (lo, hi) = (lo.index(), hi.index());
        assert!(
            hi < self.nodes,
            "node n{hi} out of range for table of {} nodes",
            self.nodes
        );
        (lo, hi)
    }

    /// Row-major upper-triangle index of a validated `(lo, hi)` pair.
    #[inline]
    fn dense_index(nodes: usize, lo: usize, hi: usize) -> usize {
        // Offset of row `lo` in the packed upper triangle.
        lo * (2 * nodes - lo - 1) / 2 + (hi - lo - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_rate_is_count_over_elapsed() {
        let mut e = RateEstimator::new(Time(100));
        assert_eq!(e.rate(Time(200)), None);
        e.record_contact(Time(150));
        e.record_contact(Time(180));
        e.record_contact(Time(190));
        assert_eq!(e.rate(Time(400)), Some(0.01));
        assert_eq!(e.contact_count(), 3);
    }

    #[test]
    fn estimator_no_elapsed_time_is_none() {
        let mut e = RateEstimator::new(Time(100));
        e.record_contact(Time(100));
        assert_eq!(e.rate(Time(100)), None);
        assert_eq!(e.rate(Time(50)), None);
    }

    #[test]
    fn recent_rate_tracks_gap_changes() {
        let mut e = RateEstimator::new(Time::ZERO);
        // Contacts every 100 s.
        for i in 1..=10u64 {
            e.record_contact(Time(i * 100));
        }
        let steady = e.recent_rate().expect("enough gaps");
        assert!((steady - 0.01).abs() < 1e-6, "steady {steady}");
        // Pattern speeds up to every 10 s: the EWMA follows, the
        // cumulative average lags.
        for i in 1..=30u64 {
            e.record_contact(Time(1000 + i * 10));
        }
        let fast = e.recent_rate().expect("enough gaps");
        let cumulative = e.rate(Time(1300)).expect("has contacts");
        assert!(fast > 0.05, "ewma should approach 0.1, got {fast}");
        assert!(
            fast > cumulative,
            "ewma {fast} must outrun cumulative {cumulative}"
        );
        assert_eq!(e.last_contact(), Some(Time(1300)));
    }

    #[test]
    fn simultaneous_contacts_count_but_skip_the_ewma() {
        // Two contacts at the same timestamp: both count toward the
        // cumulative rate, but a zero gap must not poison the EWMA
        // (1/0 would be an infinite recent rate).
        let mut e = RateEstimator::new(Time::ZERO);
        e.record_contact(Time(100));
        e.record_contact(Time(100));
        assert_eq!(e.contact_count(), 2);
        assert_eq!(e.rate(Time(200)), Some(0.01));
        assert_eq!(e.recent_rate(), None, "zero gap recorded into EWMA");
        assert_eq!(e.last_contact(), Some(Time(100)));
        // The next gapped contact seeds the EWMA from its real gap.
        e.record_contact(Time(150));
        assert_eq!(e.recent_rate(), Some(1.0 / 50.0));
    }

    #[test]
    fn rate_at_observed_since_is_none() {
        // A zero observation window has no defined rate, even with
        // contacts on the books (contact exactly at `observed_since`).
        let mut e = RateEstimator::new(Time(500));
        e.record_contact(Time(500));
        assert_eq!(e.contact_count(), 1);
        assert_eq!(e.rate(Time(500)), None);
        assert_eq!(e.rate(Time(499)), None, "before the window starts");
        assert_eq!(e.rate(Time(501)), Some(1.0));
    }

    #[test]
    fn long_silence_divergence_cumulative_vs_ewma_vs_current() {
        // A pair that met every 100 s for a while, then went silent for
        // a long stretch. The three estimators must diverge exactly as
        // documented: the cumulative average decays slowly with the
        // window, the EWMA freezes at the last observed gap, and the
        // regime-tracking current rate decays as 1/silence.
        let mut e = RateEstimator::new(Time::ZERO);
        for i in 1..=10u64 {
            e.record_contact(Time(i * 100));
        }
        let now = Time(101_000); // silent for 100 000 s
        let cumulative = e.rate(now).expect("has contacts");
        let ewma = e.recent_rate().expect("has gaps");
        let current = e.current_rate(now).expect("has contacts");
        assert!((cumulative - 10.0 / 101_000.0).abs() < 1e-12);
        assert!((ewma - 0.01).abs() < 1e-9, "EWMA froze at the 100 s gap");
        assert!((current - 1.0 / 100_000.0).abs() < 1e-12);
        assert!(
            current < cumulative && cumulative < ewma,
            "expected current {current} < cumulative {cumulative} < ewma {ewma}"
        );
    }

    #[test]
    fn current_rate_matches_ewma_while_the_pair_stays_active() {
        let mut e = RateEstimator::new(Time::ZERO);
        for i in 1..=5u64 {
            e.record_contact(Time(i * 100));
        }
        // Queried right at the last contact: no silence yet, so the
        // current rate is exactly the EWMA rate.
        assert_eq!(e.current_rate(Time(500)), e.recent_rate());
        // One gapless contact only: falls back to the cumulative mean
        // inter-contact time.
        let mut single = RateEstimator::new(Time(40));
        assert_eq!(single.current_rate(Time(140)), None, "no contact yet");
        single.record_contact(Time(40));
        assert_eq!(single.current_rate(Time(40)), None, "zero window");
        assert_eq!(single.current_rate(Time(140)), Some(1.0 / 100.0));
    }

    #[test]
    fn recent_rate_needs_two_gapped_contacts() {
        let mut e = RateEstimator::new(Time::ZERO);
        assert_eq!(e.recent_rate(), None);
        e.record_contact(Time(50));
        assert_eq!(e.recent_rate(), None);
        e.record_contact(Time(150));
        assert!(e.recent_rate().is_some());
    }

    #[test]
    fn gap_cv2_separates_periodic_exponential_and_heavy_tails() {
        // Periodic: identical gaps, zero variance.
        let mut periodic = RateEstimator::new(Time::ZERO);
        for i in 1..=20u64 {
            periodic.record_contact(Time(i * 100));
        }
        let cv2 = periodic.gap_cv2().expect("19 gaps");
        assert!(cv2 < 1e-9, "periodic gaps must score ~0, got {cv2}");

        // Exponential: inverse-CDF samples on a uniform grid have the
        // exponential's unit squared coefficient of variation.
        let mut expo = RateEstimator::new(Time::ZERO);
        let mut t = 0.0f64;
        let n = 4000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            t += -u.ln() * 100.0;
            expo.record_contact(Time(t as u64));
        }
        let cv2 = expo.gap_cv2().expect("many gaps");
        assert!((cv2 - 1.0).abs() < 0.1, "exponential CV² ≈ 1, got {cv2}");

        // Heavy tail: Pareto(α = 1.5) gaps via the inverse CDF. Infinite
        // theoretical variance; any long sample run scores far above 1.
        let mut heavy = RateEstimator::new(Time::ZERO);
        let mut t = 0.0f64;
        for i in 0..n {
            let u = 1.0 - (i as f64 + 0.5) / n as f64;
            t += 30.0 * u.powf(-1.0 / 1.5);
            heavy.record_contact(Time(t as u64));
        }
        let cv2 = heavy.gap_cv2().expect("many gaps");
        assert!(cv2 > 2.0, "Pareto gaps must score well above 1, got {cv2}");
    }

    #[test]
    fn gap_cv2_needs_two_gaps() {
        let mut e = RateEstimator::new(Time::ZERO);
        e.record_contact(Time(100));
        assert_eq!(e.gap_cv2(), None, "no gap yet");
        e.record_contact(Time(200));
        assert_eq!(e.gap_cv2(), None, "one gap has no variance estimate");
        // A zero gap does not count toward the moments.
        e.record_contact(Time(200));
        assert_eq!(e.gap_cv2(), None);
        e.record_contact(Time(300));
        assert!(e.gap_cv2().is_some(), "two positive gaps suffice");
    }

    #[test]
    fn table_mean_gap_cv2_weights_by_gap_count() {
        let mut t = RateTable::new(3, Time::ZERO);
        // Pair (0,1): 10 periodic gaps, CV² = 0.
        for i in 1..=11u64 {
            t.record(NodeId(0), NodeId(1), Time(i * 50));
        }
        // Pair (1,2): 2 gaps of 100 and 300 s.
        // mean 200, var 10_000 ⇒ CV² = 0.25.
        t.record(NodeId(1), NodeId(2), Time(100));
        t.record(NodeId(1), NodeId(2), Time(200));
        t.record(NodeId(1), NodeId(2), Time(500));
        // Pair (0,2): never met — contributes nothing.
        let mean = t.mean_gap_cv2().expect("two pairs have dispersion");
        let expect = (0.0 * 10.0 + 0.25 * 2.0) / 12.0;
        assert!((mean - expect).abs() < 1e-9, "got {mean}, want {expect}");
        assert_eq!(t.gap_cv2(NodeId(0), NodeId(2)), None);
        assert!(t.gap_cv2(NodeId(2), NodeId(1)).expect("met") > 0.2);

        let empty = RateTable::new(2, Time::ZERO);
        assert_eq!(empty.mean_gap_cv2(), None);
    }

    #[test]
    fn table_is_symmetric() {
        let mut t = RateTable::new(4, Time::ZERO);
        t.record(NodeId(1), NodeId(3), Time(10));
        t.record(NodeId(3), NodeId(1), Time(20));
        assert_eq!(t.contact_count(NodeId(1), NodeId(3)), 2);
        assert_eq!(
            t.rate(NodeId(1), NodeId(3), Time(100)),
            t.rate(NodeId(3), NodeId(1), Time(100))
        );
        assert_eq!(t.rate(NodeId(1), NodeId(3), Time(100)), Some(0.02));
    }

    #[test]
    fn table_indexing_covers_all_pairs_uniquely() {
        let n = 7;
        let mut t = RateTable::new(n, Time::ZERO);
        // Touch every pair exactly once; totals must add up.
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                t.record(NodeId(a), NodeId(b), Time(1));
            }
        }
        assert_eq!(t.total_contacts() as usize, n * (n - 1) / 2);
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                assert_eq!(t.contact_count(NodeId(a), NodeId(b)), 1, "pair {a},{b}");
            }
        }
    }

    #[test]
    fn generation_counts_recorded_contacts() {
        let mut t = RateTable::new(3, Time::ZERO);
        assert_eq!(t.generation(), 0);
        t.record(NodeId(0), NodeId(1), Time(10));
        t.record(NodeId(1), NodeId(2), Time(20));
        assert_eq!(t.generation(), 2);
        // Recording the same pair again still advances the generation.
        t.record(NodeId(0), NodeId(1), Time(30));
        assert_eq!(t.generation(), 3);
    }

    #[test]
    fn iter_rates_skips_never_met_pairs() {
        let mut t = RateTable::new(3, Time::ZERO);
        t.record(NodeId(0), NodeId(1), Time(10));
        let rates: Vec<_> = t.iter_rates(Time(100)).collect();
        assert_eq!(rates.len(), 1);
        assert_eq!(rates[0].0, NodeId(0));
        assert_eq!(rates[0].1, NodeId(1));
    }

    #[test]
    fn sparse_storage_matches_dense_exactly() {
        // Force the sparse layout at a size where a dense twin is cheap
        // and drive both through an identical contact schedule.
        let n = 12;
        let mut dense = RateTable::new_with_limit(n, Time(5), n);
        let mut sparse = RateTable::new_with_limit(n, Time(5), 1);
        assert!(matches!(dense.cells, Cells::Dense(_)));
        assert!(matches!(sparse.cells, Cells::Sparse { .. }));
        // Deterministic pseudo-random schedule touching some pairs many
        // times, most never.
        let mut x = 0x9e37_79b9_u64;
        for step in 0..400u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) % n as u64;
            let b = (x >> 13) % n as u64;
            if a == b {
                continue;
            }
            let at = Time(10 + step * 37 % 5000);
            dense.record(NodeId(a as u32), NodeId(b as u32), at);
            sparse.record(NodeId(a as u32), NodeId(b as u32), at);
        }
        assert_eq!(dense.generation(), sparse.generation());
        assert_eq!(dense.total_contacts(), sparse.total_contacts());
        let now = Time(6000);
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                let (a, b) = (NodeId(a), NodeId(b));
                assert_eq!(dense.rate(a, b, now), sparse.rate(a, b, now));
                assert_eq!(dense.contact_count(a, b), sparse.contact_count(a, b));
                assert_eq!(dense.recent_rate(a, b), sparse.recent_rate(a, b));
                assert_eq!(dense.gap_cv2(a, b), sparse.gap_cv2(a, b));
            }
        }
        assert_eq!(dense.mean_gap_cv2(), sparse.mean_gap_cv2());
        let dr: Vec<_> = dense.iter_rates(now).collect();
        let sr: Vec<_> = sparse.iter_rates(now).collect();
        assert_eq!(dr, sr, "iter_rates order and content must match");
        let dc: Vec<_> = dense.iter_current_rates(now).collect();
        let sc: Vec<_> = sparse.iter_current_rates(now).collect();
        assert_eq!(dc, sc);
    }

    #[test]
    fn large_population_goes_sparse_and_stays_cheap() {
        let n = DENSE_NODE_LIMIT + 1;
        let mut t = RateTable::new(n, Time::ZERO);
        assert!(matches!(t.cells, Cells::Sparse { .. }));
        t.record(NodeId(0), NodeId(n as u32 - 1), Time(10));
        t.record(NodeId(n as u32 - 1), NodeId(0), Time(20));
        assert_eq!(t.contact_count(NodeId(0), NodeId(n as u32 - 1)), 2);
        assert_eq!(t.rate(NodeId(5), NodeId(6), Time(100)), None);
        assert_eq!(t.contact_count(NodeId(5), NodeId(6)), 0);
        assert_eq!(t.iter_rates(Time(100)).count(), 1);
        assert_eq!(t.total_contacts(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sparse_out_of_range_panics() {
        let t = RateTable::new_with_limit(3, Time::ZERO, 1);
        let _ = t.rate(NodeId(0), NodeId(5), Time(10));
    }

    #[test]
    #[should_panic(expected = "does not contact itself")]
    fn sparse_self_contact_panics() {
        let mut t = RateTable::new_with_limit(3, Time::ZERO, 1);
        t.record(NodeId(1), NodeId(1), Time(10));
    }

    #[test]
    #[should_panic(expected = "does not contact itself")]
    fn self_contact_panics() {
        let mut t = RateTable::new(3, Time::ZERO);
        t.record(NodeId(1), NodeId(1), Time(10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let t = RateTable::new(3, Time::ZERO);
        let _ = t.rate(NodeId(0), NodeId(5), Time(10));
    }
}
