//! Network Central Location (NCL) selection.
//!
//! Eq. (3) of the paper defines the selection metric of node `i` as
//!
//! ```text
//! C_i = 1/(N−1) · Σ_{j≠i} p_ij(T)
//! ```
//!
//! — the average probability that data reaches `i` from a random node
//! within `T`, where `p_ij(T)` is the weight of the best opportunistic
//! path between `i` and `j` ([`crate::path`]). The network administrator
//! picks the top `K` nodes by this metric as central nodes before any
//! data access happens (§IV-A).

use crate::graph::Topology;
use crate::ids::NodeId;
use crate::par::map_slice;
use crate::path::{bounded_shortest_paths, shortest_paths, ReachScratch};

/// A node together with its NCL selection metric `C_i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentralityScore {
    /// The scored node.
    pub node: NodeId,
    /// Its metric value `C_i ∈ [0, 1]`.
    pub metric: f64,
}

/// Computes the NCL selection metric `C_i` for a single node.
///
/// # Panics
///
/// Panics if `node` is out of range, `horizon` is not positive and
/// finite, or the graph has fewer than two nodes.
///
/// # Example
///
/// ```
/// use dtn_core::graph::ContactGraph;
/// use dtn_core::ids::NodeId;
/// use dtn_core::ncl::selection_metric;
///
/// let mut g = ContactGraph::new(3);
/// g.set_rate(NodeId(0), NodeId(1), 0.01);
/// g.set_rate(NodeId(0), NodeId(2), 0.01);
/// // the hub is easier to reach on average than a leaf
/// assert!(selection_metric(&g, NodeId(0), 600.0)
///     > selection_metric(&g, NodeId(1), 600.0));
/// ```
pub fn selection_metric<G: Topology>(graph: &G, node: NodeId, horizon: f64) -> f64 {
    let n = graph.node_count();
    assert!(n >= 2, "the metric needs at least two nodes, got {n}");
    // Contacts are symmetric, so p_ij = p_ji and one single-source search
    // from `node` covers all terms of Eq. (3).
    let table = shortest_paths(graph, node, horizon);
    let sum: f64 = (0..n as u32)
        .map(NodeId)
        .filter(|&j| j != node)
        .map(|j| table.weight_to(j))
        .sum();
    sum / (n - 1) as f64
}

/// Computes `C_i` for every node of the graph.
///
/// Returns one [`CentralityScore`] per node, in node-id order. The
/// per-node single-source searches are independent, so they run on all
/// available hardware threads ([`crate::par`]); the order-preserving
/// parallel map guarantees the result is identical to the serial sweep,
/// so downstream tie-breaking stays deterministic.
///
/// # Panics
///
/// Panics if the graph has fewer than two nodes or `horizon` is invalid.
pub fn all_metrics<G: Topology + Sync>(graph: &G, horizon: f64) -> Vec<CentralityScore> {
    let nodes: Vec<NodeId> = (0..graph.node_count() as u32).map(NodeId).collect();
    map_slice(&nodes, |&node| CentralityScore {
        node,
        metric: selection_metric(graph, node, horizon),
    })
}

/// Selects the top `k` central nodes by metric value, best first.
///
/// Ties are broken by node id so that selection is deterministic. If the
/// graph has fewer than `k` nodes, all of them are returned.
///
/// # Panics
///
/// Panics if `k == 0`, the graph has fewer than two nodes, or `horizon`
/// is invalid.
///
/// # Example
///
/// ```
/// use dtn_core::graph::ContactGraph;
/// use dtn_core::ids::NodeId;
/// use dtn_core::ncl::select_central_nodes;
///
/// let mut g = ContactGraph::new(4);
/// g.set_rate(NodeId(2), NodeId(0), 0.01);
/// g.set_rate(NodeId(2), NodeId(1), 0.01);
/// g.set_rate(NodeId(2), NodeId(3), 0.01);
/// let top = select_central_nodes(&g, 1, 600.0);
/// assert_eq!(top[0].node, NodeId(2));
/// ```
pub fn select_central_nodes<G: Topology + Sync>(
    graph: &G,
    k: usize,
    horizon: f64,
) -> Vec<CentralityScore> {
    assert!(k > 0, "must select at least one central node");
    let mut scores = all_metrics(graph, horizon);
    scores.sort_by(|a, b| {
        b.metric
            .total_cmp(&a.metric)
            .then_with(|| a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

/// Alternative central-node selection strategies, for comparing the
/// paper's probabilistic metric (Eq. 3) against simpler centralities.
///
/// The paper motivates its metric as "the average probability that data
/// can be transmitted from a random node to node i within time T";
/// cheaper proxies (degree, total contact rate) or a random pick make
/// natural baselines for an ablation of that design choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// The paper's Eq. 3: average shortest-opportunistic-path weight.
    PathMetric,
    /// Number of distinct nodes ever met, normalised by `N − 1`.
    DegreeCentrality,
    /// Sum of adjacent contact rates (total meeting frequency).
    ContactFrequency,
    /// A deterministic pseudo-random pick (control baseline).
    Random {
        /// Seed of the deterministic shuffle.
        seed: u64,
    },
    /// The paper's Eq. 3, evaluated per community and merged: the graph
    /// is partitioned by weighted label propagation and the metric sweep
    /// runs inside each community only ([`select_central_nodes_scoped`]).
    /// Near-linear at city scale; identical to
    /// [`SelectionStrategy::PathMetric`] when the graph is one
    /// community.
    CommunityPathMetric {
        /// Hop bound of the per-community searches; `None` = unbounded.
        max_hops: Option<usize>,
    },
}

/// Selects the top `k` central nodes under the given strategy.
///
/// The returned `metric` values are comparable only *within* one
/// strategy: path weights for [`SelectionStrategy::PathMetric`],
/// normalised degree for [`SelectionStrategy::DegreeCentrality`],
/// summed rates for [`SelectionStrategy::ContactFrequency`] and a
/// rank-derived placeholder for [`SelectionStrategy::Random`].
///
/// # Panics
///
/// Panics if `k == 0`, the graph has fewer than two nodes, or
/// `horizon` is invalid for the path-metric strategy.
///
/// # Example
///
/// ```
/// use dtn_core::graph::ContactGraph;
/// use dtn_core::ids::NodeId;
/// use dtn_core::ncl::{select_by_strategy, SelectionStrategy};
///
/// let mut g = ContactGraph::new(4);
/// g.set_rate(NodeId(2), NodeId(0), 0.01);
/// g.set_rate(NodeId(2), NodeId(1), 0.01);
/// g.set_rate(NodeId(2), NodeId(3), 0.01);
/// let top = select_by_strategy(&g, 1, 600.0, SelectionStrategy::DegreeCentrality);
/// assert_eq!(top[0].node, NodeId(2));
/// ```
pub fn select_by_strategy<G: Topology + Sync>(
    graph: &G,
    k: usize,
    horizon: f64,
    strategy: SelectionStrategy,
) -> Vec<CentralityScore> {
    assert!(k > 0, "must select at least one central node");
    let n = graph.node_count();
    assert!(n >= 2, "selection needs at least two nodes, got {n}");
    let nodes: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let mut scores: Vec<CentralityScore> = match strategy {
        SelectionStrategy::PathMetric => return select_central_nodes(graph, k, horizon),
        SelectionStrategy::CommunityPathMetric { max_hops } => {
            let partition = label_propagation_communities(graph, LABEL_PROPAGATION_ROUNDS);
            return select_central_nodes_scoped(graph, &partition, k, horizon, max_hops);
        }
        SelectionStrategy::DegreeCentrality => map_slice(&nodes, |&node| CentralityScore {
            node,
            metric: graph.degree(node) as f64 / (n - 1) as f64,
        }),
        SelectionStrategy::ContactFrequency => map_slice(&nodes, |&node| CentralityScore {
            node,
            metric: graph.neighbors(node).iter().map(|(_, r)| r).sum(),
        }),
        SelectionStrategy::Random { seed } => {
            // Deterministic rank via a splitmix-style hash of (seed, id).
            map_slice(&nodes, |&node| {
                let mut x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(node.0));
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                CentralityScore {
                    node,
                    metric: (x % 1_000_000) as f64 / 1_000_000.0,
                }
            })
        }
    };
    scores.sort_by(|a, b| {
        b.metric
            .total_cmp(&a.metric)
            .then_with(|| a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

/// Rounds of weighted label propagation run by
/// [`SelectionStrategy::CommunityPathMetric`]. Label propagation almost
/// always converges in a handful of sweeps; the cap only guards against
/// oscillation on adversarial graphs.
pub const LABEL_PROPAGATION_ROUNDS: usize = 16;

/// A partition of the node set into communities `0..count`.
///
/// Produced by [`label_propagation_communities`], by
/// [`CommunityPartition::single`] (everything in one community), or by
/// [`CommunityPartition::round_robin`] (the layout
/// `SyntheticTraceBuilder::communities` assigns, node `i` in community
/// `i % m`). Community ids are compact and ordered by first appearance
/// in node-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityPartition {
    /// `assignment[i]` = community of node `i`.
    assignment: Vec<u32>,
    /// Number of communities; every id in `0..count` is inhabited.
    count: usize,
}

impl CommunityPartition {
    /// Builds a partition from raw labels, compacting them to
    /// `0..count` in order of first appearance.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn from_labels(labels: &[u32]) -> Self {
        assert!(!labels.is_empty(), "a partition needs at least one node");
        let max_label = *labels.iter().max().expect("non-empty") as usize;
        let mut compact: Vec<u32> = vec![u32::MAX; max_label + 1];
        let mut assignment = Vec::with_capacity(labels.len());
        let mut count = 0u32;
        for &label in labels {
            let slot = &mut compact[label as usize];
            if *slot == u32::MAX {
                *slot = count;
                count += 1;
            }
            assignment.push(*slot);
        }
        CommunityPartition {
            assignment,
            count: count as usize,
        }
    }

    /// All `nodes` in one community — the partition under which scoped
    /// selection is exactly global selection.
    pub fn single(nodes: usize) -> Self {
        assert!(nodes > 0, "a partition needs at least one node");
        CommunityPartition {
            assignment: vec![0; nodes],
            count: 1,
        }
    }

    /// Node `i` in community `i % communities` — the ground-truth layout
    /// of `SyntheticTraceBuilder::communities`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `communities == 0`.
    pub fn round_robin(nodes: usize, communities: usize) -> Self {
        assert!(nodes > 0, "a partition needs at least one node");
        assert!(communities > 0, "need at least one community");
        let m = communities.min(nodes) as u32;
        CommunityPartition {
            assignment: (0..nodes as u32).map(|i| i % m).collect(),
            count: m as usize,
        }
    }

    /// The community of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn community_of(&self, node: NodeId) -> u32 {
        self.assignment[node.index()]
    }

    /// Number of communities.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Number of nodes partitioned.
    pub fn node_count(&self) -> usize {
        self.assignment.len()
    }
}

/// Detects communities by weighted label propagation on the contact
/// graph.
///
/// Every node starts in its own community; sweeps in node-id order then
/// let each node adopt the label carrying the largest summed incident
/// contact rate among its neighbors (ties to the smallest label, updates
/// visible within the sweep). Terminates after `max_rounds` sweeps or as
/// soon as a sweep changes nothing. `O(rounds · E)` — this is what makes
/// community-scoped NCL selection near-linear where the global sweep is
/// `O(N · Dijkstra)`.
///
/// Deterministic: fixed sweep order and tie-breaks, no randomness.
///
/// # Panics
///
/// Panics if the graph has no nodes or `max_rounds == 0`.
pub fn label_propagation_communities<G: Topology>(
    graph: &G,
    max_rounds: usize,
) -> CommunityPartition {
    let n = graph.node_count();
    assert!(n > 0, "a partition needs at least one node");
    assert!(max_rounds > 0, "need at least one propagation round");
    let mut labels: Vec<u32> = (0..n as u32).collect();
    // Scratch: summed rate per candidate label, reset via touched list.
    let mut weight_of: Vec<f64> = vec![0.0; n];
    let mut touched: Vec<u32> = Vec::new();
    for _ in 0..max_rounds {
        let mut changed = false;
        for i in 0..n {
            let neighbors = graph.neighbors(NodeId(i as u32));
            if neighbors.is_empty() {
                continue;
            }
            for &(peer, rate) in neighbors {
                let label = labels[peer.index()];
                if weight_of[label as usize] == 0.0 {
                    touched.push(label);
                }
                weight_of[label as usize] += rate;
            }
            let mut best_label = labels[i];
            let mut best_weight = 0.0;
            for &label in &touched {
                let w = weight_of[label as usize];
                if w > best_weight || (w == best_weight && label < best_label) {
                    best_weight = w;
                    best_label = label;
                }
            }
            for &label in &touched {
                weight_of[label as usize] = 0.0;
            }
            touched.clear();
            if best_label != labels[i] {
                labels[i] = best_label;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    CommunityPartition::from_labels(&labels)
}

/// One community's induced subgraph in a flat, search-ready layout.
///
/// Local ids are positions in the ascending member list, and each local
/// adjacency list preserves the *original* neighbor order of the parent
/// graph (merely dropping non-members). With a single community this
/// makes the induced graph structurally identical to the parent — same
/// ids, same iteration order, same tie-breaks — which is what lets
/// [`select_central_nodes_scoped`] match [`select_central_nodes`]
/// bit-for-bit there.
struct InducedCommunity {
    /// Ascending global ids of the members; index = local id.
    members: Vec<NodeId>,
    /// CSR offsets into `entries`, length `members.len() + 1`.
    offsets: Vec<u32>,
    /// `(local neighbor id, rate)` in the parent graph's neighbor order.
    entries: Vec<(NodeId, f64)>,
}

impl Topology for InducedCommunity {
    fn node_count(&self) -> usize {
        self.members.len()
    }

    fn neighbors(&self, node: NodeId) -> &[(NodeId, f64)] {
        let lo = self.offsets[node.index()] as usize;
        let hi = self.offsets[node.index() + 1] as usize;
        &self.entries[lo..hi]
    }
}

/// Computes the community-scoped NCL metric for every node, in node-id
/// order.
///
/// Node `i`'s score is `Σ_{j ∈ community(i), j≠i} p_ij(T) / (N−1)`:
/// the §IV metric with path search confined to `i`'s community, still
/// normalized by the global population so scores remain comparable
/// across communities when rankings are merged. With `max_hops` set,
/// each per-community search is additionally hop-bounded
/// ([`crate::path::bounded_shortest_paths`]).
///
/// # Panics
///
/// Panics if the graph has fewer than two nodes, the partition does not
/// cover exactly this graph's nodes, `horizon` is invalid, or
/// `max_hops == Some(0)`.
pub fn scoped_metrics<G: Topology + Sync>(
    graph: &G,
    partition: &CommunityPartition,
    horizon: f64,
    max_hops: Option<usize>,
) -> Vec<CentralityScore> {
    let n = graph.node_count();
    assert!(n >= 2, "the metric needs at least two nodes, got {n}");
    assert_eq!(
        partition.node_count(),
        n,
        "partition must cover exactly the graph's nodes"
    );

    let mut scores: Vec<CentralityScore> = (0..n as u32)
        .map(|i| CentralityScore {
            node: NodeId(i),
            metric: 0.0,
        })
        .collect();
    // Global-to-local id map, reused (and locally cleared) per community.
    let mut local_of: Vec<u32> = vec![u32::MAX; n];
    let norm = (n - 1) as f64;

    for community in 0..partition.count() as u32 {
        let members: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|&i| partition.community_of(i) == community)
            .collect();
        for (local, &member) in members.iter().enumerate() {
            local_of[member.index()] = local as u32;
        }
        let mut offsets: Vec<u32> = Vec::with_capacity(members.len() + 1);
        offsets.push(0);
        let mut entries: Vec<(NodeId, f64)> = Vec::new();
        for &member in &members {
            for &(peer, rate) in graph.neighbors(member) {
                let local = local_of[peer.index()];
                if local != u32::MAX {
                    entries.push((NodeId(local), rate));
                }
            }
            offsets.push(entries.len() as u32);
        }
        let induced = InducedCommunity {
            members,
            offsets,
            entries,
        };

        let locals: Vec<NodeId> = (0..induced.members.len() as u32).map(NodeId).collect();
        let metrics: Vec<f64> = match max_hops {
            None if induced.members.len() >= 2 => map_slice(&locals, |&local| {
                let table = shortest_paths(&induced, local, horizon);
                locals
                    .iter()
                    .filter(|&&j| j != local)
                    .map(|&j| table.weight_to(j))
                    .sum::<f64>()
                    / norm
            }),
            Some(bound) if induced.members.len() >= 2 => {
                let mut scratch = ReachScratch::new();
                locals
                    .iter()
                    .map(|&local| {
                        let reach =
                            bounded_shortest_paths(&induced, local, horizon, bound, &mut scratch);
                        reach
                            .entries()
                            .iter()
                            .filter(|&&(j, _)| j != local)
                            .map(|&(_, w)| w)
                            .sum::<f64>()
                            / norm
                    })
                    .collect()
            }
            // A one-node community reaches nobody: metric 0, and the
            // underlying searches would reject a one-node graph anyway.
            _ => vec![0.0; induced.members.len()],
        };
        for (local, &member) in induced.members.iter().enumerate() {
            scores[member.index()].metric = metrics[local];
            local_of[member.index()] = u32::MAX;
        }
    }
    scores
}

/// Selects the top `k` central nodes from community-scoped metrics,
/// merging the per-community rankings into one list with the same
/// ordering rule as [`select_central_nodes`] (metric descending, node id
/// ascending).
///
/// With `partition` = [`CommunityPartition::single`] and no hop bound,
/// the result is bit-for-bit identical to [`select_central_nodes`]: the
/// induced "community" *is* the graph, so every search, sum, and
/// tie-break runs in the same order on the same floats.
///
/// # Panics
///
/// As [`scoped_metrics`], plus `k == 0`.
pub fn select_central_nodes_scoped<G: Topology + Sync>(
    graph: &G,
    partition: &CommunityPartition,
    k: usize,
    horizon: f64,
    max_hops: Option<usize>,
) -> Vec<CentralityScore> {
    assert!(k > 0, "must select at least one central node");
    let mut scores = scoped_metrics(graph, partition, horizon, max_hops);
    scores.sort_by(|a, b| {
        b.metric
            .total_cmp(&a.metric)
            .then_with(|| a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

/// Re-assigns an elected central set onto the previous NCL slots with
/// minimal churn.
///
/// `ranked` is a fresh election result (best first, e.g. from
/// [`select_by_strategy`]); `previous` is the central node of each NCL
/// slot from the last election. A previous central node that is still
/// elected keeps its slot, so the NCLs it anchors see no churn; slots
/// whose central node dropped out receive the new entrants in rank
/// order. If the election returned fewer nodes than there are slots
/// (e.g. the graph shrank), leftover slots keep their previous central
/// node rather than going dark.
///
/// The returned vector always has `previous.len()` entries, so per-slot
/// scheme state (membership counters, load counters) stays valid across
/// re-elections.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::ncl::{reassign_central_nodes, CentralityScore};
///
/// let previous = [NodeId(4), NodeId(7), NodeId(2)];
/// let ranked = [
///     CentralityScore { node: NodeId(2), metric: 0.9 },
///     CentralityScore { node: NodeId(5), metric: 0.8 },
///     CentralityScore { node: NodeId(4), metric: 0.7 },
/// ];
/// // 4 and 2 keep their slots; 7 dropped out, so its slot gets the
/// // best new entrant, 5.
/// assert_eq!(
///     reassign_central_nodes(&previous, &ranked),
///     vec![NodeId(4), NodeId(5), NodeId(2)]
/// );
/// ```
pub fn reassign_central_nodes(previous: &[NodeId], ranked: &[CentralityScore]) -> Vec<NodeId> {
    let elected: Vec<NodeId> = ranked.iter().take(previous.len()).map(|s| s.node).collect();
    let mut entrants = elected
        .iter()
        .copied()
        .filter(|n| !previous.contains(n))
        .collect::<Vec<_>>()
        .into_iter();
    previous
        .iter()
        .map(|&old| {
            if elected.contains(&old) {
                old
            } else {
                entrants.next().unwrap_or(old)
            }
        })
        .collect()
}

/// Skewness summary of a metric distribution, used to validate that the
/// contact pattern is heterogeneous enough for NCL selection (Fig. 4 of
/// the paper: "the metric values of a few nodes are much higher than
/// that of other nodes").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSkew {
    /// Highest metric value in the network.
    pub max: f64,
    /// Median metric value.
    pub median: f64,
    /// Mean metric value.
    pub mean: f64,
    /// `max / median` — the "up to tenfold" difference the paper reports.
    pub max_over_median: f64,
}

/// Summarises how skewed a set of metric values is.
///
/// # Panics
///
/// Panics if `scores` is empty.
pub fn metric_skew(scores: &[CentralityScore]) -> MetricSkew {
    assert!(!scores.is_empty(), "cannot summarise an empty metric set");
    let mut values: Vec<f64> = scores.iter().map(|s| s.metric).collect();
    values.sort_by(f64::total_cmp);
    let max = *values.last().expect("non-empty");
    let median = values[values.len() / 2];
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let max_over_median = if median > 0.0 {
        max / median
    } else {
        f64::INFINITY
    };
    MetricSkew {
        max,
        median,
        mean,
        max_over_median,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ContactGraph;

    /// Star: node 0 in the middle.
    fn star(n: usize, rate: f64) -> ContactGraph {
        let mut g = ContactGraph::new(n);
        for i in 1..n as u32 {
            g.set_rate(NodeId(0), NodeId(i), rate);
        }
        g
    }

    #[test]
    fn star_center_is_most_central() {
        let g = star(6, 1e-3);
        let top = select_central_nodes(&g, 3, 3600.0);
        assert_eq!(top[0].node, NodeId(0));
        assert!(top[0].metric > top[1].metric);
    }

    #[test]
    fn metric_is_a_probability() {
        let g = star(5, 1e-3);
        for s in all_metrics(&g, 3600.0) {
            assert!((0.0..=1.0).contains(&s.metric), "{s:?}");
        }
    }

    #[test]
    fn isolated_node_has_zero_metric() {
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(1), 1e-3);
        let m = selection_metric(&g, NodeId(2), 3600.0);
        assert_eq!(m, 0.0);
    }

    #[test]
    fn metric_grows_with_horizon() {
        let g = star(5, 1e-4);
        let short = selection_metric(&g, NodeId(0), 600.0);
        let long = selection_metric(&g, NodeId(0), 86_400.0);
        assert!(long > short);
    }

    #[test]
    fn select_is_deterministic_under_ties() {
        // Symmetric triangle: all metrics equal; expect id order.
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(1), 1e-3);
        g.set_rate(NodeId(1), NodeId(2), 1e-3);
        g.set_rate(NodeId(0), NodeId(2), 1e-3);
        let top = select_central_nodes(&g, 2, 3600.0);
        assert_eq!(top[0].node, NodeId(0));
        assert_eq!(top[1].node, NodeId(1));
    }

    #[test]
    fn truncates_to_available_nodes() {
        let g = star(3, 1e-3);
        let top = select_central_nodes(&g, 10, 3600.0);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn skew_of_star_is_large() {
        let g = star(8, 1e-3);
        let skew = metric_skew(&all_metrics(&g, 600.0));
        assert!(skew.max_over_median > 1.2, "{skew:?}");
        assert!(skew.max >= skew.mean);
        assert!(skew.mean >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_k_panics() {
        let g = star(3, 1e-3);
        let _ = select_central_nodes(&g, 0, 600.0);
    }

    #[test]
    fn degree_strategy_picks_hub() {
        let g = star(6, 1e-3);
        let top = select_by_strategy(&g, 2, 600.0, SelectionStrategy::DegreeCentrality);
        assert_eq!(top[0].node, NodeId(0));
        assert!((top[0].metric - 1.0).abs() < 1e-12, "hub meets everyone");
        assert!(
            (top[1].metric - 0.2).abs() < 1e-12,
            "leaves meet one of five"
        );
    }

    #[test]
    fn frequency_strategy_weights_rates() {
        // Node 1 has one very fast edge; node 2 has two slow ones.
        let mut g = ContactGraph::new(4);
        g.set_rate(NodeId(1), NodeId(0), 1.0);
        g.set_rate(NodeId(2), NodeId(0), 0.1);
        g.set_rate(NodeId(2), NodeId(3), 0.1);
        let top = select_by_strategy(&g, 2, 600.0, SelectionStrategy::ContactFrequency);
        // node 0 sums 1.1, node 1 sums 1.0
        assert_eq!(top[0].node, NodeId(0));
        assert_eq!(top[1].node, NodeId(1));
    }

    #[test]
    fn random_strategy_is_deterministic_and_seed_sensitive() {
        let g = star(8, 1e-3);
        let a = select_by_strategy(&g, 3, 600.0, SelectionStrategy::Random { seed: 1 });
        let b = select_by_strategy(&g, 3, 600.0, SelectionStrategy::Random { seed: 1 });
        assert_eq!(a, b);
        let c = select_by_strategy(&g, 3, 600.0, SelectionStrategy::Random { seed: 2 });
        let a_nodes: Vec<_> = a.iter().map(|s| s.node).collect();
        let c_nodes: Vec<_> = c.iter().map(|s| s.node).collect();
        assert_ne!(a_nodes, c_nodes, "different seeds pick differently");
    }

    #[test]
    fn path_metric_strategy_delegates() {
        let g = star(6, 1e-3);
        let via_strategy = select_by_strategy(&g, 2, 3600.0, SelectionStrategy::PathMetric);
        let direct = select_central_nodes(&g, 2, 3600.0);
        assert_eq!(via_strategy, direct);
    }

    #[test]
    fn reassign_keeps_unchanged_set_in_place() {
        let previous = [NodeId(3), NodeId(1), NodeId(9)];
        // Same membership, different rank order: no slot moves.
        let ranked = [
            CentralityScore {
                node: NodeId(9),
                metric: 0.9,
            },
            CentralityScore {
                node: NodeId(3),
                metric: 0.5,
            },
            CentralityScore {
                node: NodeId(1),
                metric: 0.4,
            },
        ];
        assert_eq!(reassign_central_nodes(&previous, &ranked), previous);
    }

    #[test]
    fn reassign_fills_vacated_slots_in_rank_order() {
        let previous = [NodeId(0), NodeId(1), NodeId(2)];
        let ranked = [
            CentralityScore {
                node: NodeId(5),
                metric: 0.9,
            },
            CentralityScore {
                node: NodeId(1),
                metric: 0.8,
            },
            CentralityScore {
                node: NodeId(6),
                metric: 0.7,
            },
        ];
        // Slots 0 and 2 vacated; best entrant 5 goes to the first
        // vacated slot, 6 to the second.
        assert_eq!(
            reassign_central_nodes(&previous, &ranked),
            vec![NodeId(5), NodeId(1), NodeId(6)]
        );
    }

    #[test]
    fn reassign_short_election_keeps_old_centrals() {
        let previous = [NodeId(0), NodeId(1), NodeId(2)];
        let ranked = [CentralityScore {
            node: NodeId(7),
            metric: 0.9,
        }];
        // Only one node elected: it replaces the first vacated slot,
        // the others keep their previous central node.
        assert_eq!(
            reassign_central_nodes(&previous, &ranked),
            vec![NodeId(7), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn reassign_ignores_ranked_overflow_beyond_slot_count() {
        let previous = [NodeId(0)];
        let ranked = [
            CentralityScore {
                node: NodeId(4),
                metric: 0.9,
            },
            CentralityScore {
                node: NodeId(0),
                metric: 0.8,
            },
        ];
        // Only the top-1 of the election counts for a 1-slot set.
        assert_eq!(reassign_central_nodes(&previous, &ranked), vec![NodeId(4)]);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_graph_panics() {
        let g = ContactGraph::new(1);
        let _ = selection_metric(&g, NodeId(0), 600.0);
    }

    /// Two star communities bridged by one weak edge.
    fn two_stars() -> ContactGraph {
        let mut g = ContactGraph::new(10);
        for i in 1..5u32 {
            g.set_rate(NodeId(0), NodeId(i), 1e-2);
        }
        for i in 6..10u32 {
            g.set_rate(NodeId(5), NodeId(i), 1e-2);
        }
        g.set_rate(NodeId(4), NodeId(9), 1e-6);
        g
    }

    #[test]
    fn label_propagation_finds_the_two_stars() {
        let g = two_stars();
        let p = label_propagation_communities(&g, LABEL_PROPAGATION_ROUNDS);
        assert_eq!(p.node_count(), 10);
        assert_eq!(p.count(), 2, "expected the two stars, got {p:?}");
        for i in 1..5u32 {
            assert_eq!(p.community_of(NodeId(i)), p.community_of(NodeId(0)));
        }
        for i in 6..10u32 {
            assert_eq!(p.community_of(NodeId(i)), p.community_of(NodeId(5)));
        }
        assert_ne!(p.community_of(NodeId(0)), p.community_of(NodeId(5)));
        // Deterministic.
        assert_eq!(
            p,
            label_propagation_communities(&g, LABEL_PROPAGATION_ROUNDS)
        );
    }

    #[test]
    fn label_propagation_keeps_isolated_nodes_apart() {
        let mut g = ContactGraph::new(4);
        g.set_rate(NodeId(0), NodeId(1), 1e-2);
        let p = label_propagation_communities(&g, 8);
        assert_eq!(p.community_of(NodeId(0)), p.community_of(NodeId(1)));
        assert_ne!(p.community_of(NodeId(2)), p.community_of(NodeId(0)));
        assert_ne!(p.community_of(NodeId(2)), p.community_of(NodeId(3)));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn scoped_selection_matches_global_on_single_community() {
        let g = two_stars();
        let single = CommunityPartition::single(g.node_count());
        for k in [1, 3, 10] {
            let global = select_central_nodes(&g, k, 3600.0);
            let scoped = select_central_nodes_scoped(&g, &single, k, 3600.0, None);
            assert_eq!(global, scoped, "k = {k}");
        }
    }

    #[test]
    fn scoped_selection_elects_a_hub_per_community() {
        let g = two_stars();
        let p = label_propagation_communities(&g, LABEL_PROPAGATION_ROUNDS);
        let top = select_central_nodes_scoped(&g, &p, 2, 3600.0, None);
        let mut nodes: Vec<u32> = top.iter().map(|s| s.node.0).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 5], "one hub per star");
    }

    #[test]
    fn scoped_metric_ignores_cross_community_paths() {
        let g = two_stars();
        let p = label_propagation_communities(&g, LABEL_PROPAGATION_ROUNDS);
        let scoped = scoped_metrics(&g, &p, 3600.0, None);
        let global = all_metrics(&g, 3600.0);
        // Scoped scores drop the (weak) cross-community contribution, so
        // they can only be lower, and hubs stay clearly ahead of leaves.
        for (s, g_) in scoped.iter().zip(&global) {
            assert_eq!(s.node, g_.node);
            assert!(s.metric <= g_.metric + 1e-12);
        }
        assert!(scoped[0].metric > scoped[1].metric);
    }

    #[test]
    fn scoped_hop_bound_matches_unbounded_within_star_diameter() {
        let g = two_stars();
        let p = label_propagation_communities(&g, LABEL_PROPAGATION_ROUNDS);
        let unbounded = scoped_metrics(&g, &p, 3600.0, None);
        let bounded = scoped_metrics(&g, &p, 3600.0, Some(8));
        for (u, b) in unbounded.iter().zip(&bounded) {
            assert_eq!(u.node, b.node);
            assert!((u.metric - b.metric).abs() < 1e-15, "{u:?} vs {b:?}");
        }
        let one_hop = scoped_metrics(&g, &p, 3600.0, Some(1));
        // Leaves only reach the hub directly; their 1-hop score shrinks.
        assert!(one_hop[1].metric < unbounded[1].metric);
    }

    #[test]
    fn community_strategy_delegates_to_scoped_selection() {
        let g = two_stars();
        let via = select_by_strategy(
            &g,
            2,
            3600.0,
            SelectionStrategy::CommunityPathMetric { max_hops: None },
        );
        let p = label_propagation_communities(&g, LABEL_PROPAGATION_ROUNDS);
        let direct = select_central_nodes_scoped(&g, &p, 2, 3600.0, None);
        assert_eq!(via, direct);
    }

    #[test]
    fn round_robin_partition_matches_builder_layout() {
        let p = CommunityPartition::round_robin(7, 3);
        assert_eq!(p.count(), 3);
        for i in 0..7u32 {
            assert_eq!(p.community_of(NodeId(i)), i % 3);
        }
        // More communities than nodes degrades gracefully.
        let tiny = CommunityPartition::round_robin(2, 5);
        assert_eq!(tiny.count(), 2);
    }

    #[test]
    fn from_labels_compacts_by_first_appearance() {
        let p = CommunityPartition::from_labels(&[7, 7, 2, 7, 2, 0]);
        assert_eq!(p.count(), 3);
        assert_eq!(
            (0..6)
                .map(|i| p.community_of(NodeId(i)))
                .collect::<Vec<_>>(),
            vec![0, 0, 1, 0, 1, 2]
        );
    }

    #[test]
    fn singleton_communities_score_zero() {
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(1), 1e-2);
        // Put every node in its own community: nobody reaches anybody.
        let p = CommunityPartition::from_labels(&[0, 1, 2]);
        let scores = scoped_metrics(&g, &p, 3600.0, None);
        assert!(scores.iter().all(|s| s.metric == 0.0));
    }

    #[test]
    #[should_panic(expected = "partition must cover")]
    fn partition_size_mismatch_panics() {
        let g = star(4, 1e-3);
        let p = CommunityPartition::single(3);
        let _ = scoped_metrics(&g, &p, 600.0, None);
    }
}
