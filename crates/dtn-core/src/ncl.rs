//! Network Central Location (NCL) selection.
//!
//! Eq. (3) of the paper defines the selection metric of node `i` as
//!
//! ```text
//! C_i = 1/(N−1) · Σ_{j≠i} p_ij(T)
//! ```
//!
//! — the average probability that data reaches `i` from a random node
//! within `T`, where `p_ij(T)` is the weight of the best opportunistic
//! path between `i` and `j` ([`crate::path`]). The network administrator
//! picks the top `K` nodes by this metric as central nodes before any
//! data access happens (§IV-A).

use crate::graph::ContactGraph;
use crate::ids::NodeId;
use crate::par::map_slice;
use crate::path::shortest_paths;

/// A node together with its NCL selection metric `C_i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CentralityScore {
    /// The scored node.
    pub node: NodeId,
    /// Its metric value `C_i ∈ [0, 1]`.
    pub metric: f64,
}

/// Computes the NCL selection metric `C_i` for a single node.
///
/// # Panics
///
/// Panics if `node` is out of range, `horizon` is not positive and
/// finite, or the graph has fewer than two nodes.
///
/// # Example
///
/// ```
/// use dtn_core::graph::ContactGraph;
/// use dtn_core::ids::NodeId;
/// use dtn_core::ncl::selection_metric;
///
/// let mut g = ContactGraph::new(3);
/// g.set_rate(NodeId(0), NodeId(1), 0.01);
/// g.set_rate(NodeId(0), NodeId(2), 0.01);
/// // the hub is easier to reach on average than a leaf
/// assert!(selection_metric(&g, NodeId(0), 600.0)
///     > selection_metric(&g, NodeId(1), 600.0));
/// ```
pub fn selection_metric(graph: &ContactGraph, node: NodeId, horizon: f64) -> f64 {
    let n = graph.node_count();
    assert!(n >= 2, "the metric needs at least two nodes, got {n}");
    // Contacts are symmetric, so p_ij = p_ji and one single-source search
    // from `node` covers all terms of Eq. (3).
    let table = shortest_paths(graph, node, horizon);
    let sum: f64 = graph
        .nodes()
        .filter(|&j| j != node)
        .map(|j| table.weight_to(j))
        .sum();
    sum / (n - 1) as f64
}

/// Computes `C_i` for every node of the graph.
///
/// Returns one [`CentralityScore`] per node, in node-id order. The
/// per-node single-source searches are independent, so they run on all
/// available hardware threads ([`crate::par`]); the order-preserving
/// parallel map guarantees the result is identical to the serial sweep,
/// so downstream tie-breaking stays deterministic.
///
/// # Panics
///
/// Panics if the graph has fewer than two nodes or `horizon` is invalid.
pub fn all_metrics(graph: &ContactGraph, horizon: f64) -> Vec<CentralityScore> {
    let nodes: Vec<NodeId> = graph.nodes().collect();
    map_slice(&nodes, |&node| CentralityScore {
        node,
        metric: selection_metric(graph, node, horizon),
    })
}

/// Selects the top `k` central nodes by metric value, best first.
///
/// Ties are broken by node id so that selection is deterministic. If the
/// graph has fewer than `k` nodes, all of them are returned.
///
/// # Panics
///
/// Panics if `k == 0`, the graph has fewer than two nodes, or `horizon`
/// is invalid.
///
/// # Example
///
/// ```
/// use dtn_core::graph::ContactGraph;
/// use dtn_core::ids::NodeId;
/// use dtn_core::ncl::select_central_nodes;
///
/// let mut g = ContactGraph::new(4);
/// g.set_rate(NodeId(2), NodeId(0), 0.01);
/// g.set_rate(NodeId(2), NodeId(1), 0.01);
/// g.set_rate(NodeId(2), NodeId(3), 0.01);
/// let top = select_central_nodes(&g, 1, 600.0);
/// assert_eq!(top[0].node, NodeId(2));
/// ```
pub fn select_central_nodes(graph: &ContactGraph, k: usize, horizon: f64) -> Vec<CentralityScore> {
    assert!(k > 0, "must select at least one central node");
    let mut scores = all_metrics(graph, horizon);
    scores.sort_by(|a, b| {
        b.metric
            .total_cmp(&a.metric)
            .then_with(|| a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

/// Alternative central-node selection strategies, for comparing the
/// paper's probabilistic metric (Eq. 3) against simpler centralities.
///
/// The paper motivates its metric as "the average probability that data
/// can be transmitted from a random node to node i within time T";
/// cheaper proxies (degree, total contact rate) or a random pick make
/// natural baselines for an ablation of that design choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// The paper's Eq. 3: average shortest-opportunistic-path weight.
    PathMetric,
    /// Number of distinct nodes ever met, normalised by `N − 1`.
    DegreeCentrality,
    /// Sum of adjacent contact rates (total meeting frequency).
    ContactFrequency,
    /// A deterministic pseudo-random pick (control baseline).
    Random {
        /// Seed of the deterministic shuffle.
        seed: u64,
    },
}

/// Selects the top `k` central nodes under the given strategy.
///
/// The returned `metric` values are comparable only *within* one
/// strategy: path weights for [`SelectionStrategy::PathMetric`],
/// normalised degree for [`SelectionStrategy::DegreeCentrality`],
/// summed rates for [`SelectionStrategy::ContactFrequency`] and a
/// rank-derived placeholder for [`SelectionStrategy::Random`].
///
/// # Panics
///
/// Panics if `k == 0`, the graph has fewer than two nodes, or
/// `horizon` is invalid for the path-metric strategy.
///
/// # Example
///
/// ```
/// use dtn_core::graph::ContactGraph;
/// use dtn_core::ids::NodeId;
/// use dtn_core::ncl::{select_by_strategy, SelectionStrategy};
///
/// let mut g = ContactGraph::new(4);
/// g.set_rate(NodeId(2), NodeId(0), 0.01);
/// g.set_rate(NodeId(2), NodeId(1), 0.01);
/// g.set_rate(NodeId(2), NodeId(3), 0.01);
/// let top = select_by_strategy(&g, 1, 600.0, SelectionStrategy::DegreeCentrality);
/// assert_eq!(top[0].node, NodeId(2));
/// ```
pub fn select_by_strategy(
    graph: &ContactGraph,
    k: usize,
    horizon: f64,
    strategy: SelectionStrategy,
) -> Vec<CentralityScore> {
    assert!(k > 0, "must select at least one central node");
    let n = graph.node_count();
    assert!(n >= 2, "selection needs at least two nodes, got {n}");
    let nodes: Vec<NodeId> = graph.nodes().collect();
    let mut scores: Vec<CentralityScore> = match strategy {
        SelectionStrategy::PathMetric => return select_central_nodes(graph, k, horizon),
        SelectionStrategy::DegreeCentrality => map_slice(&nodes, |&node| CentralityScore {
            node,
            metric: graph.degree(node) as f64 / (n - 1) as f64,
        }),
        SelectionStrategy::ContactFrequency => map_slice(&nodes, |&node| CentralityScore {
            node,
            metric: graph.neighbors(node).iter().map(|(_, r)| r).sum(),
        }),
        SelectionStrategy::Random { seed } => {
            // Deterministic rank via a splitmix-style hash of (seed, id).
            map_slice(&nodes, |&node| {
                let mut x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(node.0));
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                CentralityScore {
                    node,
                    metric: (x % 1_000_000) as f64 / 1_000_000.0,
                }
            })
        }
    };
    scores.sort_by(|a, b| {
        b.metric
            .total_cmp(&a.metric)
            .then_with(|| a.node.cmp(&b.node))
    });
    scores.truncate(k);
    scores
}

/// Re-assigns an elected central set onto the previous NCL slots with
/// minimal churn.
///
/// `ranked` is a fresh election result (best first, e.g. from
/// [`select_by_strategy`]); `previous` is the central node of each NCL
/// slot from the last election. A previous central node that is still
/// elected keeps its slot, so the NCLs it anchors see no churn; slots
/// whose central node dropped out receive the new entrants in rank
/// order. If the election returned fewer nodes than there are slots
/// (e.g. the graph shrank), leftover slots keep their previous central
/// node rather than going dark.
///
/// The returned vector always has `previous.len()` entries, so per-slot
/// scheme state (membership counters, load counters) stays valid across
/// re-elections.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::ncl::{reassign_central_nodes, CentralityScore};
///
/// let previous = [NodeId(4), NodeId(7), NodeId(2)];
/// let ranked = [
///     CentralityScore { node: NodeId(2), metric: 0.9 },
///     CentralityScore { node: NodeId(5), metric: 0.8 },
///     CentralityScore { node: NodeId(4), metric: 0.7 },
/// ];
/// // 4 and 2 keep their slots; 7 dropped out, so its slot gets the
/// // best new entrant, 5.
/// assert_eq!(
///     reassign_central_nodes(&previous, &ranked),
///     vec![NodeId(4), NodeId(5), NodeId(2)]
/// );
/// ```
pub fn reassign_central_nodes(previous: &[NodeId], ranked: &[CentralityScore]) -> Vec<NodeId> {
    let elected: Vec<NodeId> = ranked.iter().take(previous.len()).map(|s| s.node).collect();
    let mut entrants = elected
        .iter()
        .copied()
        .filter(|n| !previous.contains(n))
        .collect::<Vec<_>>()
        .into_iter();
    previous
        .iter()
        .map(|&old| {
            if elected.contains(&old) {
                old
            } else {
                entrants.next().unwrap_or(old)
            }
        })
        .collect()
}

/// Skewness summary of a metric distribution, used to validate that the
/// contact pattern is heterogeneous enough for NCL selection (Fig. 4 of
/// the paper: "the metric values of a few nodes are much higher than
/// that of other nodes").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSkew {
    /// Highest metric value in the network.
    pub max: f64,
    /// Median metric value.
    pub median: f64,
    /// Mean metric value.
    pub mean: f64,
    /// `max / median` — the "up to tenfold" difference the paper reports.
    pub max_over_median: f64,
}

/// Summarises how skewed a set of metric values is.
///
/// # Panics
///
/// Panics if `scores` is empty.
pub fn metric_skew(scores: &[CentralityScore]) -> MetricSkew {
    assert!(!scores.is_empty(), "cannot summarise an empty metric set");
    let mut values: Vec<f64> = scores.iter().map(|s| s.metric).collect();
    values.sort_by(f64::total_cmp);
    let max = *values.last().expect("non-empty");
    let median = values[values.len() / 2];
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let max_over_median = if median > 0.0 {
        max / median
    } else {
        f64::INFINITY
    };
    MetricSkew {
        max,
        median,
        mean,
        max_over_median,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star: node 0 in the middle.
    fn star(n: usize, rate: f64) -> ContactGraph {
        let mut g = ContactGraph::new(n);
        for i in 1..n as u32 {
            g.set_rate(NodeId(0), NodeId(i), rate);
        }
        g
    }

    #[test]
    fn star_center_is_most_central() {
        let g = star(6, 1e-3);
        let top = select_central_nodes(&g, 3, 3600.0);
        assert_eq!(top[0].node, NodeId(0));
        assert!(top[0].metric > top[1].metric);
    }

    #[test]
    fn metric_is_a_probability() {
        let g = star(5, 1e-3);
        for s in all_metrics(&g, 3600.0) {
            assert!((0.0..=1.0).contains(&s.metric), "{s:?}");
        }
    }

    #[test]
    fn isolated_node_has_zero_metric() {
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(1), 1e-3);
        let m = selection_metric(&g, NodeId(2), 3600.0);
        assert_eq!(m, 0.0);
    }

    #[test]
    fn metric_grows_with_horizon() {
        let g = star(5, 1e-4);
        let short = selection_metric(&g, NodeId(0), 600.0);
        let long = selection_metric(&g, NodeId(0), 86_400.0);
        assert!(long > short);
    }

    #[test]
    fn select_is_deterministic_under_ties() {
        // Symmetric triangle: all metrics equal; expect id order.
        let mut g = ContactGraph::new(3);
        g.set_rate(NodeId(0), NodeId(1), 1e-3);
        g.set_rate(NodeId(1), NodeId(2), 1e-3);
        g.set_rate(NodeId(0), NodeId(2), 1e-3);
        let top = select_central_nodes(&g, 2, 3600.0);
        assert_eq!(top[0].node, NodeId(0));
        assert_eq!(top[1].node, NodeId(1));
    }

    #[test]
    fn truncates_to_available_nodes() {
        let g = star(3, 1e-3);
        let top = select_central_nodes(&g, 10, 3600.0);
        assert_eq!(top.len(), 3);
    }

    #[test]
    fn skew_of_star_is_large() {
        let g = star(8, 1e-3);
        let skew = metric_skew(&all_metrics(&g, 600.0));
        assert!(skew.max_over_median > 1.2, "{skew:?}");
        assert!(skew.max >= skew.mean);
        assert!(skew.mean >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_k_panics() {
        let g = star(3, 1e-3);
        let _ = select_central_nodes(&g, 0, 600.0);
    }

    #[test]
    fn degree_strategy_picks_hub() {
        let g = star(6, 1e-3);
        let top = select_by_strategy(&g, 2, 600.0, SelectionStrategy::DegreeCentrality);
        assert_eq!(top[0].node, NodeId(0));
        assert!((top[0].metric - 1.0).abs() < 1e-12, "hub meets everyone");
        assert!(
            (top[1].metric - 0.2).abs() < 1e-12,
            "leaves meet one of five"
        );
    }

    #[test]
    fn frequency_strategy_weights_rates() {
        // Node 1 has one very fast edge; node 2 has two slow ones.
        let mut g = ContactGraph::new(4);
        g.set_rate(NodeId(1), NodeId(0), 1.0);
        g.set_rate(NodeId(2), NodeId(0), 0.1);
        g.set_rate(NodeId(2), NodeId(3), 0.1);
        let top = select_by_strategy(&g, 2, 600.0, SelectionStrategy::ContactFrequency);
        // node 0 sums 1.1, node 1 sums 1.0
        assert_eq!(top[0].node, NodeId(0));
        assert_eq!(top[1].node, NodeId(1));
    }

    #[test]
    fn random_strategy_is_deterministic_and_seed_sensitive() {
        let g = star(8, 1e-3);
        let a = select_by_strategy(&g, 3, 600.0, SelectionStrategy::Random { seed: 1 });
        let b = select_by_strategy(&g, 3, 600.0, SelectionStrategy::Random { seed: 1 });
        assert_eq!(a, b);
        let c = select_by_strategy(&g, 3, 600.0, SelectionStrategy::Random { seed: 2 });
        let a_nodes: Vec<_> = a.iter().map(|s| s.node).collect();
        let c_nodes: Vec<_> = c.iter().map(|s| s.node).collect();
        assert_ne!(a_nodes, c_nodes, "different seeds pick differently");
    }

    #[test]
    fn path_metric_strategy_delegates() {
        let g = star(6, 1e-3);
        let via_strategy = select_by_strategy(&g, 2, 3600.0, SelectionStrategy::PathMetric);
        let direct = select_central_nodes(&g, 2, 3600.0);
        assert_eq!(via_strategy, direct);
    }

    #[test]
    fn reassign_keeps_unchanged_set_in_place() {
        let previous = [NodeId(3), NodeId(1), NodeId(9)];
        // Same membership, different rank order: no slot moves.
        let ranked = [
            CentralityScore {
                node: NodeId(9),
                metric: 0.9,
            },
            CentralityScore {
                node: NodeId(3),
                metric: 0.5,
            },
            CentralityScore {
                node: NodeId(1),
                metric: 0.4,
            },
        ];
        assert_eq!(reassign_central_nodes(&previous, &ranked), previous);
    }

    #[test]
    fn reassign_fills_vacated_slots_in_rank_order() {
        let previous = [NodeId(0), NodeId(1), NodeId(2)];
        let ranked = [
            CentralityScore {
                node: NodeId(5),
                metric: 0.9,
            },
            CentralityScore {
                node: NodeId(1),
                metric: 0.8,
            },
            CentralityScore {
                node: NodeId(6),
                metric: 0.7,
            },
        ];
        // Slots 0 and 2 vacated; best entrant 5 goes to the first
        // vacated slot, 6 to the second.
        assert_eq!(
            reassign_central_nodes(&previous, &ranked),
            vec![NodeId(5), NodeId(1), NodeId(6)]
        );
    }

    #[test]
    fn reassign_short_election_keeps_old_centrals() {
        let previous = [NodeId(0), NodeId(1), NodeId(2)];
        let ranked = [CentralityScore {
            node: NodeId(7),
            metric: 0.9,
        }];
        // Only one node elected: it replaces the first vacated slot,
        // the others keep their previous central node.
        assert_eq!(
            reassign_central_nodes(&previous, &ranked),
            vec![NodeId(7), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn reassign_ignores_ranked_overflow_beyond_slot_count() {
        let previous = [NodeId(0)];
        let ranked = [
            CentralityScore {
                node: NodeId(4),
                metric: 0.9,
            },
            CentralityScore {
                node: NodeId(0),
                metric: 0.8,
            },
        ];
        // Only the top-1 of the election counts for a 1-slot set.
        assert_eq!(reassign_central_nodes(&previous, &ranked), vec![NodeId(4)]);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_graph_panics() {
        let g = ContactGraph::new(1);
        let _ = selection_metric(&g, NodeId(0), 600.0);
    }
}
