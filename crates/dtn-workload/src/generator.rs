//! Data and query workload generation (§VI-A of the paper).
//!
//! **Data generation**: each node periodically (every `T_L`) checks
//! whether it has a live generated item; if not, it generates one with
//! probability `p_G = 0.2`. Lifetimes are uniform in
//! `[0.5·T_L, 1.5·T_L]` and sizes uniform in `[0.5·s_avg, 1.5·s_avg]`.
//!
//! **Query generation**: every `T_L/2`, each node decides for each live
//! data item `j` whether to request it, with Zipf probability `P_j`
//! (Eq. 8). Queries carry the finite time constraint `T_L/2`. Nodes do
//! not query their own data (they hold it already).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dtn_core::ids::{DataId, NodeId};
use dtn_core::time::{Duration, Time};
use dtn_sim::engine::WorkloadEvent;
use dtn_sim::message::DataItem;

use crate::zipf::Zipf;

/// Parameters of the §VI-A workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Probability `p_G` that an idle node generates data at a check.
    /// Default 0.2 (fixed in the paper's evaluation).
    pub generation_probability: f64,
    /// Mean data lifetime `T_L`; also the generation check period.
    pub mean_lifetime: Duration,
    /// Mean data size `s_avg` in bytes.
    pub mean_size: u64,
    /// Zipf exponent `s` of the query pattern. Default 1.
    pub zipf_exponent: f64,
    /// Query time constraint; defaults to `T_L / 2` when `None`.
    pub query_constraint: Option<Duration>,
    /// Workload window `[start, end)` — the paper uses the second half
    /// of the trace.
    pub window: (Time, Time),
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A paper-default configuration over the given window: `p_G = 0.2`,
    /// `T_L` = 1 week, `s_avg` = 100 Mb, `s = 1`.
    pub fn new(window: (Time, Time)) -> Self {
        WorkloadConfig {
            generation_probability: 0.2,
            mean_lifetime: Duration::weeks(1),
            mean_size: dtn_sim::engine::megabits(100),
            zipf_exponent: 1.0,
            query_constraint: None,
            window,
            seed: 0,
        }
    }

    /// The effective query constraint (`T_L/2` unless overridden).
    pub fn effective_query_constraint(&self) -> Duration {
        self.query_constraint
            .unwrap_or_else(|| self.mean_lifetime.div_by(2))
    }
}

/// A generated workload: the event list plus summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    events: Vec<WorkloadEvent>,
    items: Vec<DataItem>,
    query_count: u64,
    window: (Time, Time),
}

impl Workload {
    /// Generates the workload for `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty, `nodes == 0`, the generation
    /// probability is outside `[0, 1]`, or the mean lifetime/size is
    /// zero.
    pub fn generate(nodes: usize, config: &WorkloadConfig) -> Self {
        assert!(nodes > 0, "workload needs at least one node");
        let (start, end) = config.window;
        assert!(start < end, "workload window must be non-empty");
        assert!(
            (0.0..=1.0).contains(&config.generation_probability),
            "p_G must be a probability"
        );
        assert!(
            config.mean_lifetime > Duration::ZERO,
            "mean lifetime must be positive"
        );
        assert!(config.mean_size > 0, "mean size must be positive");

        let mut rng = StdRng::seed_from_u64(config.seed);
        let t_l = config.mean_lifetime;

        // --- Data generation ------------------------------------------
        let mut items: Vec<DataItem> = Vec::new();
        // expiry of each node's current live item, if any
        let mut live_until: Vec<Option<Time>> = vec![None; nodes];
        let mut next_id = 0u64;
        let mut epoch = start;
        while epoch < end {
            for (node, lives) in live_until.iter_mut().enumerate() {
                let idle = lives.is_none_or(|t| t <= epoch);
                if idle && rng.gen_bool(config.generation_probability) {
                    let lifetime = t_l.mul_f64(rng.gen_range(0.5..1.5)).max(Duration(1));
                    let size = ((config.mean_size as f64 * rng.gen_range(0.5..1.5)) as u64).max(1);
                    let item =
                        DataItem::new(DataId(next_id), NodeId(node as u32), size, epoch, lifetime);
                    next_id += 1;
                    *lives = Some(item.expires_at());
                    items.push(item);
                }
            }
            epoch += t_l;
        }

        // --- Query generation ------------------------------------------
        let constraint = config.effective_query_constraint();
        let mut queries: Vec<WorkloadEvent> = Vec::new();
        let mut epoch = start + constraint; // first batch after data exists
        while epoch < end {
            // Items alive at this epoch, ranked by creation order
            // (rank 1 = oldest alive = most popular).
            let alive: Vec<&DataItem> = items
                .iter()
                .filter(|d| d.created_at <= epoch && d.is_alive(epoch))
                .collect();
            if !alive.is_empty() {
                let zipf = Zipf::new(alive.len(), config.zipf_exponent);
                for node in 0..nodes {
                    for (rank0, item) in alive.iter().enumerate() {
                        if item.source.index() == node {
                            continue; // a source holds its own data
                        }
                        if rng.gen_bool(zipf.probability(rank0 + 1)) {
                            queries.push(WorkloadEvent::IssueQuery {
                                at: epoch,
                                requester: NodeId(node as u32),
                                data: item.id,
                                constraint,
                            });
                        }
                    }
                }
            }
            epoch += constraint;
        }

        let query_count = queries.len() as u64;
        let mut events: Vec<WorkloadEvent> = items
            .iter()
            .map(|&item| WorkloadEvent::GenerateData { item })
            .collect();
        events.append(&mut queries);
        // Stable order: by time, data generation before queries at ties.
        events.sort_by_key(|e| (e.at(), matches!(e, WorkloadEvent::IssueQuery { .. })));

        Workload {
            events,
            items,
            query_count,
            window: config.window,
        }
    }

    /// The time-ordered event list, ready for
    /// [`Simulator::add_workload`](dtn_sim::engine::Simulator::add_workload).
    pub fn events(&self) -> &[WorkloadEvent] {
        &self.events
    }

    /// Consumes the workload, returning the event list.
    pub fn into_events(self) -> Vec<WorkloadEvent> {
        self.events
    }

    /// All generated data items.
    pub fn items(&self) -> &[DataItem] {
        &self.items
    }

    /// Number of queries issued.
    pub fn query_count(&self) -> u64 {
        self.query_count
    }

    /// Time-averaged number of live data items over the window — the
    /// quantity plotted against `T_L` in Fig. 9(a).
    pub fn avg_live_items(&self) -> f64 {
        let (start, end) = self.window;
        let span = (end - start).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let alive_secs: f64 = self
            .items
            .iter()
            .map(|d| {
                let from = d.created_at.max(start);
                let to = d.expires_at().min(end);
                to.saturating_since(from).as_secs_f64()
            })
            .sum();
        alive_secs / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(t_l_hours: u64, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            mean_lifetime: Duration::hours(t_l_hours),
            mean_size: 1000,
            seed,
            ..WorkloadConfig::new((Time(0), Time(Duration::days(4).as_secs())))
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Workload::generate(10, &config(12, 3));
        let b = Workload::generate(10, &config(12, 3));
        assert_eq!(a, b);
        let c = Workload::generate(10, &config(12, 4));
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_time_ordered() {
        let w = Workload::generate(10, &config(12, 1));
        for pair in w.events().windows(2) {
            assert!(pair[0].at() <= pair[1].at());
        }
    }

    #[test]
    fn items_respect_lifetime_and_size_ranges() {
        let cfg = config(24, 7);
        let w = Workload::generate(15, &cfg);
        assert!(!w.items().is_empty());
        let t_l = cfg.mean_lifetime.as_secs_f64();
        for d in w.items() {
            let life = (d.expires_at() - d.created_at).as_secs_f64();
            assert!(
                life >= 0.5 * t_l - 1.0 && life <= 1.5 * t_l + 1.0,
                "life {life}"
            );
            assert!(d.size >= 500 && d.size <= 1500, "size {}", d.size);
        }
    }

    #[test]
    fn at_most_one_live_item_per_node() {
        let w = Workload::generate(8, &config(12, 5));
        for node in 0..8u32 {
            let mut own: Vec<&DataItem> = w
                .items()
                .iter()
                .filter(|d| d.source == NodeId(node))
                .collect();
            own.sort_by_key(|d| d.created_at);
            for pair in own.windows(2) {
                assert!(
                    pair[1].created_at >= pair[0].expires_at(),
                    "node {node} had two live items"
                );
            }
        }
    }

    #[test]
    fn queries_reference_live_foreign_items() {
        let w = Workload::generate(10, &config(12, 2));
        assert!(w.query_count() > 0);
        for e in w.events() {
            if let WorkloadEvent::IssueQuery {
                at,
                requester,
                data,
                ..
            } = e
            {
                let item = w
                    .items()
                    .iter()
                    .find(|d| d.id == *data)
                    .expect("item exists");
                assert!(item.created_at <= *at && item.is_alive(*at));
                assert_ne!(item.source, *requester, "node queried its own data");
            }
        }
    }

    #[test]
    fn query_constraint_defaults_to_half_lifetime() {
        let cfg = config(12, 2);
        assert_eq!(cfg.effective_query_constraint(), Duration::hours(6));
        let w = Workload::generate(10, &cfg);
        for e in w.events() {
            if let WorkloadEvent::IssueQuery { constraint, .. } = e {
                assert_eq!(*constraint, Duration::hours(6));
            }
        }
    }

    #[test]
    fn steady_state_live_items_approach_pg_times_nodes() {
        // With the §VI-A process, a node is live a fraction ≈ p_G of the
        // time regardless of T_L, so the live count hovers near p_G·N —
        // while the *total* generated count scales with the number of
        // generation epochs (window / T_L). Fig. 9(a)'s "amount of data
        // controlled by T_L" is this total.
        let short = Workload::generate(20, &config(6, 9));
        let long = Workload::generate(20, &config(48, 9));
        for w in [&short, &long] {
            let live = w.avg_live_items();
            assert!(live > 1.0 && live < 10.0, "live {live} far from p_G·N = 4");
        }
        assert!(
            short.items().len() > 2 * long.items().len(),
            "shorter T_L must generate more items: {} vs {}",
            short.items().len(),
            long.items().len()
        );
    }

    #[test]
    fn zero_generation_probability_yields_empty_workload() {
        let mut cfg = config(12, 1);
        cfg.generation_probability = 0.0;
        let w = Workload::generate(10, &cfg);
        assert!(w.items().is_empty());
        assert_eq!(w.query_count(), 0);
        assert_eq!(w.avg_live_items(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_panics() {
        let mut cfg = config(12, 1);
        cfg.window = (Time(100), Time(100));
        let _ = Workload::generate(10, &cfg);
    }
}
