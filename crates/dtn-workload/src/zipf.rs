//! The Zipf query-popularity distribution (Eq. 8 of the paper).
//!
//! "We assume that the query pattern follows a Zipf distribution, which
//! has been proved to appropriately describe the query pattern of web
//! data access" (§VI-A):
//!
//! ```text
//! P_j = (1/j^s) / Σ_{i=1..M} (1/i^s)
//! ```

use rand::Rng;

/// A Zipf distribution over ranks `1..=M` with exponent `s`.
///
/// # Example
///
/// ```
/// use dtn_workload::zipf::Zipf;
///
/// let z = Zipf::new(100, 1.0);
/// // Rank 1 is the most popular...
/// assert!(z.probability(1) > z.probability(2));
/// // ...and the probabilities sum to one.
/// let total: f64 = (1..=100).map(|j| z.probability(j)).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    exponent: f64,
    /// cdf[j-1] = P(rank ≤ j)
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution over `m` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `s` is negative or not finite.
    pub fn new(m: usize, s: f64) -> Self {
        assert!(m > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(m);
        let mut acc = 0.0;
        for j in 1..=m {
            acc += (j as f64).powf(-s);
            cdf.push(acc);
        }
        let norm = acc;
        for v in &mut cdf {
            *v /= norm;
        }
        Zipf { exponent: s, cdf }
    }

    /// Number of ranks `M`.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has no ranks (never true by
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The probability `P_j` of rank `j ∈ 1..=M`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is 0 or exceeds `M`.
    pub fn probability(&self, j: usize) -> f64 {
        assert!(
            j >= 1 && j <= self.cdf.len(),
            "rank {j} out of 1..={}",
            self.cdf.len()
        );
        if j == 1 {
            self.cdf[0]
        } else {
            self.cdf[j - 1] - self.cdf[j - 2]
        }
    }

    /// Samples a rank in `1..=M`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        for s in [0.0, 0.5, 1.0, 1.5] {
            let z = Zipf::new(50, s);
            let total: f64 = (1..=50).map(|j| z.probability(j)).sum();
            assert!((total - 1.0).abs() < 1e-9, "s={s}: total {total}");
        }
    }

    #[test]
    fn probabilities_are_monotone_decreasing() {
        let z = Zipf::new(30, 1.0);
        for j in 1..30 {
            assert!(z.probability(j) >= z.probability(j + 1));
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for j in 1..=10 {
            assert!((z.probability(j) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn higher_exponent_concentrates_mass_on_rank_one() {
        let flat = Zipf::new(100, 0.5);
        let steep = Zipf::new(100, 1.5);
        assert!(steep.probability(1) > flat.probability(1));
        assert!(steep.probability(100) < flat.probability(100));
    }

    #[test]
    fn matches_paper_fig9b_shape() {
        // Fig. 9(b): with s = 1 and M large, P_1 is a bit under 0.2 for
        // M=100; check the closed form directly.
        let z = Zipf::new(100, 1.0);
        let h100: f64 = (1..=100).map(|i| 1.0 / i as f64).sum();
        assert!((z.probability(1) - 1.0 / h100).abs() < 1e-12);
    }

    #[test]
    fn sampling_tracks_probabilities() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for j in 1..=10 {
            let freq = f64::from(counts[j - 1]) / f64::from(n);
            assert!(
                (freq - z.probability(j)).abs() < 0.01,
                "rank {j}: {freq} vs {}",
                z.probability(j)
            );
        }
    }

    #[test]
    fn len_and_exponent_accessors() {
        let z = Zipf::new(7, 0.8);
        assert_eq!(z.len(), 7);
        assert!(!z.is_empty());
        assert_eq!(z.exponent(), 0.8);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_zipf_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of 1..=")]
    fn rank_zero_panics() {
        let z = Zipf::new(5, 1.0);
        let _ = z.probability(0);
    }
}
