//! Workload generation for DTN caching experiments.
//!
//! Implements the experiment setup of §VI-A of the paper: probabilistic
//! periodic data generation (`p_G`, uniform lifetimes and sizes around
//! `T_L` / `s_avg`) and Zipf-distributed queries with a finite time
//! constraint. Produces [`dtn_sim::engine::WorkloadEvent`] lists ready to
//! feed into the simulator.
//!
//! # Example
//!
//! ```
//! use dtn_core::time::{Duration, Time};
//! use dtn_workload::{Workload, WorkloadConfig};
//!
//! let mut cfg = WorkloadConfig::new((Time(0), Time(86_400 * 4)));
//! cfg.mean_lifetime = Duration::hours(12);
//! cfg.mean_size = 1 << 20;
//! let w = Workload::generate(20, &cfg);
//! assert!(w.query_count() > 0);
//! ```

pub mod generator;
pub mod io;
pub mod zipf;

pub use generator::{Workload, WorkloadConfig};
pub use zipf::Zipf;
