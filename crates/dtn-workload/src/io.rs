//! Plain-text serialisation of workloads, so the exact same event
//! sequence can be replayed across schemes, machines or tools.
//!
//! Format: a header `# workload nodes=<N>` followed by one line per
//! event:
//!
//! ```text
//! D,<data_id>,<source>,<size>,<created_at>,<lifetime>
//! Q,<requester>,<data_id>,<at>,<constraint>
//! ```

use std::io::{BufRead, Write};

use dtn_core::ids::{DataId, NodeId};
use dtn_core::time::{Duration, Time};
use dtn_sim::engine::WorkloadEvent;
use dtn_sim::message::DataItem;

/// Error produced while reading a workload file.
#[derive(Debug)]
pub enum WorkloadReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for WorkloadReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadReadError::Io(e) => write!(f, "workload read failed: {e}"),
            WorkloadReadError::Parse { line, reason } => {
                write!(f, "workload parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadReadError {}

impl From<std::io::Error> for WorkloadReadError {
    fn from(e: std::io::Error) -> Self {
        WorkloadReadError::Io(e)
    }
}

/// Writes events in replayable text form.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
///
/// # Example
///
/// ```
/// use dtn_core::time::{Duration, Time};
/// use dtn_workload::io::{read_events, write_events};
/// use dtn_workload::{Workload, WorkloadConfig};
///
/// let w = Workload::generate(6, &WorkloadConfig {
///     mean_lifetime: Duration::hours(2),
///     mean_size: 1000,
///     ..WorkloadConfig::new((Time(0), Time(86_400)))
/// });
/// let mut buf = Vec::new();
/// write_events(w.events(), &mut buf)?;
/// let back = read_events(&buf[..])?;
/// assert_eq!(w.events(), &back[..]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_events<W: Write>(events: &[WorkloadEvent], mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# workload events={}", events.len())?;
    for e in events {
        match e {
            WorkloadEvent::GenerateData { item } => writeln!(
                writer,
                "D,{},{},{},{},{}",
                item.id.0,
                item.source.0,
                item.size,
                item.created_at.as_secs(),
                (item.expires_at() - item.created_at).as_secs(),
            )?,
            WorkloadEvent::IssueQuery {
                at,
                requester,
                data,
                constraint,
            } => writeln!(
                writer,
                "Q,{},{},{},{}",
                requester.0,
                data.0,
                at.as_secs(),
                constraint.as_secs(),
            )?,
        }
    }
    Ok(())
}

/// Reads events previously written by [`write_events`].
///
/// # Errors
///
/// Returns [`WorkloadReadError`] on I/O failure or malformed input.
pub fn read_events<R: BufRead>(reader: R) -> Result<Vec<WorkloadEvent>, WorkloadReadError> {
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t.split(',').collect();
        let num = |idx: usize| -> Result<u64, WorkloadReadError> {
            fields
                .get(idx)
                .and_then(|f| f.trim().parse().ok())
                .ok_or_else(|| WorkloadReadError::Parse {
                    line: line_no,
                    reason: format!("missing or non-numeric field {idx} in {t:?}"),
                })
        };
        match fields.first().copied() {
            Some("D") => {
                if fields.len() != 6 {
                    return Err(WorkloadReadError::Parse {
                        line: line_no,
                        reason: format!("D rows have 6 fields, got {t:?}"),
                    });
                }
                events.push(WorkloadEvent::GenerateData {
                    item: DataItem::new(
                        DataId(num(1)?),
                        NodeId(num(2)? as u32),
                        num(3)?,
                        Time(num(4)?),
                        Duration(num(5)?),
                    ),
                });
            }
            Some("Q") => {
                if fields.len() != 5 {
                    return Err(WorkloadReadError::Parse {
                        line: line_no,
                        reason: format!("Q rows have 5 fields, got {t:?}"),
                    });
                }
                events.push(WorkloadEvent::IssueQuery {
                    requester: NodeId(num(1)? as u32),
                    data: DataId(num(2)?),
                    at: Time(num(3)?),
                    constraint: Duration(num(4)?),
                });
            }
            _ => {
                return Err(WorkloadReadError::Parse {
                    line: line_no,
                    reason: format!("unknown event kind in {t:?}"),
                });
            }
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Workload, WorkloadConfig};

    #[test]
    fn roundtrip_preserves_generated_workload() {
        let w = Workload::generate(
            8,
            &WorkloadConfig {
                mean_lifetime: Duration::hours(3),
                mean_size: 5000,
                seed: 4,
                ..WorkloadConfig::new((Time(0), Time(86_400)))
            },
        );
        let mut buf = Vec::new();
        write_events(w.events(), &mut buf).expect("write to Vec");
        let back = read_events(&buf[..]).expect("read own output");
        assert_eq!(w.events(), &back[..]);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(read_events(&b"X,1,2,3\n"[..]).is_err());
        assert!(read_events(&b"D,1,2,3\n"[..]).is_err());
        assert!(read_events(&b"Q,a,2,3,4\n"[..]).is_err());
    }

    #[test]
    fn skips_comments_and_blanks() {
        let raw = "# workload events=1\n\nQ,1,2,30,40\n";
        let events = read_events(raw.as_bytes()).expect("valid");
        assert_eq!(events.len(), 1);
    }
}
