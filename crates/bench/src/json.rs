//! Minimal hand-rolled JSON parser for the run-diff harness.
//!
//! The workspace carries no serde, so `experiments compare` parses its
//! own exports (JSONL captures from `observe`/`timeline`, committed
//! `BENCH_*.json` documents) with this recursive-descent reader. It
//! accepts standard JSON — objects, arrays, strings with the usual
//! escapes, numbers, booleans, null — and nothing more: no comments,
//! no trailing commas. Numbers land as `f64`, which is exact for every
//! counter the exporters emit (all below 2^53).

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as (key, value) pairs in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document; trailing whitespace is
    /// allowed, trailing content is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => write!(f, "{n}"),
            JsonValue::Str(s) => write!(f, "{s:?}"),
            JsonValue::Arr(xs) => write!(f, "[..{} items..]", xs.len()),
            JsonValue::Obj(fs) => write!(f, "{{..{} fields..}}", fs.len()),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by any of
                            // our exporters; map lone surrogates to the
                            // replacement character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid char boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let span = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        span.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {span:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        let v = JsonValue::parse(
            r#"{"a": 1, "b": -2.5e2, "c": [true, false, null], "d": {"nested": "x"}}"#,
        )
        .expect("valid document");
        assert_eq!(v.get("a").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(JsonValue::as_f64), Some(-250.0));
        match v.get("c") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(
                    items,
                    &[
                        JsonValue::Bool(true),
                        JsonValue::Bool(false),
                        JsonValue::Null
                    ]
                );
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            v.get("d")
                .and_then(|d| d.get("nested"))
                .and_then(JsonValue::as_str),
            Some("x")
        );
    }

    #[test]
    fn decodes_string_escapes() {
        let v = JsonValue::parse(r#""a\"b\\c\ndA""#).expect("valid string");
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_trailing_content_and_bad_syntax() {
        assert!(JsonValue::parse("{\"a\": 1} extra").is_err());
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn round_trips_exporter_counters_exactly() {
        // Counters from our exporters are u64s well below 2^53.
        let v = JsonValue::parse("{\"n\": 232188649}").expect("valid");
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(232188649.0));
    }
}
