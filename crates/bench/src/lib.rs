//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `figN_*` function returns structured rows; the `experiments`
//! binary formats them as text tables, and the criterion benches run the
//! same code at reduced scale. See DESIGN.md §4 for the experiment
//! index and EXPERIMENTS.md for recorded results.

pub mod compare;
pub mod figures;
pub mod json;
pub mod observe;
pub mod regimes;
pub mod runner;
pub mod scale;
pub mod serve;
pub mod simcheck;

pub use runner::{
    averaged_run, averaged_sweep, timed_averaged_sweep, AveragedReport, PointTiming, SweepPoint,
};
