//! The run-diff regression harness behind `experiments compare`.
//!
//! Aligns two runs — JSONL captures from `observe`/`timeline`, or two
//! committed `BENCH_*.json` documents — into keyed numeric series,
//! reports every per-window / per-phase / per-counter delta, and gates
//! a small set of outcome metrics behind a configurable threshold so
//! CI can fail a pull request that quietly regresses delivery.
//!
//! Two alignment modes, auto-detected per file:
//!
//! - **jsonl**: one [`crate::observe`] capture per file. Lines become
//!   series keys — `run.*` header counters, `events.<kind>` counts,
//!   `traces`, `window[i].*` (including per-NCL `[j]` lanes and the
//!   window edges, so a layout drift surfaces as its own delta),
//!   `phase[order:name@depth].*`, `footer.*`. Only deterministic
//!   counters are *gated* (success ratio, mean delay, bytes on the
//!   wire); phase wall-clock rows are informational — CI machines are
//!   too noisy for timed gates, per the repo's benching convention.
//! - **bench**: one JSON document per file (`BENCH_*.json`). Every
//!   numeric leaf becomes a dotted-path series; gate direction is
//!   inferred from the key name (`*_ns`/`*_secs`/`peak_rss_bytes` are
//!   lower-better, `*per_sec`/`success_ratio`/`speedup`/`*hit*` are
//!   higher-better, anything else is ungated).
//!
//! A run compared against itself aligns exactly: zero differing rows,
//! zero regressions, exit 0.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use dtn_sim::telemetry::Telemetry;

use crate::json::JsonValue;

/// One aligned series whose value differs between the runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Series key (`window[3].deliveries`, `results...optimized_ns`, …).
    pub key: String,
    /// Value in the first run.
    pub a: f64,
    /// Value in the second run.
    pub b: f64,
}

impl DeltaRow {
    /// Relative change in percent (`None` when the baseline is 0).
    pub fn pct(&self) -> Option<f64> {
        (self.a != 0.0).then(|| (self.b - self.a) / self.a * 100.0)
    }
}

/// The full alignment of two runs.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Detected alignment mode: `"jsonl"` or `"bench"`.
    pub mode: &'static str,
    /// Label of the first run (its path).
    pub a_label: String,
    /// Label of the second run (its path).
    pub b_label: String,
    /// Series present in both runs.
    pub aligned: usize,
    /// Aligned series whose values differ, in key order.
    pub rows: Vec<DeltaRow>,
    /// Series only the first run has.
    pub only_a: Vec<String>,
    /// Series only the second run has.
    pub only_b: Vec<String>,
    /// Human-readable gate violations; non-empty fails the compare.
    pub regressions: Vec<String>,
    /// The relative threshold the gates ran at, in percent.
    pub threshold_pct: f64,
}

impl CompareReport {
    /// Whether any gated metric regressed past the threshold.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Renders the report for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== compare ({}): {} vs {} ==",
            self.mode, self.a_label, self.b_label
        );
        let _ = writeln!(
            out,
            "{} aligned series; {} differ; {} only in a; {} only in b; threshold {}%",
            self.aligned,
            self.rows.len(),
            self.only_a.len(),
            self.only_b.len(),
            self.threshold_pct,
        );
        const SHOW: usize = 64;
        if !self.rows.is_empty() {
            let _ = writeln!(
                out,
                "{:<44} {:>14} {:>14} {:>9}",
                "series", "a", "b", "delta"
            );
            for row in self.rows.iter().take(SHOW) {
                let delta = row
                    .pct()
                    .map_or_else(|| "new".to_string(), |p| format!("{p:+.1}%"));
                let _ = writeln!(
                    out,
                    "{:<44} {:>14} {:>14} {:>9}",
                    row.key, row.a, row.b, delta
                );
            }
            if self.rows.len() > SHOW {
                let _ = writeln!(
                    out,
                    "... and {} more differing series",
                    self.rows.len() - SHOW
                );
            }
        }
        for (name, keys) in [("a", &self.only_a), ("b", &self.only_b)] {
            if !keys.is_empty() {
                let shown: Vec<&str> = keys.iter().take(8).map(String::as_str).collect();
                let _ = writeln!(
                    out,
                    "only in {name} ({}): {}{}",
                    keys.len(),
                    shown.join(", "),
                    if keys.len() > 8 { ", ..." } else { "" }
                );
            }
        }
        if self.regressions.is_empty() {
            let _ = writeln!(out, "verdict: OK");
        } else {
            for r in &self.regressions {
                let _ = writeln!(out, "regression: {r}");
            }
            let _ = writeln!(out, "verdict: REGRESSED");
        }
        out
    }
}

/// Compares two run exports on disk. See the module docs for the
/// formats; mixing a JSONL capture with a bench document is an error.
pub fn compare_files(a: &Path, b: &Path, threshold_pct: f64) -> Result<CompareReport, String> {
    let read = |p: &Path| {
        std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))
    };
    compare_strings(
        &read(a)?,
        &a.display().to_string(),
        &read(b)?,
        &b.display().to_string(),
        threshold_pct,
    )
}

/// [`compare_files`] over in-memory text (the testable core).
pub fn compare_strings(
    a_text: &str,
    a_label: &str,
    b_text: &str,
    b_label: &str,
    threshold_pct: f64,
) -> Result<CompareReport, String> {
    let a_doc = JsonValue::parse(a_text).ok();
    let b_doc = JsonValue::parse(b_text).ok();
    let (mode, a_series, b_series) = match (a_doc, b_doc) {
        (Some(a), Some(b)) => {
            let mut sa = BTreeMap::new();
            let mut sb = BTreeMap::new();
            flatten(&a, "", &mut sa);
            flatten(&b, "", &mut sb);
            ("bench", sa, sb)
        }
        (None, None) => (
            "jsonl",
            jsonl_series(a_text, a_label)?,
            jsonl_series(b_text, b_label)?,
        ),
        (Some(_), None) | (None, Some(_)) => {
            return Err(format!(
                "format mismatch: one of {a_label} / {b_label} is a single JSON \
                 document, the other a JSONL capture"
            ))
        }
    };

    let mut rows = Vec::new();
    let mut only_a = Vec::new();
    let mut aligned = 0usize;
    for (key, &va) in &a_series {
        match b_series.get(key) {
            Some(&vb) => {
                aligned += 1;
                if va != vb {
                    rows.push(DeltaRow {
                        key: key.clone(),
                        a: va,
                        b: vb,
                    });
                }
            }
            None => only_a.push(key.clone()),
        }
    }
    let only_b: Vec<String> = b_series
        .keys()
        .filter(|k| !a_series.contains_key(*k))
        .cloned()
        .collect();

    let regressions = if mode == "bench" {
        bench_regressions(&a_series, &b_series, threshold_pct)
    } else {
        jsonl_regressions(&a_series, &b_series, threshold_pct)
    };

    Ok(CompareReport {
        mode,
        a_label: a_label.to_string(),
        b_label: b_label.to_string(),
        aligned,
        rows,
        only_a,
        only_b,
        regressions,
        threshold_pct,
    })
}

/// Flattens every numeric leaf of a JSON document to a dotted path
/// (array elements as `[i]`). Strings, booleans and nulls are dropped —
/// the diff aligns numbers.
fn flatten(value: &JsonValue, prefix: &str, out: &mut BTreeMap<String, f64>) {
    match value {
        JsonValue::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        JsonValue::Obj(fields) => {
            for (k, v) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(v, &path, out);
            }
        }
        JsonValue::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, &format!("{prefix}[{i}]"), out);
            }
        }
        _ => {}
    }
}

/// Folds one JSONL capture into keyed numeric series. Unknown line
/// types pass through silently so the harness stays forward-compatible
/// with new exporters; an unparseable line is an error.
fn jsonl_series(text: &str, label: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let mut event_counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut traces = 0.0f64;
    let mut phase_order = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("{label}:{}: {e}", idx + 1))?;
        match v.get("type").and_then(JsonValue::as_str).unwrap_or("") {
            "run" => {
                if let Some(ts) = v.get("telemetry_schema").and_then(JsonValue::as_str) {
                    if ts != Telemetry::SCHEMA {
                        return Err(format!(
                            "{label}: unsupported telemetry schema {ts:?} (this build \
                             reads {:?})",
                            Telemetry::SCHEMA
                        ));
                    }
                }
                collect_numeric(&v, "run", &mut out);
            }
            "event" => {
                let kind = v.get("kind").and_then(JsonValue::as_str).unwrap_or("?");
                *event_counts.entry(kind.to_string()).or_insert(0.0) += 1.0;
            }
            "trace" => traces += 1.0,
            "window" => {
                let i = v
                    .get("index")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("{label}:{}: window without index", idx + 1))?;
                collect_numeric(&v, &format!("window[{i}]"), &mut out);
            }
            "phase" => {
                let name = v.get("phase").and_then(JsonValue::as_str).unwrap_or("?");
                let depth = v.get("depth").and_then(JsonValue::as_f64).unwrap_or(0.0);
                // Order + depth pin the key to the tree position, so a
                // reshaped call tree misaligns instead of silently
                // pairing different spans.
                collect_numeric(
                    &v,
                    &format!("phase[{phase_order}:{name}@{depth}]"),
                    &mut out,
                );
                phase_order += 1;
            }
            "footer" => collect_numeric(&v, "footer", &mut out),
            _ => {}
        }
    }
    for (kind, count) in event_counts {
        out.insert(format!("events.{kind}"), count);
    }
    out.insert("traces".to_string(), traces);
    Ok(out)
}

/// Hoists every numeric field (and numeric array lane) of one parsed
/// line under `prefix`.
fn collect_numeric(v: &JsonValue, prefix: &str, out: &mut BTreeMap<String, f64>) {
    let JsonValue::Obj(fields) = v else { return };
    for (k, val) in fields {
        if k == "type" || k == "index" || k == "depth" || k == "phase" {
            continue;
        }
        match val {
            JsonValue::Num(n) => {
                out.insert(format!("{prefix}.{k}"), *n);
            }
            JsonValue::Arr(items) => {
                for (j, item) in items.iter().enumerate() {
                    if let JsonValue::Num(n) = item {
                        out.insert(format!("{prefix}.{k}[{j}]"), *n);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Reads a whole-run counter, preferring the authoritative footer and
/// falling back to the legacy header totals (`dtn-observe/1` captures
/// have no footer).
fn run_total(series: &BTreeMap<String, f64>, name: &str) -> Option<f64> {
    series
        .get(&format!("footer.{name}"))
        .or_else(|| series.get(&format!("run.{name}")))
        .copied()
}

/// The JSONL gates: deterministic outcome counters only. Wall-clock
/// phase rows are never gated here — that is what the locally-refreshed
/// `BENCH_*.json` documents are for.
/// The whole-run counters the JSONL gates are built from. A capture
/// that *loses* one of these (truncated file, exporter drift) must not
/// sail through just because the corresponding threshold gate had
/// nothing to compare.
const GATED_COUNTERS: [&str; 4] = [
    "queries_issued",
    "queries_satisfied",
    "total_delay_secs",
    "bytes_transmitted",
];

fn jsonl_regressions(
    a: &BTreeMap<String, f64>,
    b: &BTreeMap<String, f64>,
    threshold_pct: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    let t = threshold_pct / 100.0;
    for name in GATED_COUNTERS {
        if run_total(a, name).is_some() && run_total(b, name).is_none() {
            out.push(format!(
                "missing gated series: {name} present in baseline but absent \
                 from candidate (truncated or incompatible capture?)"
            ));
        }
    }
    let ratio = |m: &BTreeMap<String, f64>| -> Option<f64> {
        let issued = run_total(m, "queries_issued")?;
        let satisfied = run_total(m, "queries_satisfied")?;
        (issued > 0.0).then(|| satisfied / issued)
    };
    if let (Some(ra), Some(rb)) = (ratio(a), ratio(b)) {
        if rb < ra * (1.0 - t) {
            out.push(format!(
                "success ratio fell {:.1}% ({ra:.4} -> {rb:.4})",
                (ra - rb) / ra * 100.0
            ));
        }
    }
    let delay = |m: &BTreeMap<String, f64>| -> Option<f64> {
        let total = run_total(m, "total_delay_secs")?;
        let satisfied = run_total(m, "queries_satisfied")?;
        (satisfied > 0.0).then(|| total / satisfied)
    };
    if let (Some(da), Some(db)) = (delay(a), delay(b)) {
        if da > 0.0 && db > da * (1.0 + t) {
            out.push(format!(
                "mean delay rose {:.1}% ({da:.0}s -> {db:.0}s)",
                (db - da) / da * 100.0
            ));
        }
    }
    if let (Some(ba), Some(bb)) = (
        run_total(a, "bytes_transmitted"),
        run_total(b, "bytes_transmitted"),
    ) {
        if ba > 0.0 && bb > ba * (1.0 + t) {
            out.push(format!(
                "bytes on the wire rose {:.1}% ({ba:.0} -> {bb:.0})",
                (bb - ba) / ba * 100.0
            ));
        }
    }
    out
}

/// Gate direction for one bench-document key, by naming convention.
fn bench_direction(key: &str) -> Option<bool> {
    // `true` = lower is better.
    let last = key.rsplit('.').next().unwrap_or(key);
    if last.ends_with("_ns")
        || last.ends_with("_secs")
        || last == "peak_rss_bytes"
        || last.ends_with("wall_secs")
    {
        Some(true)
    } else if last.ends_with("per_sec")
        || last.contains("success_ratio")
        || last.contains("speedup")
        || last.contains("hit")
    {
        Some(false)
    } else {
        None
    }
}

/// Keys carrying a determinism contract rather than a performance
/// number: `_exact` counts and `_checksum` digests must reproduce
/// bit-identically, so any drift — or the key vanishing from the
/// candidate — is a regression regardless of threshold.
fn bench_exactness(key: &str) -> bool {
    let last = key.rsplit('.').next().unwrap_or(key);
    last.ends_with("_exact") || last.ends_with("_checksum")
}

fn bench_regressions(
    a: &BTreeMap<String, f64>,
    b: &BTreeMap<String, f64>,
    threshold_pct: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    let t = threshold_pct / 100.0;
    for (key, &va) in a {
        if bench_exactness(key) {
            match b.get(key) {
                None => out.push(format!(
                    "missing exact key: {key} present in baseline but absent from candidate"
                )),
                Some(&vb) if vb != va => {
                    out.push(format!("exact key {key} changed ({va} -> {vb})"));
                }
                Some(_) => {}
            }
            continue;
        }
        let Some(&vb) = b.get(key) else { continue };
        let Some(lower_better) = bench_direction(key) else {
            continue;
        };
        if va == 0.0 {
            continue;
        }
        let worse = if lower_better {
            vb > va * (1.0 + t)
        } else {
            vb < va * (1.0 - t)
        };
        if worse {
            out.push(format!(
                "{key} {} {:.1}% ({va} -> {vb})",
                if lower_better { "rose" } else { "fell" },
                ((vb - va) / va * 100.0).abs()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::{observe_figure, write_jsonl};

    fn capture(seed: u64) -> String {
        let run = observe_figure("fig10", 0.02, seed).expect("known figure");
        let mut buf = Vec::new();
        write_jsonl(&run, &mut buf).expect("in-memory write");
        String::from_utf8(buf).expect("utf8")
    }

    #[test]
    fn run_against_itself_is_clean() {
        let a = capture(7);
        let report = compare_strings(&a, "a", &a, "b", 5.0).expect("same format");
        assert_eq!(report.mode, "jsonl");
        assert!(report.aligned > 10, "capture produced series");
        assert!(report.rows.is_empty(), "{:?}", report.rows);
        assert!(report.only_a.is_empty() && report.only_b.is_empty());
        assert!(!report.has_regressions());
        assert!(report.render().contains("verdict: OK"));
    }

    #[test]
    fn different_seeds_produce_window_deltas() {
        let report = compare_strings(&capture(7), "a", &capture(8), "b", 5.0).expect("same format");
        assert!(!report.rows.is_empty(), "seeds diverge somewhere");
        assert!(
            report.rows.iter().any(|r| r.key.starts_with("window[")),
            "no per-window delta in {:?}",
            report.rows
        );
        assert!(report.render().contains("window["));
    }

    #[test]
    fn success_ratio_drop_is_gated() {
        let a = "{\"type\":\"run\",\"schema\":\"dtn-observe/2\",\"queries_issued\":100,\"queries_satisfied\":80,\"total_delay_secs\":800}\n{\"type\":\"footer\",\"queries_issued\":100,\"queries_satisfied\":80,\"total_delay_secs\":800,\"bytes_transmitted\":1000}\n";
        let b = "{\"type\":\"run\",\"schema\":\"dtn-observe/2\",\"queries_issued\":100,\"queries_satisfied\":60,\"total_delay_secs\":800}\n{\"type\":\"footer\",\"queries_issued\":100,\"queries_satisfied\":60,\"total_delay_secs\":800,\"bytes_transmitted\":1000}\n";
        let report = compare_strings(a, "a", b, "b", 5.0).expect("same format");
        assert!(report.has_regressions());
        assert!(report.regressions[0].contains("success ratio"));
        // The same drop passes under a liberal threshold.
        let loose = compare_strings(a, "a", b, "b", 50.0).expect("same format");
        assert!(!loose.has_regressions());
        // And the improvement direction never gates.
        let gain = compare_strings(b, "b", a, "a", 5.0).expect("same format");
        assert!(!gain.has_regressions());
    }

    #[test]
    fn bench_documents_gate_by_key_direction() {
        let a = "{\"results\": {\"fig\": {\"optimized_ns\": 100000, \"speedup\": 3.5, \"note\": \"x\"}}}";
        let slower = "{\"results\": {\"fig\": {\"optimized_ns\": 120000, \"speedup\": 3.5, \"note\": \"x\"}}}";
        let report = compare_strings(a, "a", slower, "b", 5.0).expect("bench mode");
        assert_eq!(report.mode, "bench");
        assert!(report.has_regressions(), "{report:?}");
        assert!(report.regressions[0].contains("optimized_ns"));
        let faster = "{\"results\": {\"fig\": {\"optimized_ns\": 80000, \"speedup\": 4.4, \"note\": \"x\"}}}";
        let ok = compare_strings(a, "a", faster, "b", 5.0).expect("bench mode");
        assert!(!ok.has_regressions(), "{ok:?}");
        assert_eq!(ok.rows.len(), 2, "both numeric leaves moved");
    }

    #[test]
    fn exact_keys_gate_on_any_change_and_on_loss() {
        let a = "{\"results\": {\"serve\": {\"decisions_exact\": 400, \"decision_checksum\": 123456, \"p99_service_ns\": 5000}}}";
        // Threshold-sized drift in an `_exact` key still regresses.
        let drifted = "{\"results\": {\"serve\": {\"decisions_exact\": 401, \"decision_checksum\": 123456, \"p99_service_ns\": 5000}}}";
        let report = compare_strings(a, "a", drifted, "b", 50.0).expect("bench mode");
        assert!(report.has_regressions(), "{report:?}");
        assert!(report.regressions[0].contains("decisions_exact"));
        // A checksum flip regresses even though the key has no
        // performance direction.
        let flipped = "{\"results\": {\"serve\": {\"decisions_exact\": 400, \"decision_checksum\": 999, \"p99_service_ns\": 5000}}}";
        let report = compare_strings(a, "a", flipped, "b", 50.0).expect("bench mode");
        assert!(report.has_regressions(), "{report:?}");
        assert!(report.regressions[0].contains("decision_checksum"));
        // Losing the key entirely regresses too (a plain perf key would
        // just be skipped).
        let lost = "{\"results\": {\"serve\": {\"p99_service_ns\": 5000}}}";
        let report = compare_strings(a, "a", lost, "b", 50.0).expect("bench mode");
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.contains("missing exact key") && r.contains("decisions_exact")),
            "{:?}",
            report.regressions
        );
        // Identical documents stay clean.
        let clean = compare_strings(a, "a", a, "b", 50.0).expect("bench mode");
        assert!(!clean.has_regressions(), "{clean:?}");
    }

    #[test]
    fn mixed_formats_are_an_error() {
        let bench = "{\"results\": {\"x\": 1}}";
        let jsonl =
            "{\"type\":\"run\",\"queries_issued\":1}\n{\"type\":\"footer\",\"queries_issued\":1}\n";
        assert!(compare_strings(bench, "a", jsonl, "b", 5.0).is_err());
    }

    #[test]
    fn truncated_capture_missing_gated_series_fails() {
        let full = "{\"type\":\"run\",\"schema\":\"dtn-observe/2\",\"queries_issued\":100,\"queries_satisfied\":80,\"total_delay_secs\":800}\n{\"type\":\"footer\",\"queries_issued\":100,\"queries_satisfied\":80,\"total_delay_secs\":800,\"bytes_transmitted\":1000}\n";
        // The candidate capture was cut off before its footer: the
        // header still carries ratio/delay totals (so those gates run
        // and pass), but `bytes_transmitted` exists nowhere in the
        // file. Before the missing-series gate this compared clean.
        let truncated = "{\"type\":\"run\",\"schema\":\"dtn-observe/2\",\"queries_issued\":100,\"queries_satisfied\":80,\"total_delay_secs\":800}\n{\"type\":\"event\",\"kind\":\"x\",\"at\":1}\n";
        let report = compare_strings(full, "a", truncated, "b", 5.0).expect("same format");
        assert!(report.has_regressions(), "{report:?}");
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.contains("missing gated series") && r.contains("bytes_transmitted")),
            "{:?}",
            report.regressions
        );
        assert!(report.render().contains("verdict: REGRESSED"));
        // Absent on both sides is a legacy capture pair, not a loss.
        let pair = compare_strings(truncated, "a", truncated, "b", 5.0).expect("same format");
        assert!(!pair.has_regressions(), "{:?}", pair.regressions);
        // A series the candidate *gained* never gates either.
        let gained = compare_strings(truncated, "a", full, "b", 5.0).expect("same format");
        assert!(!gained.has_regressions(), "{:?}", gained.regressions);
    }

    #[test]
    fn legacy_headers_without_footer_still_gate() {
        // dtn-observe/1 captures had no footer; the gates fall back to
        // the header totals.
        let a = "{\"type\":\"run\",\"queries_issued\":50,\"queries_satisfied\":40,\"total_delay_secs\":100}\n{\"type\":\"event\",\"kind\":\"x\",\"at\":1}\n";
        let b = "{\"type\":\"run\",\"queries_issued\":50,\"queries_satisfied\":20,\"total_delay_secs\":100}\n{\"type\":\"event\",\"kind\":\"x\",\"at\":1}\n";
        let report = compare_strings(a, "a", b, "b", 5.0).expect("same format");
        assert!(report.has_regressions());
    }
}
