//! City-scale streaming benchmark: one end-to-end cooperative-caching
//! run at 10⁴–10⁶ nodes without ever materialising the contact trace.
//!
//! The harness mirrors `run_experiment`'s §VI-A protocol (warm-up →
//! NCL selection → workload → metrics) but swaps every dense component
//! for its streaming / sparse counterpart:
//!
//! - contacts come from [`SyntheticTraceBuilder::stream`] through a
//!   [`StreamSource`] — peak memory holds per-pair generator state, not
//!   the contact vector;
//! - NCL selection runs community-scoped
//!   ([`SelectionStrategy::CommunityPathMetric`]) over the CSR graph;
//! - the path oracle runs in bounded-reach mode
//!   (`IntentionalConfig::bounded_reach`), so no `O(N)` distance table
//!   is ever built;
//! - the workload is constructed directly as [`WorkloadEvent`]s —
//!   `Workload::generate`'s per-epoch × per-node Bernoulli sweep is
//!   `O(epochs · N)` and would dominate a 100k-node run.
//!
//! Reported numbers (contacts/sec, peak RSS) feed `BENCH_scale.json`;
//! the `experiments scale` subcommand drives it from the command line.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dtn_cache::intentional::{IntentionalConfig, IntentionalScheme};
use dtn_cache::{CachingScheme, NetworkSetup, SchemeKind};
use dtn_core::ids::{DataId, NodeId};
use dtn_core::ncl::SelectionStrategy;
use dtn_core::time::{Duration, Time};
use dtn_sim::engine::{SimConfig, Simulator, StreamSource, WorkloadEvent};
use dtn_sim::message::DataItem;
use dtn_sim::probe::{ParallelCounters, RecordingProbe, TeeProbe};
use dtn_sim::telemetry::{Telemetry, TelemetryConfig};
use dtn_trace::synthetic::SyntheticTraceBuilder;

use dtn_core::sys::peak_rss_bytes;

use crate::observe::{ObserveRun, TIMELINE_WINDOWS};

/// All knobs of one city-scale run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Population size.
    pub nodes: usize,
    /// Trace duration; the first half is warm-up.
    pub duration: Duration,
    /// Calibration target for the total contact count.
    pub target_contacts: u64,
    /// Community count of the synthetic population.
    pub communities: usize,
    /// Intra-community contact boost.
    pub community_boost: f64,
    /// Mean contact-graph degree; sets the builder's `edge_density` to
    /// `degree / (nodes - 1)` so the kept-pair count stays `O(N)`
    /// instead of `O(N²)`.
    pub mean_degree: f64,
    /// Number of NCLs `K`.
    pub ncl_count: usize,
    /// Data items generated in the measurement phase.
    pub data_items: usize,
    /// Queries issued in the measurement phase.
    pub queries: usize,
    /// Data size in bytes (fixed — this benchmark stresses the event
    /// loop, not the buffer economy).
    pub data_size: u64,
    /// Data lifetime; the query constraint is half of it.
    pub data_lifetime: Duration,
    /// Per-node buffer capacity range in bytes.
    pub buffer_range: (u64, u64),
    /// Hop bound for NCL selection sweeps and the bounded-reach oracle.
    pub max_hops: usize,
    /// Slots of the oracle's direct-mapped sparse-reach cache.
    pub reach_cache_slots: usize,
    /// Seed for trace, buffers, workload, and protocol randomness.
    pub seed: u64,
    /// Run the full invariant audit after every contact (the audited
    /// mid-size configuration; far too slow for 100k nodes).
    pub audit: bool,
    /// Worker threads for the engine's windowed parallel executor
    /// (`SimConfig::threads`); 1 keeps the classic serial loop.
    pub threads: usize,
    /// Install a counters-only probe and report per-window batch
    /// statistics (exploitable parallelism). Symmetric overhead: the
    /// probe is installed at every thread count so scaling curves stay
    /// comparable.
    pub batch_stats: bool,
    /// Print an engine heartbeat to stderr every N contacts (contacts/s,
    /// peak RSS, ETA). City runs at 10⁵–10⁶ nodes take minutes; the
    /// heartbeat is the only sign of life before the report prints.
    pub heartbeat_every_contacts: Option<u64>,
}

impl ScaleConfig {
    /// A city-scale population: clustered communities, sparse contact
    /// graph (mean degree 12), ~25 contacts per node over two days, and
    /// a workload sized so protocol work scales with the population
    /// without drowning the contact loop.
    pub fn city(nodes: usize) -> Self {
        ScaleConfig {
            nodes,
            duration: Duration::days(2),
            target_contacts: 25 * nodes as u64,
            communities: (nodes / 500).clamp(4, 4096),
            community_boost: 6.0,
            mean_degree: 12.0,
            ncl_count: 8,
            data_items: (nodes / 100).clamp(64, 1024),
            queries: (nodes / 50).clamp(128, 2048),
            data_size: 1 << 20,
            data_lifetime: Duration::hours(12),
            buffer_range: (8 << 20, 16 << 20),
            max_hops: 3,
            // One slot per node: the direct-mapped cache (`source % slots`)
            // becomes collision-free, so each source's bounded reach is
            // computed once per snapshot epoch instead of once per
            // forwarding decision. Memory stays O(active sources · reach).
            reach_cache_slots: nodes,
            seed: 42,
            audit: false,
            threads: 1,
            batch_stats: false,
            // Silent below half a million contacts: smokes and tests
            // finish before the first beat would fire.
            heartbeat_every_contacts: Some(500_000),
        }
    }

    /// Thins a configuration to completion-smoke density (~5 contacts
    /// per node, capped workload) — the 1M-node recipe.
    pub fn smoke(mut self) -> Self {
        self.target_contacts = 5 * self.nodes as u64;
        self.mean_degree = 8.0;
        self.data_items = self.data_items.min(128);
        self.queries = self.queries.min(256);
        self
    }

    fn builder(&self) -> SyntheticTraceBuilder {
        SyntheticTraceBuilder::new(self.nodes)
            .duration(self.duration)
            .target_contacts(self.target_contacts)
            .communities(self.communities)
            .community_boost(self.community_boost)
            .edge_density((self.mean_degree / (self.nodes - 1) as f64).min(1.0))
            .seed(self.seed)
    }
}

/// Outcome of one city-scale run.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Population size.
    pub nodes: usize,
    /// Contacts actually streamed through the engine.
    pub contacts: u64,
    /// Wall-clock seconds of the warm-up half (streaming generation +
    /// rate accumulation + scheme contact hooks).
    pub warmup_secs: f64,
    /// Wall-clock seconds of NCL selection + scheme configuration.
    pub configure_secs: f64,
    /// Wall-clock seconds of the measured half (workload + contacts).
    pub measured_secs: f64,
    /// Contacts per second over the whole event loop (excluding
    /// configuration).
    pub contacts_per_sec: f64,
    /// Process peak RSS after the run, bytes (0 off Linux).
    pub peak_rss_bytes: u64,
    /// Queries issued.
    pub queries_issued: u64,
    /// Fraction of queries satisfied in time.
    pub success_ratio: f64,
    /// NCLs selected at configuration.
    pub central_nodes: usize,
    /// `(sweeps, violations)` when the invariant audit ran.
    pub audit: Option<(u64, u64)>,
    /// Engine worker threads this run used.
    pub threads: usize,
    /// Per-window batch statistics when `ScaleConfig::batch_stats` was
    /// on (all zero in a serial run — no windows form).
    pub parallel: Option<ParallelCounters>,
}

impl ScaleReport {
    /// Renders the report as one pretty-printed JSON object (the
    /// repository carries no serde; the format is a hand-rolled
    /// stable mapping used by `BENCH_scale.json`).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let audit = match self.audit {
            Some((sweeps, violations)) => {
                format!("{{ \"sweeps\": {sweeps}, \"violations\": {violations} }}")
            }
            None => "null".to_string(),
        };
        let parallel = match &self.parallel {
            Some(p) => format!(
                "{{ \"windows\": {}, \"contacts\": {}, \"batches\": {}, \"widest\": {}, \
                 \"mean_batch_width\": {:.3}, \"conflict_rate\": {:.4} }}",
                p.windows,
                p.contacts,
                p.batches,
                p.widest,
                p.mean_batch_width(),
                p.conflict_rate(),
            ),
            None => "null".to_string(),
        };
        format!(
            "{pad}{{\n\
             {pad}  \"nodes\": {},\n\
             {pad}  \"contacts\": {},\n\
             {pad}  \"warmup_secs\": {:.3},\n\
             {pad}  \"configure_secs\": {:.3},\n\
             {pad}  \"measured_secs\": {:.3},\n\
             {pad}  \"contacts_per_sec\": {:.0},\n\
             {pad}  \"peak_rss_bytes\": {},\n\
             {pad}  \"queries_issued\": {},\n\
             {pad}  \"success_ratio\": {:.4},\n\
             {pad}  \"central_nodes\": {},\n\
             {pad}  \"threads\": {},\n\
             {pad}  \"parallel\": {parallel},\n\
             {pad}  \"audit\": {audit}\n\
             {pad}}}",
            self.nodes,
            self.contacts,
            self.warmup_secs,
            self.configure_secs,
            self.measured_secs,
            self.contacts_per_sec,
            self.peak_rss_bytes,
            self.queries_issued,
            self.success_ratio,
            self.central_nodes,
            self.threads,
        )
    }
}

/// Builds the measurement-phase workload directly as events: item
/// generations uniform over the first half of the window, queries with
/// a squared-uniform skew toward low item ids (a cheap Zipf stand-in)
/// at times after their item exists.
fn scale_workload(cfg: &ScaleConfig, start: Time, end: Time) -> Vec<WorkloadEvent> {
    assert!(end.0 > start.0 + 1, "workload window too small");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x0005_CA1E_D017);
    let span = end.0 - start.0;
    let nodes = cfg.nodes as u32;
    let mut item_times = Vec::with_capacity(cfg.data_items);
    let mut events = Vec::with_capacity(cfg.data_items + cfg.queries);
    for i in 0..cfg.data_items {
        let at = Time(start.0 + rng.gen_range(0..span / 2));
        let item = DataItem::new(
            DataId(i as u64),
            NodeId(rng.gen_range(0..nodes)),
            cfg.data_size.max(1),
            at,
            cfg.data_lifetime,
        );
        item_times.push(at);
        events.push(WorkloadEvent::GenerateData { item });
    }
    for _ in 0..cfg.queries {
        let u: f64 = rng.gen_range(0.0..1.0);
        let j = (((u * u) * cfg.data_items as f64) as usize).min(cfg.data_items - 1);
        let created = item_times[j];
        if created.0 + 1 >= end.0 {
            continue;
        }
        events.push(WorkloadEvent::IssueQuery {
            at: Time(rng.gen_range(created.0 + 1..end.0)),
            requester: NodeId(rng.gen_range(0..nodes)),
            data: DataId(j as u64),
            constraint: Duration((cfg.data_lifetime.as_secs() / 2).max(1)),
        });
    }
    // Same ordering contract as `Workload::generate`: by time, items
    // before queries at equal instants.
    events.sort_by_key(|e| (e.at(), matches!(e, WorkloadEvent::IssueQuery { .. })));
    events
}

/// Runs one city-scale experiment end to end and reports throughput
/// and memory. Panics on configuration errors (fewer than two nodes,
/// zero NCLs) — this is a benchmark harness, not a library API.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleReport {
    run_scale_observed(cfg, false).0
}

/// [`run_scale`] with optional full instrumentation: when `observe` is
/// on, a recording probe + windowed [`Telemetry`] tee and the phase
/// profiler ride along and come back as an [`ObserveRun`] next to the
/// throughput report. Unlike the figure captures, the telemetry spans
/// the *whole* run from t=0 — warm-up visibility is what a streaming
/// timeline is for.
pub fn run_scale_observed(cfg: &ScaleConfig, observe: bool) -> (ScaleReport, Option<ObserveRun>) {
    let contacts_seen = Rc::new(Cell::new(0u64));
    let counter = Rc::clone(&contacts_seen);
    let stream = cfg.builder().stream();
    let (nodes, duration) = (stream.node_count(), stream.duration());
    let source = StreamSource::new(
        stream.inspect(move |_| counter.set(counter.get() + 1)),
        nodes,
        duration,
    );
    let scheme: Box<dyn CachingScheme> = Box::new(IntentionalScheme::new(IntentionalConfig {
        ncl_count: cfg.ncl_count,
        ncl_selection: SelectionStrategy::CommunityPathMetric {
            max_hops: Some(cfg.max_hops),
        },
        bounded_reach: Some((cfg.max_hops, cfg.reach_cache_slots)),
        ..IntentionalConfig::default()
    }));
    let mut sim = Simulator::from_source(
        source,
        scheme,
        SimConfig {
            buffer_range: cfg.buffer_range,
            audit: cfg.audit,
            seed: cfg.seed,
            threads: cfg.threads,
            profile: observe,
            heartbeat_every_contacts: cfg.heartbeat_every_contacts,
            ..SimConfig::default()
        },
    );
    // Observed runs keep the full event stream (the JSONL export needs
    // it); batch-stats-only runs stay counters-only so the probe cost
    // is symmetric across thread counts.
    let recorder = (cfg.batch_stats || observe).then(|| {
        Rc::new(RefCell::new(if observe {
            RecordingProbe::new()
        } else {
            RecordingProbe::new().without_event_stream()
        }))
    });
    let telemetry = observe.then(|| {
        Rc::new(RefCell::new(Telemetry::new(&TelemetryConfig::spanning(
            Time(0),
            cfg.duration,
            TIMELINE_WINDOWS,
            cfg.ncl_count,
        ))))
    });
    match (&recorder, &telemetry) {
        (Some(r), Some(t)) => sim.set_probe(Box::new(TeeProbe::new(
            Box::new(Rc::clone(r)),
            Box::new(Rc::clone(t)),
        ))),
        (Some(r), None) => sim.set_probe(Box::new(Rc::clone(r))),
        _ => {}
    }

    // Phase 1: warm-up over the first half of the stream.
    let started = Instant::now();
    let mid = Time(cfg.duration.as_secs() / 2);
    sim.run_until(mid);
    let warmup_secs = started.elapsed().as_secs_f64();

    // Phase 2: community-scoped NCL selection from accumulated rates.
    let configure_started = Instant::now();
    let capacities: Vec<u64> = (0..cfg.nodes as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    let setup = NetworkSetup {
        rate_table: &rate_table,
        now: mid,
        capacities,
        horizon: cfg.data_lifetime.as_secs_f64().max(3600.0),
        // Every snapshot rebuild invalidates all ~N cached reaches, and
        // recomputing them (not the contact loop itself) dominates the
        // measured phase. Pin the wall-clock refresh to the whole trace:
        // the oracle's generation-doubling rule still rebuilds when the
        // observed contact count doubles, which bounds staleness the way
        // §III-B's "rates remain relatively constant" assumes.
        path_refresh: Some(cfg.duration),
    };
    sim.scheme_mut().configure(&setup);
    drop(rate_table);
    let central_nodes = sim.scheme().central_nodes().len();
    let configure_secs = configure_started.elapsed().as_secs_f64();

    // Phase 3: direct workload over the second half.
    let measured_started = Instant::now();
    sim.add_workload(scale_workload(cfg, mid, Time(cfg.duration.as_secs())));
    sim.run_to_end();
    let measured_secs = measured_started.elapsed().as_secs_f64();

    if recorder.is_some() {
        drop(sim.take_probe());
    }
    let probe = recorder.map(|r| {
        Rc::try_unwrap(r)
            .expect("engine returned its probe handle")
            .into_inner()
    });
    // `parallel` keeps its batch-stats-only meaning: an observed serial
    // run reports `null` there exactly like before.
    let parallel = if cfg.batch_stats {
        probe.as_ref().map(RecordingProbe::parallel_counters)
    } else {
        None
    };
    let metrics = sim.metrics().clone();
    let contacts = contacts_seen.get();
    let loop_secs = warmup_secs + measured_secs;
    let report = ScaleReport {
        nodes: cfg.nodes,
        contacts,
        warmup_secs,
        configure_secs,
        measured_secs,
        contacts_per_sec: if loop_secs > 0.0 {
            contacts as f64 / loop_secs
        } else {
            0.0
        },
        peak_rss_bytes: peak_rss_bytes(),
        queries_issued: metrics.queries_issued,
        success_ratio: metrics.success_ratio(),
        central_nodes,
        audit: sim
            .audit_report()
            .map(|r| (r.sweeps(), r.violations_total())),
        threads: cfg.threads,
        parallel,
    };
    let observed = observe.then(|| ObserveRun {
        figure: "scale".to_string(),
        scheme: SchemeKind::Intentional,
        seed: cfg.seed,
        metrics,
        probe: probe.expect("observe installs the recorder"),
        telemetry: Rc::try_unwrap(telemetry.expect("observe installs the telemetry"))
            .expect("engine returned its telemetry handle")
            .into_inner(),
        profile: sim.profile_report(),
        central_nodes: sim.scheme().central_nodes().to_vec(),
        ncl_query_load: sim.scheme().ncl_query_load().to_vec(),
    });
    (report, observed)
}

/// The instrumented city smoke behind `observe scale` / `timeline
/// scale`: a 2 000-node city at full density, telemetry from t=0, batch
/// stats whenever the run is threaded.
pub fn observe_city_smoke(seed: u64, threads: usize) -> ObserveRun {
    let cfg = ScaleConfig {
        seed,
        threads,
        batch_stats: threads > 1,
        ..ScaleConfig::city(2_000)
    };
    run_scale_observed(&cfg, true).1.expect("observe requested")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            data_items: 48,
            queries: 96,
            ..ScaleConfig::city(400)
        }
    }

    #[test]
    fn tiny_city_runs_end_to_end() {
        let report = run_scale(&tiny());
        assert_eq!(report.nodes, 400);
        assert!(report.contacts > 1_000, "too few contacts streamed");
        assert!(report.queries_issued > 0);
        assert!((0.0..=1.0).contains(&report.success_ratio));
        assert_eq!(report.central_nodes, 8);
        assert!(report.contacts_per_sec > 0.0);
        assert!(report.audit.is_none());
    }

    #[test]
    fn audited_run_is_clean() {
        let cfg = ScaleConfig {
            audit: true,
            ..tiny()
        };
        let report = run_scale(&cfg);
        let (sweeps, violations) = report.audit.expect("audit was enabled");
        assert!(sweeps > 0, "audit never swept");
        assert_eq!(violations, 0, "invariant violations at scale");
    }

    #[test]
    fn report_renders_as_json() {
        let report = run_scale(&tiny());
        let json = report.to_json(2);
        assert!(json.contains("\"contacts_per_sec\""));
        assert!(json.contains("\"peak_rss_bytes\""));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"parallel\": null"));
        assert!(json.trim_start().starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn parallel_city_run_matches_serial_and_reports_batches() {
        let serial = run_scale(&tiny());
        let parallel = run_scale(&ScaleConfig {
            threads: 4,
            batch_stats: true,
            ..tiny()
        });
        // Deterministic equivalence surfaces through every outcome the
        // report carries.
        assert_eq!(serial.contacts, parallel.contacts);
        assert_eq!(serial.queries_issued, parallel.queries_issued);
        assert_eq!(
            serial.success_ratio.to_bits(),
            parallel.success_ratio.to_bits()
        );
        assert_eq!(serial.central_nodes, parallel.central_nodes);
        let counters = parallel.parallel.expect("batch stats requested");
        assert!(counters.windows > 0, "no windows formed at city density");
        assert!(counters.contacts <= parallel.contacts);
        assert!(counters.mean_batch_width() >= 1.0);
        let json = parallel.to_json(2);
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"mean_batch_width\""));
    }

    #[test]
    fn observed_run_tees_telemetry_and_profile() {
        let (report, observed) = run_scale_observed(&tiny(), true);
        let run = observed.expect("observe requested");
        assert_eq!(run.figure, "scale");
        assert_eq!(report.queries_issued, run.metrics.queries_issued);
        // The capture spans the whole run from t=0, warm-up included:
        // every contact the engine processed is in some window.
        assert_eq!(run.telemetry.origin(), Time(0));
        let totals = run.telemetry.totals();
        assert!(totals.contacts > 0);
        assert_eq!(totals.contacts, run.probe.count("contact_begin"));
        assert_eq!(totals.queries_issued, run.metrics.queries_issued);
        assert!(run.profile.as_ref().is_some_and(|p| p.total_ns() > 0));
        // `parallel` keeps its batch-stats-only meaning under observe.
        assert!(report.parallel.is_none());
        // The plain runner reports identical throughput-facing outcomes.
        let plain = run_scale(&tiny());
        assert_eq!(plain.contacts, report.contacts);
        assert_eq!(plain.queries_issued, report.queries_issued);
        assert_eq!(
            plain.success_ratio.to_bits(),
            report.success_ratio.to_bits()
        );
    }

    #[test]
    fn smoke_preset_thins_the_run() {
        let city = ScaleConfig::city(10_000);
        let smoke = ScaleConfig::city(10_000).smoke();
        assert!(smoke.target_contacts < city.target_contacts);
        assert!(smoke.queries <= city.queries);
    }

    #[test]
    fn workload_is_time_ordered_and_in_window() {
        let cfg = tiny();
        let events = scale_workload(&cfg, Time(1_000), Time(50_000));
        assert!(!events.is_empty());
        let mut last = Time(0);
        for e in &events {
            assert!(e.at() >= last, "workload out of order");
            assert!((1_000..50_000).contains(&e.at().0));
            last = e.at();
        }
    }
}
