//! Multi-seed experiment execution with thread fan-out.
//!
//! "Each simulation is repeated multiple times with randomly generated
//! data and queries for statistical convergence" (§VI) — [`averaged_run`]
//! runs one (trace, scheme, config) point across several seeds in
//! parallel threads and averages the three evaluation metrics.

use dtn_cache::experiment::{run_experiment, ExperimentConfig};
use dtn_cache::SchemeKind;
use dtn_trace::trace::ContactTrace;

/// Seed-averaged metrics for one experiment point.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedReport {
    /// The scheme that ran.
    pub scheme: SchemeKind,
    /// Mean successful ratio across seeds.
    pub success_ratio: f64,
    /// Mean data access delay (hours) across seeds.
    pub avg_delay_hours: f64,
    /// Mean caching overhead (copies per item) across seeds.
    pub avg_copies_per_item: f64,
    /// Mean replacement operations per item across seeds.
    pub avg_replacements_per_item: f64,
    /// Mean queries issued per seed.
    pub queries_issued: f64,
    /// Mean bytes transmitted per satisfied query.
    pub bytes_per_satisfied_query: f64,
    /// Number of seeds averaged.
    pub seeds: u32,
}

/// Runs `seeds` independent repetitions on separate threads and
/// averages the metrics.
///
/// # Panics
///
/// Panics if `seeds == 0` or a worker thread panics.
pub fn averaged_run(
    trace: &ContactTrace,
    scheme: SchemeKind,
    config: &ExperimentConfig,
    seeds: u32,
) -> AveragedReport {
    assert!(seeds > 0, "need at least one seed");
    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..seeds)
            .map(|seed| {
                scope.spawn(move || run_experiment(trace, scheme, config, u64::from(seed) + 1))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    });
    let n = seeds as f64;
    AveragedReport {
        scheme,
        success_ratio: reports.iter().map(|r| r.success_ratio).sum::<f64>() / n,
        avg_delay_hours: reports.iter().map(|r| r.avg_delay_hours).sum::<f64>() / n,
        avg_copies_per_item: reports.iter().map(|r| r.avg_copies_per_item).sum::<f64>() / n,
        avg_replacements_per_item: reports
            .iter()
            .map(|r| r.avg_replacements_per_item)
            .sum::<f64>()
            / n,
        queries_issued: reports.iter().map(|r| r.queries_issued as f64).sum::<f64>() / n,
        bytes_per_satisfied_query: reports
            .iter()
            .map(|r| r.bytes_per_satisfied_query)
            .sum::<f64>()
            / n,
        seeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::time::Duration;
    use dtn_trace::synthetic::SyntheticTraceBuilder;

    #[test]
    fn averages_over_seeds() {
        let trace = SyntheticTraceBuilder::new(12)
            .duration(Duration::days(1))
            .target_contacts(2_000)
            .seed(3)
            .build();
        let cfg = ExperimentConfig {
            ncl_count: 2,
            mean_data_lifetime: Duration::hours(6),
            mean_data_size: 1 << 20,
            buffer_range: (8 << 20, 16 << 20),
            ..ExperimentConfig::default()
        };
        let avg = averaged_run(&trace, SchemeKind::Intentional, &cfg, 2);
        assert_eq!(avg.seeds, 2);
        assert!((0.0..=1.0).contains(&avg.success_ratio));
        assert!(avg.queries_issued > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_panics() {
        let trace = SyntheticTraceBuilder::new(4).seed(1).build();
        let _ = averaged_run(&trace, SchemeKind::NoCache, &ExperimentConfig::default(), 0);
    }
}
