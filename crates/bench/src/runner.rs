//! Multi-seed experiment execution with deterministic parallel fan-out.
//!
//! "Each simulation is repeated multiple times with randomly generated
//! data and queries for statistical convergence" (§VI). A figure is a
//! sweep: a list of parameter points, each repeated over several seeds.
//! [`averaged_sweep`] flattens the whole (point × seed) grid into one
//! job list and fans it out over [`dtn_core::par::map_slice`], which is
//! order-preserving — so the per-point aggregation below consumes seed
//! results in exactly the order a serial loop would produce, and every
//! figure's numbers are independent of thread scheduling. [`averaged_run`]
//! is the single-point convenience wrapper.

use std::time::Instant;

use dtn_cache::experiment::{run_experiment, ExperimentConfig, ExperimentReport};
use dtn_cache::SchemeKind;
use dtn_core::par::map_slice;
use dtn_trace::trace::ContactTrace;

/// One parameter point of a figure sweep: a scheme and configuration to
/// repeat over seeds on a (shared) trace.
#[derive(Debug, Clone)]
pub struct SweepPoint<'a> {
    /// The contact trace to simulate on.
    pub trace: &'a ContactTrace,
    /// Which scheme runs.
    pub scheme: SchemeKind,
    /// The experiment configuration of this point.
    pub config: ExperimentConfig,
}

/// Peak resident set size of this process in bytes — re-exported from
/// the shared [`dtn_core::sys`] sampler so existing bench call sites
/// keep their import path.
pub use dtn_core::sys::peak_rss_bytes;

/// Wall-clock accounting for one sweep point, summed across its seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct PointTiming {
    /// Simulation events processed: contacts in the trace plus data
    /// items generated plus queries issued, summed over all seeds.
    pub events: u64,
    /// Total busy time across the point's seed runs (CPU-side wall
    /// time; seeds may have run concurrently, so this can exceed the
    /// elapsed wall clock of the sweep).
    pub busy: std::time::Duration,
    /// Process peak RSS ([`peak_rss_bytes`]) sampled when the point's
    /// seeds finished — an upper bound on the point's memory footprint
    /// (0 where the platform exposes no high-water mark).
    pub peak_rss_bytes: u64,
}

impl PointTiming {
    /// Simulation events processed per busy second — the `--timing`
    /// throughput figure of `bench/bin/experiments`.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// Seed-averaged metrics for one experiment point.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedReport {
    /// The scheme that ran.
    pub scheme: SchemeKind,
    /// Mean successful ratio across seeds.
    pub success_ratio: f64,
    /// Mean data access delay (hours) across seeds.
    pub avg_delay_hours: f64,
    /// Mean caching overhead (copies per item) across seeds.
    pub avg_copies_per_item: f64,
    /// Mean replacement operations per item across seeds.
    pub avg_replacements_per_item: f64,
    /// Mean queries issued per seed.
    pub queries_issued: f64,
    /// Mean bytes transmitted per satisfied query.
    pub bytes_per_satisfied_query: f64,
    /// Number of seeds averaged.
    pub seeds: u32,
}

fn aggregate(
    point: &SweepPoint<'_>,
    runs: &[(ExperimentReport, std::time::Duration)],
    seeds: u32,
) -> (AveragedReport, PointTiming) {
    let n = f64::from(seeds);
    let reports = || runs.iter().map(|(r, _)| r);
    let report = AveragedReport {
        scheme: point.scheme,
        success_ratio: reports().map(|r| r.success_ratio).sum::<f64>() / n,
        avg_delay_hours: reports().map(|r| r.avg_delay_hours).sum::<f64>() / n,
        avg_copies_per_item: reports().map(|r| r.avg_copies_per_item).sum::<f64>() / n,
        avg_replacements_per_item: reports().map(|r| r.avg_replacements_per_item).sum::<f64>() / n,
        queries_issued: reports().map(|r| r.queries_issued as f64).sum::<f64>() / n,
        bytes_per_satisfied_query: reports().map(|r| r.bytes_per_satisfied_query).sum::<f64>() / n,
        seeds,
    };
    let timing = PointTiming {
        events: reports()
            .map(|r| {
                point.trace.contact_count() as u64 + r.metrics.data_generated + r.queries_issued
            })
            .sum(),
        busy: runs.iter().map(|(_, d)| *d).sum(),
        peak_rss_bytes: peak_rss_bytes(),
    };
    (report, timing)
}

/// Runs every sweep point over `seeds` repetitions, fanning the whole
/// (point × seed) grid out in parallel, and returns per-point averaged
/// reports with throughput accounting. Results are in input-point order
/// and identical to a serial nested loop (seed `s` of a point runs with
/// RNG seed `s + 1`, and averages are summed in seed order).
///
/// # Panics
///
/// Panics if `seeds == 0` or a worker panics.
pub fn timed_averaged_sweep(
    points: &[SweepPoint<'_>],
    seeds: u32,
) -> Vec<(AveragedReport, PointTiming)> {
    assert!(seeds > 0, "need at least one seed");
    let jobs: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|p| (0..seeds).map(move |s| (p, u64::from(s) + 1)))
        .collect();
    let runs = map_slice(&jobs, |&(p, seed)| {
        let point = &points[p];
        let start = Instant::now();
        let report = run_experiment(point.trace, point.scheme, &point.config, seed);
        (report, start.elapsed())
    });
    runs.chunks(seeds as usize)
        .zip(points)
        .map(|(chunk, point)| aggregate(point, chunk, seeds))
        .collect()
}

/// [`timed_averaged_sweep`] without the timing accounting.
pub fn averaged_sweep(points: &[SweepPoint<'_>], seeds: u32) -> Vec<AveragedReport> {
    timed_averaged_sweep(points, seeds)
        .into_iter()
        .map(|(report, _)| report)
        .collect()
}

/// Runs one (trace, scheme, config) point across `seeds` repetitions in
/// parallel and averages the metrics.
///
/// # Panics
///
/// Panics if `seeds == 0` or a worker panics.
pub fn averaged_run(
    trace: &ContactTrace,
    scheme: SchemeKind,
    config: &ExperimentConfig,
    seeds: u32,
) -> AveragedReport {
    averaged_sweep(
        &[SweepPoint {
            trace,
            scheme,
            config: config.clone(),
        }],
        seeds,
    )
    .pop()
    .expect("one point in, one report out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::time::Duration;
    use dtn_trace::synthetic::SyntheticTraceBuilder;

    fn small_trace() -> ContactTrace {
        SyntheticTraceBuilder::new(12)
            .duration(Duration::days(1))
            .target_contacts(2_000)
            .seed(3)
            .build()
    }

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            ncl_count: 2,
            mean_data_lifetime: Duration::hours(6),
            mean_data_size: 1 << 20,
            buffer_range: (8 << 20, 16 << 20),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn averages_over_seeds() {
        let trace = small_trace();
        let avg = averaged_run(&trace, SchemeKind::Intentional, &small_config(), 2);
        assert_eq!(avg.seeds, 2);
        assert!((0.0..=1.0).contains(&avg.success_ratio));
        assert!(avg.queries_issued > 0.0);
    }

    #[test]
    fn sweep_matches_individual_runs() {
        // The fanned-out grid must aggregate exactly like per-point
        // averaged_run calls, in input order.
        let trace = small_trace();
        let cfg = small_config();
        let points: Vec<SweepPoint<'_>> = [SchemeKind::NoCache, SchemeKind::Intentional]
            .iter()
            .map(|&scheme| SweepPoint {
                trace: &trace,
                scheme,
                config: cfg.clone(),
            })
            .collect();
        let swept = averaged_sweep(&points, 2);
        assert_eq!(swept.len(), 2);
        for (point, report) in points.iter().zip(&swept) {
            let single = averaged_run(&trace, point.scheme, &point.config, 2);
            assert_eq!(&single, report, "{} diverged", point.scheme);
        }
    }

    #[test]
    fn timing_counts_simulation_events() {
        let trace = small_trace();
        let points = [SweepPoint {
            trace: &trace,
            scheme: SchemeKind::Intentional,
            config: small_config(),
        }];
        let timed = timed_averaged_sweep(&points, 2);
        let (_, timing) = &timed[0];
        // Two seeds → at least two full trace passes worth of contacts.
        assert!(timing.events >= 2 * trace.contact_count() as u64);
        assert!(timing.events_per_sec() > 0.0);
        if cfg!(target_os = "linux") {
            assert!(timing.peak_rss_bytes > 0, "VmHWM should be readable");
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_panics() {
        let trace = SyntheticTraceBuilder::new(4).seed(1).build();
        let _ = averaged_run(&trace, SchemeKind::NoCache, &ExperimentConfig::default(), 0);
    }
}
