//! Randomized invariant fuzzing: the `simcheck` harness.
//!
//! Each seed deterministically derives a full experiment case — trace
//! shape, workload mix, and intentional-scheme configuration — and runs
//! it with [`SimConfig::audit`] enabled and a [`RecordingProbe`]
//! installed. A case fails if any [`AuditLaw`] is violated, if the
//! probe's delay decomposition disagrees with the metrics, or (for
//! cases without epoch re-election) if the optimized
//! [`IntentionalScheme`] diverges from [`ReferenceIntentionalScheme`]
//! in metrics or per-NCL query load.
//!
//! Epoch cases are audited but *not* compared differentially: the
//! reference scheme deliberately keeps its NCLs frozen across epochs,
//! so the two implementations legitimately diverge once a re-election
//! fires.
//!
//! On failure, [`shrink`] greedily reduces the case — drop epochs,
//! shrink the node count, halve contacts/queries/items — while the
//! failure persists, and reports the minimal reproducer.
//!
//! [`SimConfig::audit`]: dtn_sim::engine::SimConfig::audit
//! [`AuditLaw`]: dtn_sim::audit::AuditLaw
//! [`RecordingProbe`]: dtn_sim::probe::RecordingProbe

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use dtn_cache::intentional::{IntentionalConfig, IntentionalScheme, ResponseStrategy};
use dtn_cache::reference::ReferenceIntentionalScheme;
use dtn_cache::replacement::ReplacementKind;
use dtn_cache::routing::ForwardingStrategy;
use dtn_cache::{CachingScheme, NetworkSetup};
use dtn_core::ids::{DataId, NodeId};
use dtn_core::ncl::SelectionStrategy;
use dtn_core::time::{Duration, Time};
use dtn_sim::audit::{check_delay_decomposition, AuditReport};
use dtn_sim::engine::{
    ContactSource, SimConfig, Simulator, StreamSource, TraceSource, WorkloadEvent,
};
use dtn_sim::message::DataItem;
use dtn_sim::metrics::Metrics;
use dtn_sim::overlay::{OverlayKind, OverlaySource, RegimeOverlay};
use dtn_sim::probe::{ProbeEvent, RecordingProbe, TeeProbe};
use dtn_sim::telemetry::{Telemetry, TelemetryConfig};
use dtn_trace::process::ContactProcessKind;
use dtn_trace::synthetic::SyntheticTraceBuilder;
use dtn_trace::trace::ContactTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fully-specified fuzz case, derived deterministically from a seed.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseParams {
    /// Seed for the trace generator and the simulation RNG.
    pub seed: u64,
    /// Node count of the synthetic trace.
    pub nodes: usize,
    /// Target contact count of the synthetic trace.
    pub contacts: u64,
    /// Data items generated in the workload half.
    pub items: u64,
    /// Queries issued against those items.
    pub queries: u64,
    /// NCLs the intentional scheme selects.
    pub ncl_count: usize,
    /// Cache-replacement policy under test.
    pub replacement: ReplacementKind,
    /// Query-response strategy under test.
    pub response: ResponseStrategy,
    /// Response forwarding strategy under test.
    pub routing: ForwardingStrategy,
    /// Probabilistic (paper) vs. deterministic knapsack selection.
    pub probabilistic: bool,
    /// Small buffers that force replacement pressure.
    pub tight_buffers: bool,
    /// NCL re-election cadence in hours; `None` freezes the NCLs (and
    /// enables the optimized-vs-reference differential comparison).
    pub epoch_hours: Option<u64>,
}

impl CaseParams {
    /// Derives a case from a seed. The same seed always yields the same
    /// case, so a failure report is a complete reproducer.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x051A_CCDC_011E_C7ED);
        let replacement = match rng.gen_range(0..4u8) {
            0 => ReplacementKind::UtilityKnapsack,
            1 => ReplacementKind::Fifo,
            2 => ReplacementKind::Lru,
            _ => ReplacementKind::GreedyDualSize,
        };
        let response = match rng.gen_range(0..3u8) {
            0 => ResponseStrategy::default(),
            1 => ResponseStrategy::PathAware,
            _ => ResponseStrategy::Sigmoid {
                p_min: 0.2,
                p_max: 0.95,
            },
        };
        let routing = match rng.gen_range(0..4u8) {
            0 => ForwardingStrategy::Greedy,
            1 => ForwardingStrategy::Direct,
            2 => ForwardingStrategy::Epidemic,
            _ => ForwardingStrategy::SprayAndWait { initial_copies: 3 },
        };
        CaseParams {
            seed,
            nodes: rng.gen_range(8..=16),
            contacts: rng.gen_range(2_000..=5_000),
            items: rng.gen_range(4..14),
            queries: rng.gen_range(8..32),
            ncl_count: rng.gen_range(1..=4),
            replacement,
            response,
            routing,
            probabilistic: rng.gen_bool(0.5),
            tight_buffers: rng.gen_bool(0.5),
            epoch_hours: if rng.gen_bool(0.4) {
                Some(rng.gen_range(2..=8))
            } else {
                None
            },
        }
    }
}

impl fmt::Display for CaseParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {} nodes {} contacts {} items {} queries {} ncls {} \
             {:?}/{:?}/{:?} probabilistic {} tight {} epoch {:?}",
            self.seed,
            self.nodes,
            self.contacts,
            self.items,
            self.queries,
            self.ncl_count,
            self.replacement,
            self.response,
            self.routing,
            self.probabilistic,
            self.tight_buffers,
            self.epoch_hours,
        )
    }
}

/// A case that violated an invariant, with the diagnostic detail.
#[derive(Debug, Clone)]
pub struct SimcheckFailure {
    /// The failing case (after shrinking, a minimal reproducer).
    pub params: CaseParams,
    /// What went wrong: an audit summary or a divergence description.
    pub detail: String,
}

impl fmt::Display for SimcheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n  case: {}", self.detail, self.params)
    }
}

/// Statistics from one clean case.
#[derive(Debug, Clone, Copy)]
pub struct CaseStats {
    /// Audit sweeps run across both schemes.
    pub sweeps: u64,
    /// Queries the workload issued.
    pub queries_issued: u64,
    /// Whether the optimized-vs-reference comparison ran (epoch-free
    /// cases only).
    pub differential: bool,
}

struct RunResult {
    metrics: Metrics,
    load: Vec<u64>,
    sweeps: u64,
    /// The full probe event stream, for cross-run bit comparison.
    events: Vec<ProbeEvent>,
    /// `Some(summary)` when the audit or probe cross-check failed.
    failure: Option<String>,
}

fn workload(params: &CaseParams, trace: &ContactTrace) -> Vec<WorkloadEvent> {
    let mid = trace.midpoint();
    let life = Duration::hours(20);
    let size = if params.tight_buffers { 500 } else { 1_000 };
    let nodes = params.nodes as u64;
    let mut events = Vec::new();
    for i in 0..params.items {
        events.push(WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(i),
                NodeId((i * 7 % nodes) as u32),
                size,
                mid + Duration::minutes(3 * i),
                life,
            ),
        });
    }
    for q in 0..params.queries {
        // Zipf-ish skew: low data ids are queried more often.
        let data = DataId(q * q % params.items.max(1));
        events.push(WorkloadEvent::IssueQuery {
            at: mid + Duration::minutes(30 + 11 * q),
            requester: NodeId(((q * 5 + 2) % nodes) as u32),
            data,
            constraint: Duration::hours(10),
        });
    }
    events
}

fn sim_config(params: &CaseParams) -> SimConfig {
    SimConfig {
        buffer_range: if params.tight_buffers {
            (1_100, 1_500)
        } else {
            (64_000, 96_000)
        },
        seed: params.seed,
        audit: true,
        epoch_interval: params.epoch_hours.map(Duration::hours),
        ..SimConfig::default()
    }
}

/// Runs one scheme through warm-up → configure → workload with audits
/// on and a recording probe installed, then cross-checks the probe's
/// delay decomposition against the metrics.
fn run_instrumented<S: CachingScheme>(
    trace: &ContactTrace,
    scheme: S,
    events: Vec<WorkloadEvent>,
    sim_cfg: SimConfig,
) -> RunResult {
    let mid = trace.midpoint();
    let nodes = trace.node_count();
    run_instrumented_from(TraceSource::new(trace), scheme, events, sim_cfg, mid, nodes)
}

/// [`run_instrumented`] over any contact source — the streaming batch
/// feeds a [`StreamSource`] through the identical warm-up → configure →
/// workload protocol.
fn run_instrumented_from<S: CachingScheme, C: ContactSource>(
    source: C,
    scheme: S,
    events: Vec<WorkloadEvent>,
    sim_cfg: SimConfig,
    mid: Time,
    nodes: usize,
) -> RunResult {
    let probe = Rc::new(RefCell::new(RecordingProbe::new()));
    // A flight recorder rides along on every fuzz case: its window sums
    // must conserve the engine totals and the probe's event counts
    // exactly, on every seed the fuzzer throws at it. The horizon is
    // only a preallocation hint; overrunning it is fine.
    let telemetry = Rc::new(RefCell::new(Telemetry::new(&TelemetryConfig::spanning(
        Time(0),
        Duration((mid.0 * 2).max(1)),
        16,
        16,
    ))));
    let mut sim = Simulator::from_source(source, scheme, sim_cfg);
    sim.set_probe(Box::new(TeeProbe::new(
        Box::new(Rc::clone(&probe)),
        Box::new(Rc::clone(&telemetry)),
    )));
    sim.run_until(mid);
    let capacities: Vec<u64> = (0..nodes as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    let setup = NetworkSetup {
        rate_table: &rate_table,
        now: mid,
        capacities,
        horizon: 7200.0,
        path_refresh: None,
    };
    sim.scheme_mut().configure(&setup);
    sim.add_workload(events);
    sim.run_to_end();

    let report = sim.audit_report().expect("simcheck always enables audit");
    let mut failure = (!report.is_clean()).then(|| report.summary());
    let sweeps = report.sweeps();
    if failure.is_none() {
        let mut probe_report = AuditReport::default();
        check_delay_decomposition(&probe.borrow(), sim.metrics(), sim.now(), &mut probe_report);
        failure = (!probe_report.is_clean()).then(|| probe_report.summary());
    }
    if failure.is_none() {
        failure = check_telemetry_conservation(&telemetry.borrow(), &probe.borrow(), sim.metrics());
    }
    let events = probe.borrow().events().to_vec();
    RunResult {
        metrics: sim.metrics().clone(),
        load: sim.scheme().ncl_query_load().to_vec(),
        sweeps,
        events,
        failure,
    }
}

/// Strict-equality conservation: the telemetry window sums must
/// reproduce the engine totals and the recording probe's independent
/// event counts. Returns a failure description on the first mismatch.
fn check_telemetry_conservation(
    telemetry: &Telemetry,
    probe: &RecordingProbe,
    metrics: &Metrics,
) -> Option<String> {
    let t = telemetry.totals();
    let (_, oracle_recomputes, oracle_hits) = probe.oracle_counters();
    let parallel_contacts: u64 = telemetry
        .windows()
        .iter()
        .map(|w| w.parallel_contacts)
        .sum();
    let checks: [(&str, u64, u64); 14] = [
        ("queries_issued", t.queries_issued, metrics.queries_issued),
        ("deliveries", t.deliveries, metrics.queries_satisfied),
        ("delay_sum_secs", t.delay_sum_secs, metrics.total_delay_secs),
        (
            "duplicate_deliveries",
            t.duplicate_deliveries,
            metrics.duplicate_deliveries,
        ),
        (
            "late_deliveries",
            t.late_deliveries,
            metrics.late_deliveries,
        ),
        ("data_injected", t.data_injected, metrics.data_generated),
        (
            "bytes_transmitted",
            t.bytes_transmitted,
            metrics.bytes_transmitted,
        ),
        (
            "transfers_rejected",
            t.transfers_rejected,
            metrics.transfers_rejected,
        ),
        ("contacts_lost", t.contacts_lost, metrics.contacts_lost),
        ("contacts", t.contacts, probe.count("contact_begin")),
        ("ncl_load", t.ncl_load, probe.count("query_at_central")),
        (
            "replacements",
            t.replacements,
            probe.count("replacement_evicted"),
        ),
        (
            "oracle_rebuilds",
            t.oracle_rebuilds,
            probe.count("oracle_rebuilt"),
        ),
        (
            "parallel_contacts",
            parallel_contacts,
            probe.parallel_counters().contacts,
        ),
    ];
    for (name, folded, expected) in checks {
        if folded != expected {
            return Some(format!(
                "telemetry conservation: {name} folded {folded} != {expected}"
            ));
        }
    }
    if (t.oracle_recomputes, t.oracle_hits) != (oracle_recomputes, oracle_hits) {
        return Some(format!(
            "telemetry conservation: oracle deltas folded ({}, {}) != ({oracle_recomputes}, {oracle_hits})",
            t.oracle_recomputes, t.oracle_hits
        ));
    }
    None
}

/// Runs one case: optimized scheme under audit, plus the reference
/// differential when the case has no epochs.
///
/// # Errors
///
/// Returns the audit summary or divergence description on failure.
pub fn run_case(params: &CaseParams) -> Result<CaseStats, String> {
    let trace = SyntheticTraceBuilder::new(params.nodes)
        .duration(Duration::days(2))
        .target_contacts(params.contacts)
        .seed(params.seed)
        .build();
    let events = workload(params, &trace);
    let cfg = IntentionalConfig {
        ncl_count: params.ncl_count,
        replacement: params.replacement,
        response: params.response,
        response_routing: params.routing,
        probabilistic_selection: params.probabilistic,
        ..IntentionalConfig::default()
    };

    let fast = run_instrumented(
        &trace,
        IntentionalScheme::new(cfg.clone()),
        events.clone(),
        sim_config(params),
    );
    if let Some(detail) = fast.failure {
        return Err(format!("optimized scheme: {detail}"));
    }
    let mut stats = CaseStats {
        sweeps: fast.sweeps,
        queries_issued: fast.metrics.queries_issued,
        differential: false,
    };

    // The reference scheme keeps its NCLs frozen across epochs by
    // design, so the differential comparison only holds without
    // re-elections.
    if params.epoch_hours.is_none() {
        let reference = run_instrumented(
            &trace,
            ReferenceIntentionalScheme::new(cfg),
            events,
            sim_config(params),
        );
        if let Some(detail) = reference.failure {
            return Err(format!("reference scheme: {detail}"));
        }
        if fast.metrics != reference.metrics {
            return Err(format!(
                "metrics diverged: optimized {:?} vs reference {:?}",
                fast.metrics, reference.metrics
            ));
        }
        if fast.load != reference.load {
            return Err(format!(
                "NCL query load diverged: optimized {:?} vs reference {:?}",
                fast.load, reference.load
            ));
        }
        stats.sweeps += reference.sweeps;
        stats.differential = true;
    }
    Ok(stats)
}

/// Runs one streaming/CSR case: the seed's protocol configuration is
/// re-scaled to a clustered mid-size population (60–180 nodes, four
/// communities) and run three ways under the full audit:
///
/// 1. from the materialized trace (the baseline);
/// 2. from the streaming generator, which must reproduce the
///    materialized run's metrics and NCL query load bit for bit;
/// 3. in city-scale mode — streamed contacts, community-scoped CSR NCL
///    selection, bounded-reach path oracle — which is audited but not
///    compared: the hop bound legitimately changes path weights.
///
/// # Errors
///
/// Returns the audit summary or divergence description on failure.
pub fn run_streaming_case(params: &CaseParams) -> Result<CaseStats, String> {
    let nodes = 60 + (params.seed % 5) as usize * 30;
    let params = CaseParams {
        nodes,
        contacts: nodes as u64 * 40,
        ..params.clone()
    };
    let builder = SyntheticTraceBuilder::new(nodes)
        .duration(Duration::days(2))
        .target_contacts(params.contacts)
        .communities(4)
        .community_boost(5.0)
        .seed(params.seed);
    let trace = builder.build();
    let events = workload(&params, &trace);
    let mid = trace.midpoint();
    let cfg = IntentionalConfig {
        ncl_count: params.ncl_count,
        replacement: params.replacement,
        response: params.response,
        response_routing: params.routing,
        probabilistic_selection: params.probabilistic,
        ..IntentionalConfig::default()
    };

    let by_trace = run_instrumented(
        &trace,
        IntentionalScheme::new(cfg.clone()),
        events.clone(),
        sim_config(&params),
    );
    if let Some(detail) = by_trace.failure {
        return Err(format!("materialized run: {detail}"));
    }
    let by_stream = run_instrumented_from(
        StreamSource::from_synthetic(builder.stream()),
        IntentionalScheme::new(cfg.clone()),
        events.clone(),
        sim_config(&params),
        mid,
        nodes,
    );
    if let Some(detail) = by_stream.failure {
        return Err(format!("streamed run: {detail}"));
    }
    if by_trace.metrics != by_stream.metrics {
        return Err(format!(
            "streamed metrics diverged from materialized: {:?} vs {:?}",
            by_stream.metrics, by_trace.metrics
        ));
    }
    if by_trace.load != by_stream.load {
        return Err(format!(
            "streamed NCL query load diverged: {:?} vs {:?}",
            by_stream.load, by_trace.load
        ));
    }

    let scaled = run_instrumented_from(
        StreamSource::from_synthetic(builder.stream()),
        IntentionalScheme::new(IntentionalConfig {
            ncl_selection: SelectionStrategy::CommunityPathMetric { max_hops: Some(3) },
            bounded_reach: Some((3, 64)),
            ..cfg
        }),
        events,
        sim_config(&params),
        mid,
        nodes,
    );
    if let Some(detail) = scaled.failure {
        return Err(format!("city-scale run: {detail}"));
    }

    Ok(CaseStats {
        sweeps: by_trace.sweeps + by_stream.sweeps + scaled.sweeps,
        queries_issued: by_trace.metrics.queries_issued,
        differential: true,
    })
}

/// Runs one parallel-executor differential case: the seed's full
/// configuration serially and again with `SimConfig::threads` set, both
/// audited, then compares metrics, per-NCL query load and the probe
/// event stream bit for bit. The parallel stream is allowed exactly one
/// extra event kind — `parallel_window`, emitted by the planning phase —
/// which is filtered out before the comparison; a serial run emitting it
/// is itself a failure.
///
/// # Errors
///
/// Returns the audit summary or divergence description on failure.
pub fn run_parallel_case(params: &CaseParams, threads: usize) -> Result<CaseStats, String> {
    assert!(threads > 1, "a parallel case needs at least two threads");
    let trace = SyntheticTraceBuilder::new(params.nodes)
        .duration(Duration::days(2))
        .target_contacts(params.contacts)
        .seed(params.seed)
        .build();
    let events = workload(params, &trace);
    let cfg = IntentionalConfig {
        ncl_count: params.ncl_count,
        replacement: params.replacement,
        response: params.response,
        response_routing: params.routing,
        probabilistic_selection: params.probabilistic,
        ..IntentionalConfig::default()
    };

    let serial = run_instrumented(
        &trace,
        IntentionalScheme::new(cfg.clone()),
        events.clone(),
        sim_config(params),
    );
    if let Some(detail) = serial.failure {
        return Err(format!("serial run: {detail}"));
    }
    if serial
        .events
        .iter()
        .any(|e| matches!(e, ProbeEvent::ParallelWindow { .. }))
    {
        return Err("serial run emitted parallel_window events".into());
    }

    let parallel = run_instrumented(
        &trace,
        IntentionalScheme::new(cfg),
        events,
        SimConfig {
            threads,
            ..sim_config(params)
        },
    );
    if let Some(detail) = parallel.failure {
        return Err(format!("{threads}-thread run: {detail}"));
    }
    if serial.metrics != parallel.metrics {
        return Err(format!(
            "{threads}-thread metrics diverged: {:?} vs serial {:?}",
            parallel.metrics, serial.metrics
        ));
    }
    if serial.load != parallel.load {
        return Err(format!(
            "{threads}-thread NCL query load diverged: {:?} vs serial {:?}",
            parallel.load, serial.load
        ));
    }
    let filtered: Vec<&ProbeEvent> = parallel
        .events
        .iter()
        .filter(|e| !matches!(e, ProbeEvent::ParallelWindow { .. }))
        .collect();
    if filtered.len() != serial.events.len()
        || filtered.iter().zip(&serial.events).any(|(a, b)| **a != *b)
    {
        return Err(format!(
            "{threads}-thread probe stream diverged: {} events (after filtering) vs serial {}",
            filtered.len(),
            serial.events.len()
        ));
    }

    Ok(CaseStats {
        sweeps: serial.sweeps + parallel.sweeps,
        queries_issued: serial.metrics.queries_issued,
        differential: true,
    })
}

/// Derives this seed's hostile overlay for the process batch: the kind
/// rotates with the seed, the window covers the middle of the workload
/// half, and the blackout targets the top central nodes of the
/// mid-trace rate table — the same nodes the scheme is about to elect.
fn process_case_overlay(params: &CaseParams, trace: &ContactTrace) -> RegimeOverlay {
    let mid = trace.midpoint();
    let half = trace.duration().as_secs() - mid.as_secs();
    let start = Time(mid.as_secs() + half * 15 / 100);
    let end = Time(mid.as_secs() + half * 75 / 100);
    let kind = match params.seed % 4 {
        0 => OverlayKind::FlashCrowd {
            item: DataId(0),
            requests: 8 + (params.seed % 9) as u32,
            constraint: Duration::hours(10),
        },
        1 => {
            let table = trace.rate_table(mid);
            let graph = dtn_core::graph::ContactGraph::from_rate_table(&table, mid);
            let count = 1 + (params.seed as usize / 4) % 3;
            let nodes: Vec<NodeId> = dtn_core::ncl::select_central_nodes(&graph, count, 7200.0)
                .into_iter()
                .map(|s| s.node)
                .collect();
            OverlayKind::NclBlackout { nodes }
        }
        2 => OverlayKind::Partition {
            cut: (params.nodes / 2) as u32,
        },
        _ => OverlayKind::BufferFamine {
            items: 4 + (params.seed % 12) as u32,
            size: if params.tight_buffers { 400 } else { 20_000 },
        },
    };
    RegimeOverlay::new(start, end, kind)
}

/// Runs one non-Poisson process case: the seed's protocol configuration
/// on a trace generated under `process`, with the seed's hostile
/// overlay filtering the contact stream and injecting its workload.
/// Both schemes see the identical overlaid stream, so the epoch-free
/// optimized-vs-reference differential still holds; every run is fully
/// audited (including the trace-monotonicity law over the overlay
/// output).
///
/// # Errors
///
/// Returns the audit summary or divergence description on failure.
pub fn run_process_case(
    params: &CaseParams,
    process: ContactProcessKind,
) -> Result<CaseStats, String> {
    let trace = SyntheticTraceBuilder::new(params.nodes)
        .duration(Duration::days(2))
        .target_contacts(params.contacts)
        .contact_process(process)
        .seed(params.seed)
        .build();
    let mid = trace.midpoint();
    let overlay = process_case_overlay(params, &trace);
    let mut events = workload(params, &trace);
    // Famine fillers start above the workload's item-id range.
    events.extend(overlay.workload_events(params.nodes, params.items));
    let cfg = IntentionalConfig {
        ncl_count: params.ncl_count,
        replacement: params.replacement,
        response: params.response,
        response_routing: params.routing,
        probabilistic_selection: params.probabilistic,
        ..IntentionalConfig::default()
    };
    let source = || OverlaySource::new(TraceSource::new(&trace), vec![overlay.clone()]);

    let fast = run_instrumented_from(
        source(),
        IntentionalScheme::new(cfg.clone()),
        events.clone(),
        sim_config(params),
        mid,
        params.nodes,
    );
    if let Some(detail) = fast.failure {
        return Err(format!("optimized scheme ({}): {detail}", process.name()));
    }
    let mut stats = CaseStats {
        sweeps: fast.sweeps,
        queries_issued: fast.metrics.queries_issued,
        differential: false,
    };

    if params.epoch_hours.is_none() {
        let reference = run_instrumented_from(
            source(),
            ReferenceIntentionalScheme::new(cfg),
            events,
            sim_config(params),
            mid,
            params.nodes,
        );
        if let Some(detail) = reference.failure {
            return Err(format!("reference scheme ({}): {detail}", process.name()));
        }
        if fast.metrics != reference.metrics {
            return Err(format!(
                "metrics diverged under {}: optimized {:?} vs reference {:?}",
                process.name(),
                fast.metrics,
                reference.metrics
            ));
        }
        if fast.load != reference.load {
            return Err(format!(
                "NCL query load diverged under {}: optimized {:?} vs reference {:?}",
                process.name(),
                fast.load,
                reference.load
            ));
        }
        stats.sweeps += reference.sweeps;
        stats.differential = true;
    }
    Ok(stats)
}

/// Checks one seed's process/overlay case; failures come back shrunk
/// against the same process (the overlay kind follows the seed, which
/// shrinking never changes).
///
/// # Errors
///
/// Returns the (shrunk) failing case on any invariant breach or
/// divergence.
pub fn check_process_seed(
    seed: u64,
    process: ContactProcessKind,
) -> Result<CaseStats, Box<SimcheckFailure>> {
    let params = CaseParams::from_seed(seed);
    match run_process_case(&params, process) {
        Ok(stats) => Ok(stats),
        Err(detail) => {
            let mut failure = SimcheckFailure { params, detail };
            loop {
                let step = shrink_steps(&failure.params).into_iter().find_map(|cand| {
                    run_process_case(&cand, process)
                        .err()
                        .map(|detail| SimcheckFailure {
                            params: cand,
                            detail,
                        })
                });
                match step {
                    Some(smaller) => failure = smaller,
                    None => break Err(Box::new(failure)),
                }
            }
        }
    }
}

/// Checks one seed's serial-vs-parallel differential; failures come
/// back shrunk like the main batch (the executor divergence dimension
/// survives shrinking — every shrunk case still runs both ways).
///
/// # Errors
///
/// Returns the (shrunk) failing case on any invariant breach or
/// divergence.
pub fn check_parallel_seed(seed: u64, threads: usize) -> Result<CaseStats, Box<SimcheckFailure>> {
    let params = CaseParams::from_seed(seed);
    match run_parallel_case(&params, threads) {
        Ok(stats) => Ok(stats),
        Err(detail) => {
            let mut failure = SimcheckFailure { params, detail };
            // Greedy shrink against the parallel differential itself.
            loop {
                let step = shrink_steps(&failure.params).into_iter().find_map(|cand| {
                    run_parallel_case(&cand, threads)
                        .err()
                        .map(|detail| SimcheckFailure {
                            params: cand,
                            detail,
                        })
                });
                match step {
                    Some(smaller) => failure = smaller,
                    None => break Err(Box::new(failure)),
                }
            }
        }
    }
}

/// Checks one seed's streaming/CSR case. Streaming failures are not
/// shrunk: the interesting dimension (population size) is pinned by the
/// case derivation, and `shrink` reduces toward the dense regime the
/// batch exists to avoid.
///
/// # Errors
///
/// Returns the failing case on any invariant breach or divergence.
pub fn check_streaming_seed(seed: u64) -> Result<CaseStats, Box<SimcheckFailure>> {
    let params = CaseParams::from_seed(seed);
    run_streaming_case(&params).map_err(|detail| Box::new(SimcheckFailure { params, detail }))
}

/// Checks one seed end to end; failures come back shrunk.
///
/// # Errors
///
/// Returns the (shrunk) failing case on any invariant breach.
pub fn check_seed(seed: u64) -> Result<CaseStats, Box<SimcheckFailure>> {
    let params = CaseParams::from_seed(seed);
    match run_case(&params) {
        Ok(stats) => Ok(stats),
        Err(detail) => Err(Box::new(shrink(SimcheckFailure { params, detail }))),
    }
}

/// Candidate one-step reductions of a case, most aggressive first.
/// Public so the shrinking order itself is testable.
pub fn shrink_steps(params: &CaseParams) -> Vec<CaseParams> {
    let mut steps = Vec::new();
    if params.epoch_hours.is_some() {
        steps.push(CaseParams {
            epoch_hours: None,
            ..params.clone()
        });
    }
    if params.nodes > 8 {
        steps.push(CaseParams {
            nodes: 8,
            ..params.clone()
        });
    }
    if params.contacts > 500 {
        steps.push(CaseParams {
            contacts: (params.contacts / 2).max(500),
            ..params.clone()
        });
    }
    if params.queries > 2 {
        steps.push(CaseParams {
            queries: (params.queries / 2).max(2),
            ..params.clone()
        });
    }
    if params.items > 2 {
        steps.push(CaseParams {
            items: (params.items / 2).max(2),
            ..params.clone()
        });
    }
    steps
}

/// Greedily shrinks a failing case: applies the first reduction that
/// still fails, repeating until no reduction reproduces the failure.
pub fn shrink(failure: SimcheckFailure) -> SimcheckFailure {
    let mut best = failure;
    loop {
        let mut reduced = false;
        for candidate in shrink_steps(&best.params) {
            if let Err(detail) = run_case(&candidate) {
                best = SimcheckFailure {
                    params: candidate,
                    detail,
                };
                reduced = true;
                break;
            }
        }
        if !reduced {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_derivation_is_deterministic() {
        assert_eq!(CaseParams::from_seed(7), CaseParams::from_seed(7));
        // Nearby seeds should not collapse onto one case.
        assert_ne!(CaseParams::from_seed(7), CaseParams::from_seed(8));
    }

    #[test]
    fn first_seeds_run_clean() {
        for seed in 0..2u64 {
            let stats = check_seed(seed).unwrap_or_else(|f| panic!("seed {seed} failed: {f}"));
            assert!(stats.sweeps > 0, "seed {seed} never audited");
            assert!(stats.queries_issued > 0, "seed {seed} issued no queries");
        }
    }

    #[test]
    fn streaming_case_first_seed_clean() {
        let stats = check_streaming_seed(0).unwrap_or_else(|f| panic!("streaming seed 0: {f}"));
        assert!(stats.sweeps > 0, "streaming case never audited");
        assert!(stats.differential, "streaming case skipped the diff");
    }

    #[test]
    fn process_cases_first_seeds_clean() {
        // Seeds 0..4 rotate through all four overlay kinds.
        for seed in 0..4u64 {
            let process = ContactProcessKind::ALL[1 + seed as usize % 4];
            let stats = check_process_seed(seed, process)
                .unwrap_or_else(|f| panic!("process seed {seed}: {f}"));
            assert!(stats.sweeps > 0, "process seed {seed} never audited");
            assert!(
                stats.queries_issued > 0,
                "process seed {seed} issued no queries"
            );
        }
    }

    #[test]
    fn parallel_case_first_seeds_clean() {
        for seed in 0..2u64 {
            let stats = check_parallel_seed(seed, 2)
                .unwrap_or_else(|f| panic!("parallel seed {seed} failed: {f}"));
            assert!(stats.differential, "parallel case skipped the diff");
            assert!(stats.sweeps > 0, "parallel case never audited");
        }
    }

    #[test]
    fn shrink_steps_only_reduce() {
        let params = CaseParams::from_seed(3);
        for step in shrink_steps(&params) {
            let smaller = step.epoch_hours.is_none() && params.epoch_hours.is_some()
                || step.nodes < params.nodes
                || step.contacts < params.contacts
                || step.queries < params.queries
                || step.items < params.items;
            assert!(smaller, "step {step} does not reduce {params}");
        }
        let minimal = CaseParams {
            nodes: 8,
            contacts: 500,
            items: 2,
            queries: 2,
            epoch_hours: None,
            ..params
        };
        assert!(shrink_steps(&minimal).is_empty());
    }
}
