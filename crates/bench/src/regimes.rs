//! Hostile-regime experiment matrix: contact process × overlay ×
//! NCL-maintenance policy.
//!
//! The paper's evaluation assumes stationary Poisson contacts. This
//! runner measures what happens when that assumption breaks twice over:
//! the *contact process* is swapped for a heavy-tailed / lognormal /
//! duty-cycled law ([`ContactProcessKind`]), and a *hostile overlay*
//! ([`RegimeOverlay`]) perturbs the second half of the run — a query
//! flash crowd, a coordinated blackout of the elected NCLs, a network
//! partition, or buffer famine. Every cell runs twice: with the NCLs
//! frozen at their mid-trace election, and with epoch re-election
//! enabled — the difference (`recovery`) quantifies how much online
//! re-election buys back under each regime.
//!
//! Per-process estimator diagnostics (exponential-fit R², Hill tail
//! exponent, mean gap CV²) quantify how far each process pushes the
//! rate estimator from the Poisson world it was built for.

use std::cell::RefCell;
use std::rc::Rc;

use dtn_cache::intentional::{IntentionalConfig, IntentionalScheme};
use dtn_cache::{CachingScheme, NetworkSetup, SchemeKind};
use dtn_core::graph::ContactGraph;
use dtn_core::ids::{DataId, NodeId};
use dtn_core::ncl::select_central_nodes;
use dtn_core::time::{Duration, Time};
use dtn_sim::engine::{SimConfig, Simulator, TraceSource, WorkloadEvent};
use dtn_sim::message::DataItem;
use dtn_sim::overlay::{OverlayKind, OverlaySource, RegimeOverlay};
use dtn_sim::probe::{RecordingProbe, TeeProbe};
use dtn_sim::telemetry::{Telemetry, TelemetryConfig};
use dtn_trace::process::ContactProcessKind;
use dtn_trace::synthetic::SyntheticTraceBuilder;
use dtn_trace::trace::ContactTrace;
use dtn_trace::{analysis, stats};

use crate::observe::{ObserveRun, TIMELINE_WINDOWS};

/// The overlay slots of the matrix, in report order. `"none"` is the
/// unperturbed baseline every other slot is read against.
pub const OVERLAY_SLOTS: [&str; 5] = [
    "none",
    "flash-crowd",
    "ncl-blackout",
    "partition",
    "buffer-famine",
];

/// Matrix configuration.
#[derive(Debug, Clone)]
pub struct RegimeMatrixConfig {
    /// Scales trace duration and contact volume, like the figure
    /// commands (1.0 = 10 days / 150k contacts over 40 nodes).
    pub scale: f64,
    /// Repetitions per cell; outcomes are seed-averaged.
    pub seeds: u32,
    /// Contact processes to sweep (columns of the matrix).
    pub processes: Vec<ContactProcessKind>,
    /// Overlay slots to sweep (subset of [`OVERLAY_SLOTS`]).
    pub overlays: Vec<String>,
    /// Worker threads for the cell fan-out (0 = all cores).
    pub threads: usize,
    /// Run every simulation with the invariant audit on.
    pub audit: bool,
}

impl Default for RegimeMatrixConfig {
    fn default() -> Self {
        RegimeMatrixConfig {
            scale: 0.1,
            seeds: 3,
            processes: ContactProcessKind::ALL.to_vec(),
            overlays: OVERLAY_SLOTS.iter().map(|s| s.to_string()).collect(),
            threads: 0,
            audit: true,
        }
    }
}

/// Seed-averaged outcome of one (process, overlay, policy) corner.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegimeOutcome {
    /// Mean fraction of issued queries satisfied in time.
    pub success_ratio: f64,
    /// Mean satisfied-query delay in hours.
    pub delay_hours: f64,
    /// Mean queries issued per run.
    pub queries_issued: f64,
    /// Mean contacts the overlay suppressed per run.
    pub contacts_dropped: f64,
    /// Total audit violations across the seeds (0 when clean or when
    /// the audit is off).
    pub audit_violations: u64,
    /// Total audit sweeps across the seeds.
    pub audit_sweeps: u64,
}

/// One matrix cell: a (process, overlay) pair run frozen and adaptive.
#[derive(Debug, Clone)]
pub struct RegimeCell {
    /// The per-pair contact process of the trace.
    pub process: ContactProcessKind,
    /// The overlay slot name (one of [`OVERLAY_SLOTS`]).
    pub overlay: String,
    /// Outcome with NCLs frozen at their mid-trace election.
    pub frozen: RegimeOutcome,
    /// Outcome with epoch re-election enabled.
    pub adaptive: RegimeOutcome,
}

impl RegimeCell {
    /// Success-ratio gain of epoch re-election over frozen NCLs.
    pub fn recovery(&self) -> f64 {
        self.adaptive.success_ratio - self.frozen.success_ratio
    }
}

/// Estimator-facing diagnostics of one contact process, measured on an
/// unperturbed trace.
#[derive(Debug, Clone, Copy)]
pub struct ProcessDiagnostics {
    /// The process under diagnosis.
    pub process: ContactProcessKind,
    /// R² of the log-CCDF exponential fit of pooled inter-contact gaps
    /// (≈ 1 for Poisson; drops as the law leaves the exponential family).
    pub exp_fit_r2: f64,
    /// Hill tail-exponent estimate over the top decile of gaps.
    pub hill_tail: Option<f64>,
    /// The tail exponent the process was configured with, if it has one.
    pub configured_tail: Option<f64>,
    /// Contact-weighted mean gap CV² as the live [`RateTable`] sees it
    /// (1 ≈ Poisson, ≫ 1 heavy-tailed, ≪ 1 periodic).
    ///
    /// [`RateTable`]: dtn_core::rate::RateTable
    pub mean_gap_cv2: f64,
    /// Contacts in the diagnostic trace.
    pub contacts: u64,
}

/// The full matrix result.
#[derive(Debug, Clone)]
pub struct RegimeReport {
    /// Population size of every run.
    pub nodes: usize,
    /// The scale the matrix ran at.
    pub scale: f64,
    /// Seeds per cell.
    pub seeds: u32,
    /// Adaptive epoch cadence, in seconds.
    pub epoch_secs: u64,
    /// Whether the audit ran on every simulation.
    pub audited: bool,
    /// One diagnostics row per process.
    pub diagnostics: Vec<ProcessDiagnostics>,
    /// One cell per (process, overlay) pair.
    pub cells: Vec<RegimeCell>,
}

impl RegimeReport {
    /// Total audit violations across every cell and policy.
    pub fn total_violations(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.frozen.audit_violations + c.adaptive.audit_violations)
            .sum()
    }

    /// The cell with the largest adaptive-over-frozen recovery.
    pub fn best_recovery(&self) -> Option<&RegimeCell> {
        self.cells
            .iter()
            .filter(|c| c.overlay != "none")
            .max_by(|a, b| a.recovery().total_cmp(&b.recovery()))
    }
}

/// Geometry of one run, derived from the scaled duration. All regime
/// events live in the second half: the first half is estimator warm-up,
/// exactly like the paper's experiment protocol.
struct RunPlan {
    duration: Duration,
    mid: Time,
    /// Overlay window: hostile from `w_start` (inclusive) to `w_end`
    /// (exclusive, the heal instant).
    w_start: Time,
    w_end: Time,
    /// Adaptive-policy epoch cadence — a quarter of the overlay window,
    /// so re-election gets several chances to observe the regime and at
    /// least one to observe the heal.
    epoch: Duration,
    query_constraint: Duration,
}

impl RunPlan {
    fn new(scale: f64) -> Self {
        let duration = Duration::days(10).mul_f64(scale);
        let mid = Time(duration.as_secs() / 2);
        let half = duration.as_secs() - mid.as_secs();
        let w_start = Time(mid.as_secs() + half * 15 / 100);
        let w_end = Time(mid.as_secs() + half * 75 / 100);
        let window = w_end.as_secs() - w_start.as_secs();
        RunPlan {
            duration,
            mid,
            w_start,
            w_end,
            epoch: Duration((window / 4).max(1)),
            query_constraint: Duration(half / 3),
        }
    }
}

const NODES: usize = 40;
const BASE_CONTACTS: f64 = 150_000.0;
const NCL_COUNT: usize = 4;
const ITEMS: u64 = 12;
const QUERIES: u64 = 64;
/// DataId range start for famine filler items, far above real items.
const SPARE_ITEM_BASE: u64 = 1_000;

fn trace_builder(process: ContactProcessKind, scale: f64, seed: u64) -> SyntheticTraceBuilder {
    SyntheticTraceBuilder::new(NODES)
        .duration(Duration::days(10).mul_f64(scale))
        .target_contacts((BASE_CONTACTS * scale).max(2_000.0) as u64)
        .contact_process(process)
        .seed(seed)
}

/// The base workload: items generated just after the warm-up midpoint,
/// Zipf-skewed queries spread over the second half. Deterministic in
/// the plan alone so every (process, overlay, policy) corner of a seed
/// sees the identical demand.
fn base_workload(plan: &RunPlan) -> Vec<WorkloadEvent> {
    let half = plan.duration.as_secs() - plan.mid.as_secs();
    let life = Duration(half.max(1));
    let mut events = Vec::new();
    for i in 0..ITEMS {
        events.push(WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(i),
                NodeId((i * 7 % NODES as u64) as u32),
                1_000,
                plan.mid + Duration(half * i / (ITEMS * 8)),
                life,
            ),
        });
    }
    for q in 0..QUERIES {
        // Zipf-ish skew: low data ids are queried more often.
        let data = DataId(q * q % ITEMS);
        events.push(WorkloadEvent::IssueQuery {
            at: plan.mid + Duration(half / 20 + q * (half * 7 / 10) / QUERIES),
            requester: NodeId(((q * 13 + 2) % NODES as u64) as u32),
            data,
            constraint: plan.query_constraint,
        });
    }
    events
}

/// Instantiates the named overlay slot for one trace. The blackout
/// targets the nodes the frozen policy actually elects: the top-K
/// central nodes of the rate table at the configuration midpoint.
fn build_overlay(slot: &str, plan: &RunPlan, trace: &ContactTrace) -> Option<RegimeOverlay> {
    let kind = match slot {
        "none" => return None,
        "flash-crowd" => OverlayKind::FlashCrowd {
            item: DataId(0),
            requests: 48,
            constraint: plan.query_constraint,
        },
        "ncl-blackout" => {
            let table = trace.rate_table(plan.mid);
            let graph = ContactGraph::from_rate_table(&table, plan.mid);
            let nodes: Vec<NodeId> = select_central_nodes(&graph, NCL_COUNT, 7_200.0)
                .into_iter()
                .map(|s| s.node)
                .collect();
            OverlayKind::NclBlackout { nodes }
        }
        "partition" => OverlayKind::Partition {
            cut: (NODES / 2) as u32,
        },
        "buffer-famine" => OverlayKind::BufferFamine {
            items: 60,
            size: 30_000,
        },
        other => panic!("unknown overlay slot {other:?}"),
    };
    Some(RegimeOverlay::new(plan.w_start, plan.w_end, kind))
}

struct SingleRun {
    success_ratio: f64,
    delay_hours: f64,
    queries_issued: u64,
    contacts_dropped: u64,
    audit_violations: u64,
    audit_sweeps: u64,
}

/// One simulation: warm-up to the midpoint, configure the intentional
/// scheme from the live rate table, inject base + overlay workload, run
/// to the end through the overlay-filtered contact stream.
fn run_one(
    trace: &ContactTrace,
    plan: &RunPlan,
    overlay: Option<&RegimeOverlay>,
    epoch: Option<Duration>,
    seed: u64,
    audit: bool,
) -> SingleRun {
    let overlays: Vec<RegimeOverlay> = overlay.cloned().into_iter().collect();
    let source = OverlaySource::new(TraceSource::new(trace), overlays);
    let scheme = IntentionalScheme::new(IntentionalConfig {
        ncl_count: NCL_COUNT,
        ..IntentionalConfig::default()
    });
    let config = SimConfig {
        buffer_range: (64_000, 96_000),
        seed,
        audit,
        epoch_interval: epoch,
        ..SimConfig::default()
    };
    let mut sim = Simulator::from_source(source, scheme, config);
    sim.run_until(plan.mid);
    let capacities: Vec<u64> = (0..NODES as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    let setup = NetworkSetup {
        rate_table: &rate_table,
        now: plan.mid,
        capacities,
        horizon: 7_200.0,
        path_refresh: None,
    };
    sim.scheme_mut().configure(&setup);
    let mut events = base_workload(plan);
    if let Some(o) = overlay {
        events.extend(o.workload_events(NODES, SPARE_ITEM_BASE));
    }
    sim.add_workload(events);
    sim.run_to_end();

    let m = sim.metrics();
    let (violations, sweeps) = sim
        .audit_report()
        .map_or((0, 0), |r| (r.violations_total(), r.sweeps()));
    SingleRun {
        success_ratio: if m.queries_issued > 0 {
            m.queries_satisfied as f64 / m.queries_issued as f64
        } else {
            0.0
        },
        delay_hours: if m.queries_satisfied > 0 {
            m.total_delay_secs as f64 / m.queries_satisfied as f64 / 3_600.0
        } else {
            0.0
        },
        queries_issued: m.queries_issued,
        contacts_dropped: sim.source().dropped(),
        audit_violations: violations,
        audit_sweeps: sweeps,
    }
}

/// One fully-instrumented hostile-regime run for `observe`/`timeline`:
/// the Poisson base process under the `ncl-blackout` overlay with
/// adaptive re-election — the cell whose over-time story (load collapse
/// at the blacked-out NCLs, recovery after re-election, heal at the
/// window end) the flight recorder exists to show. Same protocol as
/// the matrix's `run_one`; the probes are installed after `configure`, so the
/// capture covers the measurement half, and the blackout window is
/// marked on the telemetry series.
pub fn observe_blackout(scale: f64, seed: u64, threads: usize) -> ObserveRun {
    let scale = scale.max(0.02);
    let plan = RunPlan::new(scale);
    let trace = trace_builder(ContactProcessKind::Poisson, scale, seed).build();
    let overlay = build_overlay("ncl-blackout", &plan, &trace).expect("blackout slot");

    let source = OverlaySource::new(TraceSource::new(&trace), vec![overlay.clone()]);
    let scheme = IntentionalScheme::new(IntentionalConfig {
        ncl_count: NCL_COUNT,
        ..IntentionalConfig::default()
    });
    let config = SimConfig {
        buffer_range: (64_000, 96_000),
        seed,
        epoch_interval: Some(plan.epoch),
        profile: true,
        threads,
        ..SimConfig::default()
    };
    let mut sim = Simulator::from_source(source, scheme, config);
    sim.run_until(plan.mid);

    let capacities: Vec<u64> = (0..NODES as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    let setup = NetworkSetup {
        rate_table: &rate_table,
        now: plan.mid,
        capacities,
        horizon: 7_200.0,
        path_refresh: None,
    };
    sim.scheme_mut().configure(&setup);

    let end = Time(plan.duration.as_secs());
    let recorder = Rc::new(RefCell::new(RecordingProbe::new()));
    let mut telemetry = Telemetry::new(&TelemetryConfig::spanning(
        plan.mid,
        Duration(end.0 - plan.mid.0),
        TIMELINE_WINDOWS,
        NCL_COUNT,
    ));
    telemetry.mark_overlay("ncl-blackout", plan.w_start, plan.w_end);
    let telemetry = Rc::new(RefCell::new(telemetry));
    sim.set_probe(Box::new(TeeProbe::new(
        Box::new(Rc::clone(&recorder)),
        Box::new(Rc::clone(&telemetry)),
    )));

    let mut events = base_workload(&plan);
    events.extend(overlay.workload_events(NODES, SPARE_ITEM_BASE));
    sim.add_workload(events);
    sim.run_to_end();

    drop(sim.take_probe());
    let probe = Rc::try_unwrap(recorder)
        .expect("engine returned its probe handle")
        .into_inner();
    let telemetry = Rc::try_unwrap(telemetry)
        .expect("engine returned its telemetry handle")
        .into_inner();
    ObserveRun {
        figure: "regimes".to_string(),
        scheme: SchemeKind::Intentional,
        seed,
        metrics: sim.metrics().clone(),
        probe,
        telemetry,
        profile: sim.profile_report(),
        central_nodes: sim.scheme().central_nodes().to_vec(),
        ncl_query_load: sim.scheme().ncl_query_load().to_vec(),
    }
}

fn aggregate(runs: &[SingleRun]) -> RegimeOutcome {
    let n = runs.len().max(1) as f64;
    RegimeOutcome {
        success_ratio: runs.iter().map(|r| r.success_ratio).sum::<f64>() / n,
        delay_hours: runs.iter().map(|r| r.delay_hours).sum::<f64>() / n,
        queries_issued: runs.iter().map(|r| r.queries_issued as f64).sum::<f64>() / n,
        contacts_dropped: runs.iter().map(|r| r.contacts_dropped as f64).sum::<f64>() / n,
        audit_violations: runs.iter().map(|r| r.audit_violations).sum(),
        audit_sweeps: runs.iter().map(|r| r.audit_sweeps).sum(),
    }
}

/// Base seed of the matrix; repetition `s` of any cell uses
/// `MATRIX_SEED + s` so frozen/adaptive and all overlays of a
/// repetition share one trace and one workload.
pub const MATRIX_SEED: u64 = 42;

/// Runs the diagnostics pass for one process on an unperturbed trace.
fn diagnose(process: ContactProcessKind, scale: f64) -> ProcessDiagnostics {
    let trace = trace_builder(process, scale, MATRIX_SEED).build();
    let gaps = analysis::aggregate_intercontact_times(&trace);
    let exp_fit_r2 = analysis::fit_exponential(&gaps).map_or(0.0, |f| f.log_ccdf_r2);
    let hill_tail = stats::tail_exponent(&gaps, 0.1);
    let end = Time(trace.duration().as_secs());
    let mean_gap_cv2 = trace.rate_table(end).mean_gap_cv2().unwrap_or(0.0);
    ProcessDiagnostics {
        process,
        exp_fit_r2,
        hill_tail,
        configured_tail: process.tail_exponent(),
        mean_gap_cv2,
        contacts: trace.contact_count() as u64,
    }
}

/// Runs the full matrix: `processes × overlays`, each cell
/// seed-averaged and run under both NCL policies. Cells fan out over
/// [`dtn_core::par::map_slice_threads`]; every cell is deterministic in
/// (process, overlay, seed) alone, so the fan-out order is irrelevant.
pub fn run_regime_matrix(cfg: &RegimeMatrixConfig) -> RegimeReport {
    assert!(cfg.seeds > 0, "at least one seed per cell");
    assert!(!cfg.processes.is_empty(), "at least one process");
    assert!(!cfg.overlays.is_empty(), "at least one overlay slot");
    let plan = RunPlan::new(cfg.scale);

    let cells: Vec<(ContactProcessKind, String)> = cfg
        .processes
        .iter()
        .flat_map(|&p| cfg.overlays.iter().map(move |o| (p, o.clone())))
        .collect();

    let results = dtn_core::par::map_slice_threads(cfg.threads, &cells, |(process, slot)| {
        let mut frozen = Vec::with_capacity(cfg.seeds as usize);
        let mut adaptive = Vec::with_capacity(cfg.seeds as usize);
        for s in 0..u64::from(cfg.seeds) {
            let seed = MATRIX_SEED + s;
            let trace = trace_builder(*process, cfg.scale, seed).build();
            let overlay = build_overlay(slot, &plan, &trace);
            frozen.push(run_one(
                &trace,
                &plan,
                overlay.as_ref(),
                None,
                seed,
                cfg.audit,
            ));
            adaptive.push(run_one(
                &trace,
                &plan,
                overlay.as_ref(),
                Some(plan.epoch),
                seed,
                cfg.audit,
            ));
        }
        RegimeCell {
            process: *process,
            overlay: slot.clone(),
            frozen: aggregate(&frozen),
            adaptive: aggregate(&adaptive),
        }
    });

    let diagnostics =
        dtn_core::par::map_slice_threads(cfg.threads, &cfg.processes, |&p| diagnose(p, cfg.scale));

    RegimeReport {
        nodes: NODES,
        scale: cfg.scale,
        seeds: cfg.seeds,
        epoch_secs: plan.epoch.as_secs(),
        audited: cfg.audit,
        diagnostics,
        cells: results,
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or("null".into(), |x| format!("{x:.4}"))
}

fn outcome_json(o: &RegimeOutcome) -> String {
    format!(
        "{{\"success_ratio\": {:.4}, \"delay_hours\": {:.3}, \"queries_issued\": {:.1}, \
         \"contacts_dropped\": {:.1}, \"audit_violations\": {}, \"audit_sweeps\": {}}}",
        o.success_ratio,
        o.delay_hours,
        o.queries_issued,
        o.contacts_dropped,
        o.audit_violations,
        o.audit_sweeps,
    )
}

/// Renders the report as the `BENCH_regimes.json` document.
pub fn report_to_json(report: &RegimeReport) -> String {
    let mut doc = format!(
        "{{\n  \"benchmark\": \"crates/bench/src/regimes.rs\",\n  \
         \"command\": \"cargo run --release -p bench --bin experiments -- regimes\",\n  \
         \"nodes\": {},\n  \"scale\": {},\n  \"seeds\": {},\n  \"epoch_secs\": {},\n  \
         \"audited\": {},\n  \"total_audit_violations\": {},\n  \"process_diagnostics\": [\n",
        report.nodes,
        report.scale,
        report.seeds,
        report.epoch_secs,
        report.audited,
        report.total_violations(),
    );
    for (i, d) in report.diagnostics.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\"process\": \"{}\", \"exp_fit_r2\": {:.4}, \"hill_tail\": {}, \
             \"configured_tail\": {}, \"mean_gap_cv2\": {:.4}, \"contacts\": {}}}{}\n",
            d.process.name(),
            d.exp_fit_r2,
            json_opt(d.hill_tail),
            json_opt(d.configured_tail),
            d.mean_gap_cv2,
            d.contacts,
            if i + 1 < report.diagnostics.len() {
                ","
            } else {
                ""
            },
        ));
    }
    doc.push_str("  ],\n  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\n      \"process\": \"{}\",\n      \"overlay\": \"{}\",\n      \
             \"frozen\": {},\n      \"adaptive\": {},\n      \"recovery\": {:.4}\n    }}{}\n",
            c.process.name(),
            c.overlay,
            outcome_json(&c.frozen),
            outcome_json(&c.adaptive),
            c.recovery(),
            if i + 1 < report.cells.len() { "," } else { "" },
        ));
    }
    let best = report.best_recovery().map_or_else(
        || "null".to_string(),
        |c| {
            format!(
                "{{\"process\": \"{}\", \"overlay\": \"{}\", \"recovery\": {:.4}}}",
                c.process.name(),
                c.overlay,
                c.recovery()
            )
        },
    );
    doc.push_str(&format!(
        "  ],\n  \"best_recovery\": {best},\n  \"notes\": [\n    \
         \"Every cell runs the intentional scheme twice on identical traces and workload: \
         frozen (NCLs elected once at the trace midpoint) and adaptive (epoch re-election \
         every epoch_secs). recovery = adaptive.success_ratio - frozen.success_ratio.\",\n    \
         \"The overlay window covers [mid + 15%, mid + 75%] of the second half; the \
         ncl-blackout slot blacks out exactly the top-K central nodes the frozen policy \
         elects, so frozen NCLs lose their caching infrastructure until the heal while \
         adaptive policies can re-elect around it.\",\n    \
         \"process_diagnostics quantify estimator stress on unperturbed traces: exp_fit_r2 \
         is the log-CCDF exponential fit (Poisson = 1), hill_tail the Hill estimator over \
         the top decile of inter-contact gaps, mean_gap_cv2 the contact-weighted squared \
         coefficient of gap variation as the live RateTable measures it (Poisson = 1).\"\n  ]\n}}\n",
    ));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> RegimeMatrixConfig {
        RegimeMatrixConfig {
            scale: 0.02,
            seeds: 1,
            processes: vec![ContactProcessKind::Poisson, ContactProcessKind::PARETO],
            overlays: vec!["none".into(), "ncl-blackout".into()],
            threads: 1,
            audit: true,
        }
    }

    #[test]
    fn tiny_matrix_runs_clean_and_reports_every_cell() {
        let report = run_regime_matrix(&tiny_config());
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.total_violations(), 0, "audit must stay clean");
        for cell in &report.cells {
            assert!(
                cell.frozen.queries_issued > 0.0,
                "{}: no queries",
                cell.overlay
            );
            assert!(
                cell.frozen.audit_sweeps > 0,
                "{}: never audited",
                cell.overlay
            );
            if cell.overlay == "ncl-blackout" {
                assert!(
                    cell.frozen.contacts_dropped > 0.0,
                    "blackout dropped no contacts"
                );
            } else {
                assert_eq!(cell.frozen.contacts_dropped, 0.0);
            }
        }
        let json = report_to_json(&report);
        assert!(json.contains("\"best_recovery\""));
        assert!(json.contains("\"ncl-blackout\""));
        assert!(json.contains("\"pareto\""));
    }

    #[test]
    fn matrix_is_deterministic() {
        let cfg = tiny_config();
        let a = run_regime_matrix(&cfg);
        let b = run_regime_matrix(&cfg);
        assert_eq!(report_to_json(&a), report_to_json(&b));
    }

    #[test]
    fn observed_blackout_marks_the_window_and_profiles() {
        let run = observe_blackout(0.02, MATRIX_SEED, 1);
        assert_eq!(run.figure, "regimes");
        assert!(run.metrics.queries_issued > 0);
        // The blackout overlay is marked on at least one window.
        let marked =
            (0..run.telemetry.windows().len()).any(|i| !run.telemetry.overlays_in(i).is_empty());
        assert!(marked, "no window carries the blackout overlay");
        // Telemetry conserves the engine totals.
        let totals = run.telemetry.totals();
        assert_eq!(totals.queries_issued, run.metrics.queries_issued);
        assert_eq!(totals.deliveries, run.metrics.queries_satisfied);
        // The profiler ran.
        assert!(run.profile.as_ref().is_some_and(|p| p.total_ns() > 0));
    }

    #[test]
    fn overlay_slots_instantiate() {
        let plan = RunPlan::new(0.02);
        let trace = trace_builder(ContactProcessKind::Poisson, 0.02, MATRIX_SEED).build();
        for slot in OVERLAY_SLOTS {
            let overlay = build_overlay(slot, &plan, &trace);
            assert_eq!(overlay.is_none(), slot == "none", "slot {slot}");
            if let Some(o) = overlay {
                assert_eq!(o.kind.name(), slot);
                assert!(o.start >= plan.mid && o.end <= Time(plan.duration.as_secs()));
            }
        }
    }
}
