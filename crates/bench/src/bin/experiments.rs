//! Regenerates every table and figure of the paper as text tables.
//!
//! ```text
//! experiments [--scale F] [--seeds N] [--timing] [--threads T] <command>
//! commands: table1 fig4 fig7 fig9 fig10 fig11 fig12 fig13 all
//!           observe <target> [--out report.jsonl]
//!           timeline <target> [--out report.jsonl]
//!           compare <a.jsonl|BENCH_a.json> <b> [--threshold-pct P]
//!           scale [NODES,...] [--out BENCH_scale.json]
//!           parallel [NODES] [--out BENCH_parallel_engine.json]
//! ```
//!
//! `--scale` shrinks trace duration and contact count proportionally
//! (default 0.1 — a laptop-friendly run preserving contact density);
//! `--seeds` sets repetitions per point (default 3); `--timing` prints
//! simulation throughput (events/sec) per figure point; `--epoch SECS`
//! narrows the `churn` sweep to frozen NCLs vs one re-election cadence.
//!
//! `observe <target>` re-runs a target's base configuration — any
//! figure, the `regimes` blackout cell, or the `scale` streaming smoke
//! city — with the probe layer recording every protocol event, prints a
//! post-mortem (probe counters, per-NCL hit rates, delay decomposition,
//! slowest queries), and streams the full capture (events, traces,
//! telemetry windows, phase profile) as versioned JSONL to `--out`.
//! `timeline <target>` runs the same capture but renders the over-time
//! view: the windowed telemetry table and the hierarchical phase
//! profile.
//!
//! `compare <a> <b>` aligns two captures (JSONL exports or committed
//! `BENCH_*.json` documents), prints every per-window / per-phase /
//! per-counter delta, and exits non-zero when a gated outcome metric
//! regresses past `--threshold-pct` (default 5).
//!
//! `--threads T` runs `observe` and `scale` on the windowed parallel
//! executor; `parallel` sweeps a thread-count curve (1/2/4/8) over one
//! city-scale point plus a fig10 point, asserts every run is
//! bit-identical to serial, and emits `BENCH_parallel_engine.json`.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use bench::figures;
use dtn_cache::replacement::ReplacementKind;
use dtn_cache::SchemeKind;
use dtn_core::time::Duration;

struct Options {
    scale: f64,
    seeds: u32,
    command: String,
    /// Second positional: the target for `observe`/`timeline`, the
    /// first run for `compare`.
    figure: Option<String>,
    /// Third positional: the second run for `compare`.
    second: Option<String>,
    csv_dir: Option<PathBuf>,
    /// JSONL output path for `observe`/`timeline`.
    out: Option<PathBuf>,
    timing: bool,
    epoch: Option<Duration>,
    /// `SimConfig::threads` for `observe`/`scale`; 1 = serial engine.
    threads: usize,
    /// Relative regression threshold for `compare`, in percent.
    threshold_pct: f64,
    /// `serve`: run only the CI-sized smoke configuration.
    smoke: bool,
    /// `serve`: run the serve-vs-engine differential instead of the
    /// benchmark.
    differential: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut scale = 0.1;
    let mut seeds = 3;
    let mut command = None;
    let mut figure = None;
    let mut csv_dir = None;
    let mut out = None;
    let mut second = None;
    let mut timing = false;
    let mut epoch = None;
    let mut threads = 1;
    let mut threshold_pct = 5.0f64;
    let mut smoke = false;
    let mut differential = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timing" => {
                timing = true;
            }
            "--smoke" => {
                smoke = true;
            }
            "--differential" => {
                differential = true;
            }
            "--epoch" => {
                let v = args.next().ok_or("--epoch needs seconds")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad epoch {v:?}"))?;
                if secs == 0 {
                    return Err("epoch must be positive".into());
                }
                epoch = Some(Duration(secs));
            }
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err("scale must be in (0, 1]".into());
                }
            }
            "--seeds" => {
                let v = args.next().ok_or("--seeds needs a value")?;
                seeds = v.parse().map_err(|_| format!("bad seeds {v:?}"))?;
                if seeds == 0 {
                    return Err("seeds must be positive".into());
                }
            }
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(v));
            }
            "--out" => {
                let v = args.next().ok_or("--out needs a file path")?;
                out = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a count")?;
                threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if threads == 0 {
                    return Err("threads must be positive".into());
                }
            }
            "--threshold-pct" => {
                let v = args.next().ok_or("--threshold-pct needs a percentage")?;
                threshold_pct = v.parse().map_err(|_| format!("bad threshold {v:?}"))?;
                if threshold_pct.is_nan() || threshold_pct < 0.0 {
                    return Err("threshold must be non-negative".into());
                }
            }
            "--help" | "-h" => {
                command = Some("help".to_string());
            }
            other if command.is_none() && !other.starts_with('-') => {
                command = Some(other.to_string());
            }
            other if command.is_some() && figure.is_none() && !other.starts_with('-') => {
                figure = Some(other.to_string());
            }
            other if figure.is_some() && second.is_none() && !other.starts_with('-') => {
                second = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Options {
        scale,
        seeds,
        command: command.unwrap_or_else(|| "help".into()),
        figure,
        second,
        csv_dir,
        out,
        timing,
        epoch,
        threads,
        threshold_pct,
        smoke,
        differential,
    })
}

/// Prints one `--timing` table: events/sec for every (row, column)
/// figure point.
fn print_timings(
    opts: &Options,
    row_label: &str,
    columns: &[String],
    rows: &[(String, Vec<&bench::PointTiming>)],
) {
    if !opts.timing {
        return;
    }
    println!("\n(timing) simulation throughput, events/sec");
    print!("{row_label:>8}");
    for c in columns {
        print!(" {c:>14}");
    }
    println!();
    for (label, timings) in rows {
        print!("{label:>8}");
        for t in timings {
            print!(" {:>14.0}", t.events_per_sec());
        }
        println!();
    }
    // Peak RSS is process-wide, so the max over points is the figure's
    // memory footprint (0 where the platform exposes no high-water mark).
    let peak = rows
        .iter()
        .flat_map(|(_, timings)| timings.iter())
        .map(|t| t.peak_rss_bytes)
        .max()
        .unwrap_or(0);
    if peak > 0 {
        println!(
            "(timing) peak RSS {:.1} MiB",
            peak as f64 / (1 << 20) as f64
        );
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let commands: Vec<&str> = if opts.command == "all" {
        vec![
            "table1", "fig4", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13", "ablation",
            "ncl", "bounds", "churn",
        ]
    } else {
        vec![opts.command.as_str()]
    };
    for cmd in commands {
        match cmd {
            "table1" => table1(&opts),
            "fig4" => fig4(&opts),
            "fig7" => fig7(),
            "fig9" => fig9(&opts),
            "fig10" => fig10(&opts),
            "fig11" => fig11(&opts),
            "fig12" => fig12(&opts),
            "fig13" => fig13(&opts),
            "ablation" => ablation(&opts),
            "ncl" => ncl(&opts),
            "bounds" => bounds(&opts),
            "churn" => churn(&opts),
            "observe" => {
                if let Err(e) = observe(&opts) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "timeline" => {
                if let Err(e) = timeline(&opts) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "compare" => match compare(&opts) {
                Ok(clean) => {
                    if !clean {
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "scale" => {
                if let Err(e) = scale_cmd(&opts) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "parallel" => {
                if let Err(e) = parallel_cmd(&opts) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "regimes" => {
                if let Err(e) = regimes_cmd(&opts) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "serve" => {
                if let Err(e) = serve_cmd(&opts) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "help" => {
                println!(
                    "usage: experiments [--scale F] [--seeds N] [--csv DIR] [--timing] \
                     [--epoch SECS] \
                     <table1|fig4|fig7|fig9|fig10|fig11|fig12|fig13|ablation|ncl|bounds|churn|all>\n\
                     \x20      experiments observe <{targets}> [--out report.jsonl] [--scale F] \
                     [--seeds SEED] [--threads T]\n\
                     \x20      experiments timeline <{targets}> [--out report.jsonl] [--scale F] \
                     [--seeds SEED] [--threads T]\n\
                     \x20      experiments compare <a.jsonl|BENCH_a.json> <b> [--threshold-pct P]\n\
                     \x20      experiments scale [NODES,NODES,...] [--out BENCH_scale.json] \
                     [--threads T]\n\
                     \x20      experiments parallel [NODES] [--out BENCH_parallel_engine.json]\n\
                     \x20      experiments regimes [PROCESS,...] [--out BENCH_regimes.json] \
                     [--scale F] [--seeds N] [--threads T]\n\
                     \x20      experiments serve [--smoke] [--differential] \
                     [--out BENCH_serve.json]",
                    targets = bench::observe::TARGETS.join("|")
                );
            }
            other => {
                eprintln!("error: unknown command {other:?}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn header(title: &str, opts: &Options) {
    println!();
    println!("== {title} (scale {}, {} seeds) ==", opts.scale, opts.seeds);
}

/// Writes one CSV file into the `--csv` directory, if configured.
fn write_csv(opts: &Options, name: &str, header: &str, rows: &[String]) {
    let Some(dir) = &opts.csv_dir else { return };
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    let mut body = String::from(header);
    body.push('\n');
    for row in rows {
        body.push_str(row);
        body.push('\n');
    }
    match fs::write(&path, body) {
        Ok(()) => println!("[csv] wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn table1(opts: &Options) {
    header("Table I: trace summary", opts);
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>14}",
        "trace", "nodes", "contacts", "target", "days", "freq/pair/day"
    );
    for row in figures::table1(opts.scale, 42) {
        println!(
            "{:<12} {:>6} {:>10} {:>10.0} {:>10.1} {:>14.3}",
            row.preset.name(),
            row.stats.nodes,
            row.stats.contacts,
            row.target_contacts,
            row.stats.duration_days,
            row.stats.pairwise_contact_frequency_per_day,
        );
    }
}

fn fig4(opts: &Options) {
    header("Fig. 4: NCL selection metric distribution", opts);
    for series in figures::fig4(opts.scale, 42) {
        let n = series.scores.len();
        let max = series.scores[0].metric;
        let median = series.scores[n / 2].metric;
        println!(
            "{:<12} (T = {}): top metrics {:.3} {:.3} {:.3} {:.3} | median {:.3} | max/median {:.1}x",
            series.preset.name(),
            series.horizon,
            series.scores[0].metric,
            series.scores[1.min(n - 1)].metric,
            series.scores[2.min(n - 1)].metric,
            series.scores[3.min(n - 1)].metric,
            median,
            if median > 0.0 { max / median } else { f64::INFINITY },
        );
    }
}

fn fig7() {
    println!();
    println!("== Fig. 7: probabilistic response sigmoid (p_min=0.45, p_max=0.8, T_q=10h) ==");
    println!("{:>8} {:>8}", "hours", "p_R(t)");
    for (h, p) in figures::fig7() {
        if h.fract() == 0.0 {
            println!("{h:>8.1} {p:>8.3}");
        }
    }
}

fn fig9(opts: &Options) {
    header("Fig. 9(a): amount of data vs T_L (MIT population)", opts);
    println!("{:>8} {:>12} {:>12}", "T_L", "generated", "avg live");
    for row in figures::fig9a(opts.scale, 42) {
        println!(
            "{:>8} {:>12} {:>12.1}",
            row.lifetime.to_string(),
            row.items_generated,
            row.avg_live_items
        );
    }
    println!();
    println!("== Fig. 9(b): Zipf query probabilities (M = 100) ==");
    let series = figures::fig9b();
    print!("{:>4}", "j");
    for (s, _) in &series {
        print!(" {:>9}", format!("s={s}"));
    }
    println!();
    for j in 0..10 {
        print!("{:>4}", j + 1);
        for (_, probs) in &series {
            print!(" {:>9.4}", probs[j]);
        }
        println!();
    }
}

fn comparison_tables(opts: &Options, fig: &str, rows: &[figures::ComparisonRow], x_label: &str) {
    // CSV: one file per sub-figure, schemes as columns.
    for (suffix, field) in [("a_success", 0), ("b_delay_hours", 1), ("c_copies", 2)] {
        let mut csv_rows = Vec::new();
        for row in rows {
            let mut line = row.label.clone();
            for report in &row.reports {
                let v = match field {
                    0 => report.success_ratio,
                    1 => report.avg_delay_hours,
                    _ => report.avg_copies_per_item,
                };
                line.push_str(&format!(",{v:.6}"));
            }
            csv_rows.push(line);
        }
        let header = std::iter::once(x_label.to_string())
            .chain(SchemeKind::ALL.iter().map(|k| k.name().to_string()))
            .collect::<Vec<_>>()
            .join(",");
        write_csv(opts, &format!("{fig}{suffix}.csv"), &header, &csv_rows);
    }

    for (title, field) in [
        ("(a) successful ratio", 0),
        ("(b) data access delay (hours)", 1),
        ("(c) caching overhead (copies/item)", 2),
    ] {
        println!("\n{title}");
        print!("{x_label:>8}");
        for kind in SchemeKind::ALL {
            print!(" {:>12}", kind.name());
        }
        println!();
        for row in rows {
            print!("{:>8}", row.label);
            for report in &row.reports {
                let v = match field {
                    0 => report.success_ratio,
                    1 => report.avg_delay_hours,
                    _ => report.avg_copies_per_item,
                };
                print!(" {v:>12.3}");
            }
            println!();
        }
    }
    let columns: Vec<String> = SchemeKind::ALL
        .iter()
        .map(|k| k.name().to_string())
        .collect();
    let timing_rows: Vec<(String, Vec<&bench::PointTiming>)> = rows
        .iter()
        .map(|row| (row.label.clone(), row.timings.iter().collect()))
        .collect();
    print_timings(opts, x_label, &columns, &timing_rows);
}

fn fig10(opts: &Options) {
    header("Fig. 10: performance vs data lifetime (MIT Reality)", opts);
    let rows = figures::fig10(opts.scale, opts.seeds);
    comparison_tables(opts, "fig10", &rows, "T_L");
}

fn fig11(opts: &Options) {
    header("Fig. 11: performance vs data size (MIT Reality)", opts);
    let rows = figures::fig11(opts.scale, opts.seeds);
    comparison_tables(opts, "fig11", &rows, "s_avg");
}

fn fig12(opts: &Options) {
    header("Fig. 12: cache replacement strategies (MIT Reality)", opts);
    let rows = figures::fig12(opts.scale, opts.seeds);
    for (title, field) in [
        ("(a) successful ratio", 0),
        ("(b) data access delay (hours)", 1),
        ("(c) replacement overhead (ops/item)", 2),
    ] {
        println!("\n{title}");
        print!("{:>8}", "s_avg");
        for kind in ReplacementKind::ALL {
            print!(" {:>18}", kind.name());
        }
        println!();
        for row in &rows {
            print!("{:>8}", row.label);
            for report in &row.reports {
                let v = match field {
                    0 => report.success_ratio,
                    1 => report.avg_delay_hours,
                    _ => report.avg_replacements_per_item,
                };
                print!(" {v:>18.3}");
            }
            println!();
        }
    }
    let columns: Vec<String> = ReplacementKind::ALL
        .iter()
        .map(|k| k.name().to_string())
        .collect();
    let timing_rows: Vec<(String, Vec<&bench::PointTiming>)> = rows
        .iter()
        .map(|row| (row.label.clone(), row.timings.iter().collect()))
        .collect();
    print_timings(opts, "s_avg", &columns, &timing_rows);
}

fn ablation(opts: &Options) {
    header(
        "Ablation: probabilistic selection & response strategy (MIT Reality)",
        opts,
    );
    let sizes = figures::ablation_sizes_mb();
    let rows = figures::ablation(opts.scale, opts.seeds);
    print!("{:<28}", "variant");
    for mb in &sizes {
        print!(
            " {:>12} {:>12}",
            format!("succ@{mb}Mb"),
            format!("delay@{mb}Mb")
        );
    }
    println!();
    for row in &rows {
        print!("{:<28}", row.label);
        for report in &row.reports {
            print!(
                " {:>12.3} {:>12.2}",
                report.success_ratio, report.avg_delay_hours
            );
        }
        println!();
    }
    let columns: Vec<String> = sizes.iter().map(|mb| format!("{mb}Mb")).collect();
    let timing_rows: Vec<(String, Vec<&bench::PointTiming>)> = rows
        .iter()
        .map(|row| (row.label.clone(), row.timings.iter().collect()))
        .collect();
    print_timings(opts, "variant", &columns, &timing_rows);
}

fn bounds(opts: &Options) {
    header(
        "Bounds: the paper's schemes vs epidemic flooding (MIT Reality)",
        opts,
    );
    let rows = figures::bounds(opts.scale, opts.seeds);
    println!(
        "{:<14} {:>10} {:>12} {:>18}",
        "scheme", "success", "delay (h)", "MB/satisfied query"
    );
    for row in &rows {
        println!(
            "{:<14} {:>10.3} {:>12.2} {:>18.1}",
            row.scheme.name(),
            row.report.success_ratio,
            row.report.avg_delay_hours,
            row.report.bytes_per_satisfied_query / 1e6,
        );
    }
    let columns = vec!["events/s".to_string()];
    let timing_rows: Vec<(String, Vec<&bench::PointTiming>)> = rows
        .iter()
        .map(|row| (row.scheme.name().to_string(), vec![&row.timing]))
        .collect();
    print_timings(opts, "scheme", &columns, &timing_rows);
}

fn ncl(opts: &Options) {
    header("NCL selection strategies (§IV design choice)", opts);
    let presets = figures::ncl_study_presets();
    let rows = figures::ncl_strategies(opts.scale, opts.seeds);
    print!("{:<24}", "strategy");
    for p in &presets {
        print!(" {:>14} {:>12}", format!("succ {}", p.name()), "delay (h)");
    }
    println!();
    for row in &rows {
        print!("{:<24}", row.label);
        for report in &row.reports {
            print!(
                " {:>14.3} {:>12.2}",
                report.success_ratio, report.avg_delay_hours
            );
        }
        println!();
    }
    let columns: Vec<String> = presets.iter().map(|p| p.name().to_string()).collect();
    let timing_rows: Vec<(String, Vec<&bench::PointTiming>)> = rows
        .iter()
        .map(|row| (row.label.clone(), row.timings.iter().collect()))
        .collect();
    print_timings(opts, "strategy", &columns, &timing_rows);
}

fn churn(opts: &Options) {
    header(
        "Churn: NCL re-election cadence on a regime-shift trace",
        opts,
    );
    let rows = match opts.epoch {
        Some(d) => figures::churn_with(opts.scale, opts.seeds, vec![None, Some(d)]),
        None => figures::churn(opts.scale, opts.seeds),
    };
    println!(
        "{:<8} {:>10} {:>12} {:>14}",
        "epoch", "success", "delay (h)", "copies/item"
    );
    for row in &rows {
        println!(
            "{:<8} {:>10.3} {:>12.2} {:>14.3}",
            row.label,
            row.report.success_ratio,
            row.report.avg_delay_hours,
            row.report.avg_copies_per_item,
        );
    }
    let csv_rows: Vec<String> = rows
        .iter()
        .map(|row| {
            format!(
                "{},{},{:.6},{:.6},{:.6}",
                row.label,
                row.epoch_interval.map_or(0, |d| d.as_secs()),
                row.report.success_ratio,
                row.report.avg_delay_hours,
                row.report.avg_copies_per_item,
            )
        })
        .collect();
    write_csv(
        opts,
        "churn.csv",
        "epoch,epoch_secs,success_ratio,delay_hours,copies_per_item",
        &csv_rows,
    );
    let columns = vec!["events/s".to_string()];
    let timing_rows: Vec<(String, Vec<&bench::PointTiming>)> = rows
        .iter()
        .map(|row| (row.label.clone(), vec![&row.timing]))
        .collect();
    print_timings(opts, "epoch", &columns, &timing_rows);
}

/// Runs the shared capture behind `observe`/`timeline`: one fully
/// instrumented run of the named target, JSONL export via `--out`.
fn captured_run(opts: &Options, command: &str) -> Result<bench::observe::ObserveRun, String> {
    let target = opts.figure.as_deref().ok_or_else(|| {
        format!(
            "{command} needs a target: one of {}",
            bench::observe::TARGETS.join(", ")
        )
    })?;
    let run = bench::observe::observe_any(target, opts.scale, u64::from(opts.seeds), opts.threads)?;
    if let Some(path) = &opts.out {
        let lines = bench::observe::write_jsonl_file(&run, path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("[jsonl] wrote {lines} lines to {}", path.display());
    }
    Ok(run)
}

/// The `observe <target>` command: one probe-instrumented run, JSONL
/// export via `--out`, post-mortem on stdout. `--seeds` picks the seed
/// of the single observed run.
fn observe(opts: &Options) -> Result<(), String> {
    let run = captured_run(opts, "observe")?;
    print!("{}", bench::observe::render_report(&run));
    Ok(())
}

/// The `timeline <target>` command: the same capture as `observe`, but
/// rendered as the windowed over-time table plus the phase profile.
fn timeline(opts: &Options) -> Result<(), String> {
    let run = captured_run(opts, "timeline")?;
    print!("{}", bench::observe::render_timeline(&run));
    Ok(())
}

/// The `compare <a> <b>` command. `Ok(true)` means no regression;
/// `Ok(false)` prints the report and fails the process.
fn compare(opts: &Options) -> Result<bool, String> {
    let a = opts
        .figure
        .as_deref()
        .ok_or("compare needs two run files")?;
    let b = opts
        .second
        .as_deref()
        .ok_or("compare needs two run files")?;
    let report = bench::compare::compare_files(
        std::path::Path::new(a),
        std::path::Path::new(b),
        opts.threshold_pct,
    )?;
    print!("{}", report.render());
    Ok(!report.has_regressions())
}

/// The `scale` command: city-scale streaming runs over a comma-
/// separated node-count list (default `10000,100000`; counts of 500k
/// and up use the thinned smoke preset), plus one fully-audited
/// 2000-node case. Emits the `BENCH_scale.json` document to `--out`
/// or stdout and fails if the audited case reports violations.
fn scale_cmd(opts: &Options) -> Result<(), String> {
    use bench::scale::{run_scale, ScaleConfig};
    let sizes: Vec<usize> = opts
        .figure
        .as_deref()
        .unwrap_or("10000,100000")
        .split(',')
        .map(|s| {
            s.trim()
                .replace('_', "")
                .parse::<usize>()
                .map_err(|_| format!("bad node count {s:?}"))
        })
        .collect::<Result<_, _>>()?;
    let mib = |bytes: u64| bytes as f64 / (1 << 20) as f64;
    let mut runs = Vec::new();
    for &nodes in &sizes {
        let smoke = nodes >= 500_000;
        let mut cfg = if smoke {
            ScaleConfig::city(nodes).smoke()
        } else {
            ScaleConfig::city(nodes)
        };
        cfg.threads = opts.threads;
        cfg.batch_stats = opts.threads > 1;
        eprintln!(
            "[scale] {nodes} nodes ({})...",
            if smoke { "smoke" } else { "city" }
        );
        let report = run_scale(&cfg);
        eprintln!(
            "[scale] {nodes}: {} contacts, {:.0} contacts/s, peak RSS {:.1} MiB",
            report.contacts,
            report.contacts_per_sec,
            mib(report.peak_rss_bytes),
        );
        runs.push((smoke, report));
    }
    eprintln!("[scale] audited 2000-node case...");
    let audited = run_scale(&ScaleConfig {
        audit: true,
        threads: opts.threads,
        ..ScaleConfig::city(2_000)
    });
    let (sweeps, violations) = audited.audit.expect("audit was enabled");
    eprintln!("[scale] audit: {sweeps} sweeps, {violations} violations");

    let mut doc = String::from(
        "{\n  \"benchmark\": \"crates/bench/src/scale.rs\",\n  \
         \"command\": \"cargo run --release -p bench --bin experiments -- scale\",\n  \
         \"runs\": [\n",
    );
    for (i, (smoke, report)) in runs.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\n      \"preset\": \"{}\",\n      \"report\":\n{}\n    }}{}\n",
            if *smoke { "smoke" } else { "city" },
            report.to_json(6),
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    doc.push_str("  ],\n  \"audited_case\":\n");
    doc.push_str(&audited.to_json(2));
    // Memory/throughput hot spots found while bringing the city-scale
    // path up, with before/after measurements (single-core container,
    // 30k-node city run unless stated). Static text: it documents the
    // engine the numbers above were taken on.
    doc.push_str(
        ",\n  \"memory_notes\": [\n    \
         \"peak_rss_bytes is VmHWM: the process-lifetime high-water mark. Runs execute in ascending size, so each run's value is its own peak, but the trailing audited_case inherits the largest run's.\",\n    \
         \"sparse-reach cache resized from 4096 fixed slots to one slot per node: direct-mapped collisions had nearly every forwarding decision recompute a bounded Dijkstra; 10k-node city run went 17314 -> 28396 contacts/s.\",\n    \
         \"oracle wall-clock refresh pinned to the trace duration in the scale harness (generation-doubling rebuilds still fire): each snapshot rebuild invalidates all ~N cached reaches, and recomputing them dominated the measured phase; 30k-node city run went 6534 -> 15275 contacts/s (measured phase 114.5s -> 48.8s).\",\n    \
         \"Metrics::delays_secs bounded by SimConfig::max_delay_samples (default 65536), so delay sampling is O(cap) not O(delivered queries) at city scale.\",\n    \
         \"CommunityPartition stores members/offsets as flat u32 CSR arrays (no per-community Vec allocations); RateTable switches to sparse pair storage above its density threshold, keeping per-contact updates allocation-free at 100k+ nodes.\"\n  ]\n}\n",
    );
    match &opts.out {
        Some(path) => {
            fs::write(path, &doc).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("[scale] wrote {}", path.display());
        }
        None => print!("{doc}"),
    }
    if violations > 0 {
        return Err(format!("audited scale case found {violations} violations"));
    }
    Ok(())
}

/// The `serve` command: the open-loop serving benchmark
/// (`BENCH_serve.json`) or, with `--differential`, the serve-vs-engine
/// equivalence check. `--smoke` runs only the CI-sized configuration —
/// its deterministic `_exact`/`_checksum` keys must reproduce the
/// committed baseline bit-identically on any machine, while the
/// wall-clock numbers are informational (CI never gates wall clock).
fn serve_cmd(opts: &Options) -> Result<(), String> {
    use bench::serve::{run_serve_bench, run_serve_differential, ServeBenchConfig};
    if opts.differential {
        eprintln!("[serve] differential: serve vs engine on a shared trace...");
        let problems = run_serve_differential(&ServeBenchConfig::smoke());
        if problems.is_empty() {
            println!("[serve] differential OK: decisions bit-identical to the engine kernel");
            return Ok(());
        }
        for p in &problems {
            eprintln!("[serve] MISMATCH: {p}");
        }
        return Err(format!(
            "serve differential found {} mismatches",
            problems.len()
        ));
    }

    eprintln!("[serve] smoke configuration...");
    let smoke = run_serve_bench("smoke", &ServeBenchConfig::smoke());
    eprintln!(
        "[serve] smoke: {} decisions, sustained {:.0}/s, service p99 {:.1}us, checksum {}",
        smoke.decisions,
        smoke.sustained_per_sec,
        smoke.service_p99_ns as f64 / 1e3,
        smoke.decision_checksum,
    );
    let full = if opts.smoke {
        None
    } else {
        eprintln!("[serve] full configuration...");
        let full = run_serve_bench("full", &ServeBenchConfig::full());
        eprintln!(
            "[serve] full: {} decisions, sustained {:.0}/s, service p99 {:.1}us",
            full.decisions,
            full.sustained_per_sec,
            full.service_p99_ns as f64 / 1e3,
        );
        Some(full)
    };

    let mut doc = String::from(
        "{\n  \"benchmark\": \"crates/bench/src/serve.rs\",\n  \
         \"command\": \"cargo run --release -p bench --bin experiments -- serve\",\n  \
         \"results\": {\n    \"smoke\":\n",
    );
    doc.push_str(&smoke.to_json(4, true));
    if let Some(full) = &full {
        doc.push_str(",\n    \"full\":\n");
        doc.push_str(&full.to_json(4, false));
    }
    doc.push_str(
        "\n  },\n  \"notes\": [\n    \
         \"Latency is open-loop: measured per-decision service times replayed against a virtual wall cursor, so queueing delay behind slow decisions is included and the percentiles are free of coordinated omission.\",\n    \
         \"smoke.*_exact and smoke.decision_checksum are the determinism contract: a fresh `experiments serve --smoke` on any machine must reproduce them bit-identically (gated by `experiments compare`).\",\n    \
         \"Wall-clock keys (_usec, per_wall_second) are informational; their names deliberately match no compare gate direction because CI machines differ from the machine that produced the committed numbers.\",\n    \
         \"Target: the full sweep's 2000/s offered point must hold open-loop p99 within the 1 ms latency budget on the reference machine; the saturation knee (achieved < offered) marks sustained capacity. See EXPERIMENTS.md for the recorded table.\"\n  ]\n}\n",
    );
    match &opts.out {
        Some(path) => {
            fs::write(path, &doc).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("[serve] wrote {}", path.display());
        }
        None => print!("{doc}"),
    }
    Ok(())
}

/// The `parallel` command: thread-count scaling curve of the windowed
/// executor. Runs the city-scale point (default 10000 nodes, override
/// with a positional count) at 1/2/4/8 threads with batch statistics
/// on, plus one fig10 point serial vs 4 threads, asserts each parallel
/// run reproduced its serial baseline, and emits the
/// `BENCH_parallel_engine.json` document to `--out` or stdout.
fn parallel_cmd(opts: &Options) -> Result<(), String> {
    use bench::scale::{run_scale, ScaleConfig};
    let nodes: usize = match opts.figure.as_deref() {
        Some(s) => s
            .trim()
            .replace('_', "")
            .parse()
            .map_err(|_| format!("bad node count {s:?}"))?,
        None => 10_000,
    };
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    const CURVE: [usize; 4] = [1, 2, 4, 8];

    let mut runs = Vec::new();
    for threads in CURVE {
        eprintln!("[parallel] {nodes} nodes, {threads} thread(s)...");
        let report = run_scale(&ScaleConfig {
            threads,
            batch_stats: true,
            ..ScaleConfig::city(nodes)
        });
        eprintln!(
            "[parallel] {threads} thread(s): measured {:.1}s, {:.0} contacts/s{}",
            report.measured_secs,
            report.contacts_per_sec,
            report.parallel.as_ref().map_or(String::new(), |p| format!(
                ", mean batch width {:.2}",
                p.mean_batch_width()
            )),
        );
        runs.push(report);
    }
    // The equivalence contract, checked on the real scale point: every
    // parallel run must land on the serial run's exact outcome.
    let serial = &runs[0];
    for report in &runs[1..] {
        let identical = report.contacts == serial.contacts
            && report.queries_issued == serial.queries_issued
            && report.success_ratio.to_bits() == serial.success_ratio.to_bits()
            && report.central_nodes == serial.central_nodes;
        if !identical {
            return Err(format!(
                "{} threads diverged from serial at {nodes} nodes",
                report.threads
            ));
        }
    }

    eprintln!("[parallel] fig10 point, serial vs 4 threads...");
    let mut fig10_runs = Vec::new();
    for threads in [1usize, 4] {
        let started = std::time::Instant::now();
        let run = bench::observe::observe_figure_threaded(
            "fig10",
            opts.scale,
            u64::from(opts.seeds),
            threads,
        )?;
        fig10_runs.push((threads, started.elapsed().as_secs_f64(), run));
    }
    let (_, _, fig10_serial) = &fig10_runs[0];
    for (threads, _, run) in &fig10_runs[1..] {
        if run.metrics != fig10_serial.metrics || run.ncl_query_load != fig10_serial.ncl_query_load
        {
            return Err(format!("{threads} threads diverged from serial on fig10"));
        }
    }

    let mut doc = format!(
        "{{\n  \"benchmark\": \"windowed parallel executor (SimConfig::threads)\",\n  \
         \"command\": \"cargo run --release -p bench --bin experiments -- parallel --out \
         BENCH_parallel_engine.json\",\n  \
         \"host_cores\": {cores},\n  \
         \"scale_point\": {{\n    \"nodes\": {nodes},\n    \"bit_identical_to_serial\": true,\n    \
         \"runs\": [\n"
    );
    for (i, report) in runs.iter().enumerate() {
        doc.push_str(&format!(
            "      {{\n        \"report\":\n{}\n      }}{}\n",
            report.to_json(8),
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    doc.push_str("    ]\n  },\n  \"fig10_point\": {\n");
    doc.push_str(&format!(
        "    \"scale\": {},\n    \"seed\": {},\n    \"metrics_identical_to_serial\": true,\n    \
         \"runs\": [\n",
        opts.scale, opts.seeds
    ));
    for (i, (threads, wall_secs, run)) in fig10_runs.iter().enumerate() {
        let p = run.probe.parallel_counters();
        let parallel = if p.windows > 0 {
            format!(
                "{{\"windows\": {}, \"contacts\": {}, \"batches\": {}, \"widest\": {}, \
                 \"mean_batch_width\": {:.4}, \"conflict_rate\": {:.4}}}",
                p.windows,
                p.contacts,
                p.batches,
                p.widest,
                p.mean_batch_width(),
                p.conflict_rate(),
            )
        } else {
            "null".into()
        };
        doc.push_str(&format!(
            "      {{\"threads\": {}, \"wall_secs\": {:.3}, \"queries_satisfied\": {}, \
             \"parallel\": {}}}{}\n",
            threads,
            wall_secs,
            run.metrics.queries_satisfied,
            parallel,
            if i + 1 < fig10_runs.len() { "," } else { "" },
        ));
    }
    doc.push_str(
        "    ]\n  },\n  \"notes\": [\n    \
         \"host_cores is std::thread::available_parallelism at measurement time; wall-clock \
         speedup is bounded by it. On a single-core host the curve measures executor overhead, \
         not speedup -- mean_batch_width and conflict_rate report the parallelism the batcher \
         exposes for multi-core hosts.\",\n    \
         \"bit_identical_to_serial is asserted by this command (contacts, queries, success-ratio \
         bits, elected NCLs); the full probe-stream equivalence lives in \
         tests/parallel_equivalence.rs and simcheck --threads.\",\n    \
         \"every run has batch_stats on (a counters-only probe) so thread counts pay symmetric \
         instrumentation overhead; threads=1 reports parallel: null because the serial engine \
         never forms windows.\"\n  ]\n}\n",
    );
    match &opts.out {
        Some(path) => {
            fs::write(path, &doc).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("[parallel] wrote {}", path.display());
        }
        None => print!("{doc}"),
    }
    Ok(())
}

/// The `regimes` command: the hostile-regime matrix (contact process ×
/// overlay × NCL-maintenance policy). An optional positional narrows
/// the process list (comma-separated kebab-case names); every overlay
/// slot always runs. Emits the `BENCH_regimes.json` document to `--out`
/// or stdout and fails if any audited run reports violations.
fn regimes_cmd(opts: &Options) -> Result<(), String> {
    use bench::regimes::{report_to_json, run_regime_matrix, RegimeMatrixConfig};
    use dtn_trace::process::ContactProcessKind;
    let processes: Vec<ContactProcessKind> = match opts.figure.as_deref() {
        Some(list) => list
            .split(',')
            .map(|s| {
                let name = s.trim();
                ContactProcessKind::parse(name).ok_or_else(|| {
                    format!(
                        "unknown process {name:?}; known: {}",
                        ContactProcessKind::ALL
                            .iter()
                            .map(|k| k.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
            })
            .collect::<Result<_, _>>()?,
        None => ContactProcessKind::ALL.to_vec(),
    };
    let cfg = RegimeMatrixConfig {
        scale: opts.scale,
        seeds: opts.seeds,
        processes,
        threads: opts.threads,
        ..RegimeMatrixConfig::default()
    };
    eprintln!(
        "[regimes] {} processes x {} overlays x {{frozen, adaptive}}, {} seed(s), scale {}...",
        cfg.processes.len(),
        cfg.overlays.len(),
        cfg.seeds,
        cfg.scale,
    );
    let report = run_regime_matrix(&cfg);
    for cell in &report.cells {
        eprintln!(
            "[regimes] {:>17} x {:<13} frozen {:.3} adaptive {:.3} (recovery {:+.3})",
            cell.process.name(),
            cell.overlay,
            cell.frozen.success_ratio,
            cell.adaptive.success_ratio,
            cell.recovery(),
        );
    }
    let violations = report.total_violations();
    let doc = report_to_json(&report);
    match &opts.out {
        Some(path) => {
            fs::write(path, &doc).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!("[regimes] wrote {}", path.display());
        }
        None => print!("{doc}"),
    }
    if violations > 0 {
        return Err(format!("audited regime runs found {violations} violations"));
    }
    Ok(())
}

fn fig13(opts: &Options) {
    header("Fig. 13: impact of the number of NCLs (Infocom06)", opts);
    let sizes = figures::fig13_sizes_mb();
    let rows = figures::fig13(opts.scale, opts.seeds);
    for (title, field) in [
        ("(a) successful ratio", 0),
        ("(b) data access delay (hours)", 1),
        ("(c) caching overhead (copies/item)", 2),
    ] {
        println!("\n{title}");
        print!("{:>4}", "K");
        for mb in &sizes {
            print!(" {:>12}", format!("s_avg={mb}Mb"));
        }
        println!();
        for row in &rows {
            print!("{:>4}", row.ncl_count);
            for report in &row.reports {
                let v = match field {
                    0 => report.success_ratio,
                    1 => report.avg_delay_hours,
                    _ => report.avg_copies_per_item,
                };
                print!(" {v:>12.3}");
            }
            println!();
        }
    }
    let columns: Vec<String> = sizes.iter().map(|mb| format!("s_avg={mb}Mb")).collect();
    let timing_rows: Vec<(String, Vec<&bench::PointTiming>)> = rows
        .iter()
        .map(|row| (row.ncl_count.to_string(), row.timings.iter().collect()))
        .collect();
    print_timings(opts, "K", &columns, &timing_rows);
}
