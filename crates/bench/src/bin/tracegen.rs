//! Generate calibrated synthetic contact traces as CSV.
//!
//! ```text
//! tracegen --preset mit-reality --scale 0.1 --seed 7 --out trace.csv
//! tracegen --nodes 50 --days 3 --contacts 20000 --out trace.csv
//! tracegen --preset infocom06 --analyze        # print stats instead
//! ```

use std::env;
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use dtn_core::time::Duration;
use dtn_trace::analysis::{aggregate_intercontact_times, ccdf, fit_exponential};
use dtn_trace::io::write_trace;
use dtn_trace::stats::{metric_distribution, TraceStats};
use dtn_trace::synthetic::SyntheticTraceBuilder;
use dtn_trace::TracePreset;

struct Options {
    preset: Option<TracePreset>,
    nodes: usize,
    days: f64,
    contacts: u64,
    scale: f64,
    seed: u64,
    out: Option<String>,
    analyze: bool,
}

fn parse_preset(name: &str) -> Option<TracePreset> {
    match name.to_ascii_lowercase().as_str() {
        "infocom05" => Some(TracePreset::Infocom05),
        "infocom06" => Some(TracePreset::Infocom06),
        "mit-reality" | "mit" => Some(TracePreset::MitReality),
        "ucsd" => Some(TracePreset::Ucsd),
        _ => None,
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        preset: None,
        nodes: 40,
        days: 2.0,
        contacts: 20_000,
        scale: 1.0,
        seed: 0,
        out: None,
        analyze: false,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--preset" => {
                let v = value("--preset")?;
                opts.preset = Some(parse_preset(&v).ok_or(format!("unknown preset {v:?}"))?);
            }
            "--nodes" => opts.nodes = value("--nodes")?.parse().map_err(|e| format!("{e}"))?,
            "--days" => opts.days = value("--days")?.parse().map_err(|e| format!("{e}"))?,
            "--contacts" => {
                opts.contacts = value("--contacts")?.parse().map_err(|e| format!("{e}"))?
            }
            "--scale" => opts.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--out" => opts.out = Some(value("--out")?),
            "--analyze" => opts.analyze = true,
            "--help" | "-h" => {
                println!(
                    "usage: tracegen [--preset NAME | --nodes N --days D --contacts C] \
                     [--scale F] [--seed S] [--out FILE] [--analyze]\n\
                     presets: infocom05 infocom06 mit-reality ucsd"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.out.is_none() && !opts.analyze {
        return Err("need --out FILE and/or --analyze".into());
    }
    Ok(opts)
}

/// Renders a log-scale CCDF as a small ASCII plot.
fn render_ccdf(points: &[(f64, f64)]) {
    const WIDTH: usize = 50;
    const ROWS: usize = 8;
    let usable: Vec<(f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(t, p)| t > 0.0 && p > 0.0)
        .collect();
    if usable.len() < 3 {
        return;
    }
    let t_min = usable.first().expect("non-empty").0.ln();
    let t_max = usable.last().expect("non-empty").0.ln();
    if t_max <= t_min {
        return;
    }
    println!("inter-contact CCDF (log t →, log P ↓):");
    // Rows: log-probability from 1 down to the smallest observed.
    let p_floor = usable
        .iter()
        .map(|&(_, p)| p)
        .fold(f64::INFINITY, f64::min)
        .ln();
    for row in 0..ROWS {
        let p_hi = (row as f64 / ROWS as f64) * p_floor;
        let p_lo = ((row + 1) as f64 / ROWS as f64) * p_floor;
        let mut line = vec![' '; WIDTH];
        for &(t, p) in &usable {
            let lp = p.ln();
            if lp <= p_hi && lp > p_lo {
                let x =
                    (((t.ln() - t_min) / (t_max - t_min)) * (WIDTH - 1) as f64).round() as usize;
                line[x.min(WIDTH - 1)] = '*';
            }
        }
        println!("  |{}|", line.into_iter().collect::<String>());
    }
    println!(
        "   t from {:.0}s to {:.0}s",
        usable.first().expect("non-empty").0,
        usable.last().expect("non-empty").0
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let builder = match opts.preset {
        Some(preset) => SyntheticTraceBuilder::from_preset(preset),
        None => SyntheticTraceBuilder::new(opts.nodes)
            .duration(Duration((opts.days * 86_400.0) as u64))
            .target_contacts(opts.contacts),
    };
    let trace = builder.scale(opts.scale).seed(opts.seed).build();

    if let Some(path) = &opts.out {
        let file = match File::create(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = write_trace(&trace, BufWriter::new(file)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} contacts to {path}", trace.contact_count());
    }

    if opts.analyze {
        println!("{}", TraceStats::compute(&trace));
        let horizon = opts
            .preset
            .map_or(Duration::hours(6), TracePreset::ncl_horizon);
        let dist = metric_distribution(&trace, horizon.as_secs_f64());
        let max = dist.first().map_or(0.0, |s| s.metric);
        let median = dist[dist.len() / 2].metric;
        println!(
            "NCL metric at T = {horizon}: max {max:.3}, median {median:.3}, top nodes: {}",
            dist.iter()
                .take(5)
                .map(|s| s.node.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        let gaps = aggregate_intercontact_times(&trace);
        match fit_exponential(&gaps) {
            Some(fit) => {
                println!(
                    "inter-contact fit: λ = {:.3e}/s (mean {:.0}s), log-CCDF R² = {:.3} over {} gaps",
                    fit.rate, fit.mean_secs, fit.log_ccdf_r2, fit.samples
                );
                render_ccdf(&ccdf(&gaps));
            }
            None => println!("inter-contact fit: too few samples"),
        }
    }
    ExitCode::SUCCESS
}
