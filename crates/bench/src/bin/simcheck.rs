//! Randomized invariant fuzzer over the simulation engine.
//!
//! ```text
//! simcheck [--seeds N] [--seed BASE] [--streaming M] [--threads T]
//!          [--process <name|all>]
//! ```
//!
//! Runs `N` seeds (default 32) starting at `BASE` (default 0). Each
//! seed derives a full experiment case, runs it with every audit law
//! enabled, and — for epoch-free cases — compares the optimized
//! intentional scheme against the reference implementation bit for
//! bit. Failures are shrunk to a minimal reproducer and the process
//! exits non-zero.
//!
//! `--streaming M` additionally runs `M` mid-size streaming/CSR cases
//! (see `bench::simcheck::run_streaming_case`): streamed contacts must
//! reproduce the materialized run bit for bit, and the city-scale mode
//! (community-scoped NCL selection + bounded-reach oracle) must hold
//! every audit law.
//!
//! `--process <name|all>` reruns every main-batch seed on traces
//! generated under the named non-Poisson contact process, with a
//! seed-derived hostile overlay (flash crowd, NCL blackout, partition,
//! or buffer famine) filtering the contact stream and injecting its
//! workload. `all` covers every non-Poisson process. Both schemes see
//! the identical overlaid stream, so epoch-free cases keep the
//! optimized-vs-reference differential.
//!
//! `--threads T` (T ≥ 2) reruns every main-batch seed as a
//! serial-vs-`T`-thread differential: the windowed parallel executor
//! must reproduce the serial run's metrics, per-NCL query load and
//! probe event stream bit for bit (modulo its own `parallel_window`
//! planning events).

use std::env;
use std::process::ExitCode;

use bench::simcheck::{
    check_parallel_seed, check_process_seed, check_seed, check_streaming_seed, CaseParams,
};
use dtn_trace::process::ContactProcessKind;

struct Options {
    seeds: u64,
    base: u64,
    streaming: u64,
    threads: usize,
    /// Non-Poisson contact processes to fuzz (`--process <name|all>`).
    processes: Vec<ContactProcessKind>,
}

fn parse_args() -> Result<Options, String> {
    let mut seeds = 32;
    let mut base = 0;
    let mut streaming = 0;
    let mut threads = 0;
    let mut processes = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = args.next().ok_or("--seeds needs a count")?;
                seeds = v.parse().map_err(|_| format!("bad seed count {v:?}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a base seed")?;
                base = v.parse().map_err(|_| format!("bad base seed {v:?}"))?;
            }
            "--streaming" => {
                let v = args.next().ok_or("--streaming needs a count")?;
                streaming = v
                    .parse()
                    .map_err(|_| format!("bad streaming count {v:?}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a count")?;
                threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if threads < 2 {
                    return Err("--threads needs at least 2".into());
                }
            }
            "--process" => {
                let v = args.next().ok_or("--process needs a name or 'all'")?;
                if v == "all" {
                    // Poisson is the main batch's law; the process batch
                    // exists for everything else.
                    processes.extend(
                        ContactProcessKind::ALL
                            .into_iter()
                            .filter(|k| *k != ContactProcessKind::Poisson),
                    );
                } else {
                    let kind = ContactProcessKind::parse(&v).ok_or_else(|| {
                        format!(
                            "unknown process {v:?}; known: all, {}",
                            ContactProcessKind::ALL
                                .iter()
                                .map(|k| k.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })?;
                    processes.push(kind);
                }
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Options {
        seeds,
        base,
        streaming,
        threads,
        processes,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("simcheck: {msg}");
            eprintln!(
                "usage: simcheck [--seeds N] [--seed BASE] [--streaming M] [--threads T] \
                 [--process <name|all>]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0u64;
    let mut sweeps = 0u64;
    let mut differentials = 0u64;
    for seed in opts.base..opts.base + opts.seeds {
        match check_seed(seed) {
            Ok(stats) => {
                sweeps += stats.sweeps;
                differentials += u64::from(stats.differential);
                println!(
                    "seed {seed:>4}: clean ({} sweeps{})",
                    stats.sweeps,
                    if stats.differential {
                        ", differential"
                    } else {
                        ", audit-only"
                    }
                );
            }
            Err(failure) => {
                failures += 1;
                println!("seed {seed:>4}: FAILED");
                println!("  {failure}");
                println!("  original case: {}", CaseParams::from_seed(seed));
            }
        }
    }
    for seed in opts.base..opts.base + opts.streaming {
        match check_streaming_seed(seed) {
            Ok(stats) => {
                sweeps += stats.sweeps;
                differentials += 1;
                println!(
                    "streaming seed {seed:>4}: clean ({} sweeps, stream == trace)",
                    stats.sweeps
                );
            }
            Err(failure) => {
                failures += 1;
                println!("streaming seed {seed:>4}: FAILED");
                println!("  {failure}");
            }
        }
    }
    let mut process_cases = 0u64;
    for &process in &opts.processes {
        for seed in opts.base..opts.base + opts.seeds {
            process_cases += 1;
            match check_process_seed(seed, process) {
                Ok(stats) => {
                    sweeps += stats.sweeps;
                    differentials += u64::from(stats.differential);
                    println!(
                        "process {:<17} seed {seed:>4}: clean ({} sweeps{})",
                        process.name(),
                        stats.sweeps,
                        if stats.differential {
                            ", differential"
                        } else {
                            ", audit-only"
                        }
                    );
                }
                Err(failure) => {
                    failures += 1;
                    println!("process {:<17} seed {seed:>4}: FAILED", process.name());
                    println!("  {failure}");
                    println!("  original case: {}", CaseParams::from_seed(seed));
                }
            }
        }
    }
    if opts.threads >= 2 {
        for seed in opts.base..opts.base + opts.seeds {
            match check_parallel_seed(seed, opts.threads) {
                Ok(stats) => {
                    sweeps += stats.sweeps;
                    differentials += 1;
                    println!(
                        "parallel seed {seed:>4}: clean ({} sweeps, {}-thread == serial)",
                        stats.sweeps, opts.threads
                    );
                }
                Err(failure) => {
                    failures += 1;
                    println!("parallel seed {seed:>4}: FAILED");
                    println!("  {failure}");
                    println!("  original case: {}", CaseParams::from_seed(seed));
                }
            }
        }
    }
    println!(
        "simcheck: {} seeds + {} streaming{}{}, {failures} failures, {sweeps} audit sweeps, \
         {differentials} differential cases",
        opts.seeds,
        opts.streaming,
        if process_cases > 0 {
            format!(
                " + {} process/overlay ({} processes)",
                process_cases,
                opts.processes.len()
            )
        } else {
            String::new()
        },
        if opts.threads >= 2 {
            format!(" + {} parallel ({} threads)", opts.seeds, opts.threads)
        } else {
            String::new()
        }
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
