//! The `observe`/`timeline` capture layer: one fully-instrumented
//! experiment run behind one versioned JSONL emitter.
//!
//! Re-runs a figure's base configuration (intentional scheme, same
//! warm-up → configure → workload protocol as
//! [`dtn_cache::experiment::run_experiment`]) with a
//! [`RecordingProbe`] *and* a windowed [`Telemetry`] recorder tee'd
//! onto the probe layer, plus the hierarchical phase profiler, then
//!
//! - streams the capture as versioned JSONL (`--out PATH`): a
//!   [`RUN_SCHEMA`] header, every probe event, every assembled query
//!   trace, the telemetry window series, the phase-profile rows, and a
//!   totals footer the `experiments compare` harness aligns runs by;
//! - renders a human-readable post-mortem ([`render_report`]) or the
//!   over-time timeline view ([`render_timeline`]).
//!
//! [`observe_any`] is the single entry point every subcommand routes
//! through: the five figures plus the `regimes` blackout cell and the
//! `scale` streaming smoke run, so every target shares the emitter.
//!
//! The probe is installed *after* `configure` for figure runs, so the
//! export covers the measurement phase only — the phase every figure
//! reports on. (`scale` captures from t=0: its warm-up half is part of
//! what the streaming timeline is for.)

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::Path;
use std::rc::Rc;

use dtn_cache::experiment::{build_scheme, ExperimentConfig};
use dtn_cache::{NetworkSetup, SchemeKind};
use dtn_core::ids::NodeId;
use dtn_core::time::{Duration, Time};
use dtn_sim::engine::{SimConfig, Simulator};
use dtn_sim::metrics::Metrics;
use dtn_sim::probe::{ProbeEvent, QueryTrace, RecordingProbe, TeeProbe};
use dtn_sim::profiler::ProfileReport;
use dtn_sim::telemetry::{Telemetry, TelemetryConfig};
use dtn_trace::synthetic::regime_shift_trace;
use dtn_trace::trace::ContactTrace;
use dtn_trace::TracePreset;
use dtn_workload::{Workload, WorkloadConfig};

use crate::figures::{mit_config, preset_trace};

/// Version tag of the JSONL run capture (header + footer layout).
/// `dtn-observe/1` was the unversioned header-only format; `compare`
/// still parses it.
pub const RUN_SCHEMA: &str = "dtn-observe/2";

/// Telemetry windows a capture folds its measurement phase into.
pub const TIMELINE_WINDOWS: u64 = 24;

/// Everything one instrumented run produced.
#[derive(Debug)]
pub struct ObserveRun {
    /// The figure whose base configuration ran (or `regimes`/`scale`).
    pub figure: String,
    /// The scheme that ran (always the intentional scheme today).
    pub scheme: SchemeKind,
    /// Workload/protocol seed.
    pub seed: u64,
    /// Engine metrics of the run.
    pub metrics: Metrics,
    /// The recorder with events, traces, counters and histograms.
    pub probe: RecordingProbe,
    /// The windowed flight recorder tee'd onto the same event stream.
    pub telemetry: Telemetry,
    /// The hierarchical phase profile of the run.
    pub profile: Option<ProfileReport>,
    /// Central nodes after the run (reflects re-elections).
    pub central_nodes: Vec<NodeId>,
    /// Queries that arrived at each central node, by NCL index.
    pub ncl_query_load: Vec<u64>,
}

/// The figures `observe` knows base configurations for.
pub const FIGURES: [&str; 5] = ["fig10", "fig11", "fig12", "fig13", "churn"];

/// Every target [`observe_any`] accepts: the figures plus the hostile-
/// regime blackout cell and the city-scale streaming smoke run.
pub const TARGETS: [&str; 7] = [
    "fig10", "fig11", "fig12", "fig13", "churn", "regimes", "scale",
];

/// The trace and base configuration behind one figure, at `scale`.
fn figure_setup(figure: &str, scale: f64, seed: u64) -> Option<(ContactTrace, ExperimentConfig)> {
    match figure {
        // The three MIT Reality sweeps share one base point.
        "fig10" | "fig11" | "fig12" => Some((
            preset_trace(TracePreset::MitReality, scale, 42),
            mit_config(scale),
        )),
        "fig13" => {
            let lifetime = Duration((Duration::hours(3).as_secs() as f64 * scale) as u64)
                .max(Duration::minutes(30));
            Some((
                preset_trace(TracePreset::Infocom06, scale, 42),
                ExperimentConfig {
                    ncl_count: TracePreset::Infocom06.default_ncl_count(),
                    mean_data_lifetime: lifetime,
                    ..ExperimentConfig::default()
                },
            ))
        }
        // The churn study's regime-shift trace with online re-election:
        // exercises epoch, re-election and oracle-invalidation events.
        "churn" => {
            let s = scale.max(0.05);
            let half =
                Duration((Duration::days(2).as_secs() as f64 * s) as u64).max(Duration::hours(4));
            let trace = regime_shift_trace(30, (10_000.0 * s) as u64, 42, half);
            let cfg = ExperimentConfig {
                ncl_count: 4,
                mean_data_lifetime: Duration((half.as_secs() as f64 * 0.9) as u64),
                epoch_interval: Some(
                    Duration((half.as_secs() as f64 * 0.25) as u64).max(Duration::minutes(30)),
                ),
                ..ExperimentConfig::default()
            };
            Some((trace, cfg))
        }
        _ => None,
    }
    .map(|(trace, cfg)| {
        let _ = seed; // trace seeds are pinned to the figures' 42
        (trace, cfg)
    })
}

/// Runs the named figure's base configuration once with a recording
/// probe covering the measurement phase. `Err` names the unknown figure.
pub fn observe_figure(figure: &str, scale: f64, seed: u64) -> Result<ObserveRun, String> {
    observe_figure_threaded(figure, scale, seed, 1)
}

/// [`observe_figure`] on the windowed parallel executor: `threads > 1`
/// adds `parallel_window` planning events to the stream and an achieved-
/// parallelism section to the report; everything else is bit-identical
/// to the serial run by the engine's equivalence contract.
pub fn observe_figure_threaded(
    figure: &str,
    scale: f64,
    seed: u64,
    threads: usize,
) -> Result<ObserveRun, String> {
    let (trace, config) = figure_setup(figure, scale, seed)
        .ok_or_else(|| format!("unknown figure {figure:?}; expected one of {FIGURES:?}"))?;
    let kind = SchemeKind::Intentional;
    let scheme = build_scheme(kind, &config);
    let sim_config = SimConfig {
        buffer_range: config.buffer_range,
        sample_interval: config.sample_interval,
        epoch_interval: config.epoch_interval,
        path_refresh: config.path_refresh,
        seed,
        profile: true,
        threads,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&trace, scheme, sim_config);

    // Phase 1: warm-up over the first half of the trace (unobserved —
    // figures measure the second half only).
    let mid = trace.midpoint();
    sim.run_until(mid);

    // Phase 2: NCL selection and scheme configuration.
    let capacities: Vec<u64> = (0..trace.node_count() as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    let setup = NetworkSetup {
        rate_table: &rate_table,
        now: mid,
        capacities,
        horizon: config
            .horizon
            .unwrap_or_else(|| config.mean_data_lifetime.as_secs_f64().max(3600.0)),
        path_refresh: config.path_refresh,
    };
    sim.scheme_mut().configure(&setup);

    // Install the probes now, so the export covers the measurement
    // phase: the recording probe and the windowed flight recorder fold
    // the identical event stream.
    let end = Time(trace.duration().as_secs());
    let recorder = Rc::new(RefCell::new(RecordingProbe::new()));
    let telemetry = Rc::new(RefCell::new(Telemetry::new(&TelemetryConfig::spanning(
        mid,
        Duration(end.0 - mid.0),
        TIMELINE_WINDOWS,
        config.ncl_count,
    ))));
    sim.set_probe(Box::new(TeeProbe::new(
        Box::new(Rc::clone(&recorder)),
        Box::new(Rc::clone(&telemetry)),
    )));

    // Phase 3: workload over the second half.
    let workload_cfg = WorkloadConfig {
        generation_probability: config.generation_probability,
        mean_lifetime: config.mean_data_lifetime,
        mean_size: config.mean_data_size,
        zipf_exponent: config.zipf_exponent,
        query_constraint: config.query_constraint,
        window: (mid, end),
        seed,
    };
    let workload = Workload::generate(trace.node_count(), &workload_cfg);
    sim.add_workload(workload.into_events());
    sim.run_to_end();

    drop(sim.take_probe());
    let probe = Rc::try_unwrap(recorder)
        .expect("engine returned its probe handle")
        .into_inner();
    let telemetry = Rc::try_unwrap(telemetry)
        .expect("engine returned its telemetry handle")
        .into_inner();
    Ok(ObserveRun {
        figure: figure.to_string(),
        scheme: kind,
        seed,
        metrics: sim.metrics().clone(),
        probe,
        telemetry,
        profile: sim.profile_report(),
        central_nodes: sim.scheme().central_nodes().to_vec(),
        ncl_query_load: sim.scheme().ncl_query_load().to_vec(),
    })
}

/// The unified capture entry point: figures run through
/// [`observe_figure_threaded`], `regimes` runs the instrumented
/// NCL-blackout cell, `scale` runs the instrumented streaming smoke
/// city. Every target returns the same [`ObserveRun`] and therefore
/// shares one JSONL emitter and one report/timeline renderer.
pub fn observe_any(
    target: &str,
    scale: f64,
    seed: u64,
    threads: usize,
) -> Result<ObserveRun, String> {
    match target {
        "regimes" => Ok(crate::regimes::observe_blackout(scale, seed, threads)),
        "scale" => Ok(crate::scale::observe_city_smoke(seed, threads)),
        _ => observe_figure_threaded(target, scale, seed, threads),
    }
    .map_err(|_| format!("unknown target {target:?}; expected one of {TARGETS:?}"))
}

/// One `{"type":"run",...}` JSONL header line describing the run. The
/// `schema`/`telemetry_schema` tags version the capture; the legacy
/// per-run totals stay in place so pre-versioning consumers keep
/// working.
pub fn run_header_json(run: &ObserveRun) -> String {
    let d = run.probe.total_decomposition();
    format!(
        "{{\"type\":\"run\",\"schema\":\"{RUN_SCHEMA}\",\"telemetry_schema\":\"{}\",\
         \"figure\":\"{}\",\"scheme\":\"{}\",\"seed\":{},\
         \"window_secs\":{},\"origin\":{},\
         \"queries_issued\":{},\"queries_satisfied\":{},\"total_delay_secs\":{},\
         \"pull_secs\":{},\"ncl_secs\":{},\"response_secs\":{}}}",
        Telemetry::SCHEMA,
        run.figure,
        run.scheme.name(),
        run.seed,
        run.telemetry.window_secs(),
        run.telemetry.origin().0,
        run.metrics.queries_issued,
        run.metrics.queries_satisfied,
        run.metrics.total_delay_secs,
        d.pull_secs,
        d.ncl_secs,
        d.response_secs,
    )
}

/// The `{"type":"footer",...}` closing line: whole-run totals from the
/// engine metrics (the authoritative side of the conservation check)
/// plus the non-empty telemetry window count, so `compare` can align
/// and sanity-check a capture without replaying its event stream.
pub fn run_footer_json(run: &ObserveRun) -> String {
    let m = &run.metrics;
    let windows = run
        .telemetry
        .windows()
        .iter()
        .filter(|w| !w.is_empty())
        .count();
    format!(
        "{{\"type\":\"footer\",\"schema\":\"{RUN_SCHEMA}\",\
         \"queries_issued\":{},\"queries_satisfied\":{},\"total_delay_secs\":{},\
         \"duplicate_deliveries\":{},\"late_deliveries\":{},\"data_generated\":{},\
         \"bytes_transmitted\":{},\"transfers_rejected\":{},\"contacts_lost\":{},\
         \"windows\":{windows}}}",
        m.queries_issued,
        m.queries_satisfied,
        m.total_delay_secs,
        m.duplicate_deliveries,
        m.late_deliveries,
        m.data_generated,
        m.bytes_transmitted,
        m.transfers_rejected,
        m.contacts_lost,
    )
}

/// Streams the run as versioned JSONL: the header, every probe event,
/// every assembled query trace, the telemetry window series, the phase
/// profile, and the totals footer. Returns the number of lines written.
pub fn write_jsonl(run: &ObserveRun, out: &mut dyn io::Write) -> io::Result<usize> {
    let mut lines = 0usize;
    writeln!(out, "{}", run_header_json(run))?;
    lines += 1;
    for event in run.probe.events() {
        writeln!(out, "{}", event.to_json())?;
        lines += 1;
    }
    for trace in run.probe.traces() {
        writeln!(out, "{}", trace.to_json())?;
        lines += 1;
    }
    for line in run.telemetry.to_jsonl().lines() {
        writeln!(out, "{line}")?;
        lines += 1;
    }
    if let Some(profile) = &run.profile {
        for line in profile.to_jsonl().lines() {
            writeln!(out, "{line}")?;
            lines += 1;
        }
    }
    writeln!(out, "{}", run_footer_json(run))?;
    lines += 1;
    Ok(lines)
}

/// [`write_jsonl`] into a file path.
pub fn write_jsonl_file(run: &ObserveRun, path: &Path) -> io::Result<usize> {
    let file = std::fs::File::create(path)?;
    let mut out = io::BufWriter::new(file);
    let lines = write_jsonl(run, &mut out)?;
    out.flush()?;
    Ok(lines)
}

fn render_trace(out: &mut String, t: &QueryTrace) {
    let _ = writeln!(
        out,
        "  query {} (requester {}, data {}): issued t={}, expires t={}",
        t.query.0, t.requester.0, t.data.0, t.issued_at.0, t.expires_at.0
    );
    if let Some(at) = t.first_central_at {
        let _ = writeln!(
            out,
            "    t={:>8}  reached central (NCL {})",
            at.0,
            t.first_central_ncl.unwrap_or(0)
        );
    }
    if let Some(at) = t.first_response_at {
        let _ = writeln!(
            out,
            "    t={:>8}  response spawned at node {} (broadcast fan-out {})",
            at.0,
            t.responder.map_or(0, |n| n.0),
            t.broadcast_fanout
        );
    }
    if let Some(at) = t.delivered_at {
        let _ = writeln!(out, "    t={:>8}  delivered", at.0);
    }
    // A query keeps one pull copy per NCL, so several identical hops
    // often cross the same link at the same contact; collapse them.
    let mut i = 0;
    while i < t.hops.len() {
        let h = &t.hops[i];
        let mut copies = 1;
        while i + copies < t.hops.len() && t.hops[i + copies] == *h {
            copies += 1;
        }
        let _ = write!(
            out,
            "    t={:>8}  {:>8} hop {} -> {}",
            h.at.0,
            match h.phase {
                dtn_sim::probe::HopPhase::Pull => "pull",
                dtn_sim::probe::HopPhase::Response => "response",
            },
            h.from.0,
            h.to.0
        );
        if copies > 1 {
            let _ = write!(out, " (x{copies} copies)");
        }
        out.push('\n');
        i += copies;
    }
    if let Some(d) = t.decomposition() {
        let _ = writeln!(
            out,
            "    delay {}s = pull {}s + ncl {}s + response {}s",
            d.total_secs(),
            d.pull_secs,
            d.ncl_secs,
            d.response_secs
        );
    }
}

/// Renders the human-readable post-mortem of one observed run.
pub fn render_report(run: &ObserveRun) -> String {
    let mut out = String::new();
    let m = &run.metrics;
    let _ = writeln!(
        out,
        "== observe {}: {} (seed {}) ==",
        run.figure,
        run.scheme.name(),
        run.seed
    );
    let _ = writeln!(
        out,
        "queries: {} issued, {} satisfied ({:.1}%), avg delay {:.2}h; \
         {} duplicate / {} late deliveries, {} transfers rejected",
        m.queries_issued,
        m.queries_satisfied,
        m.success_ratio() * 100.0,
        m.avg_delay_hours(),
        m.duplicate_deliveries,
        m.late_deliveries,
        m.transfers_rejected,
    );

    // Probe counter table: every vocabulary kind, observed count.
    let _ = writeln!(out, "\n-- probe counters --");
    for kind in ProbeEvent::KINDS {
        let count = run.probe.count(kind);
        if count > 0 {
            let _ = writeln!(out, "{kind:>24} {count:>10}");
        }
    }

    // Per-NCL arrivals and hit rates from the assembled traces.
    let _ = writeln!(out, "\n-- NCL query arrivals & hit rates --");
    let k = run.central_nodes.len();
    let mut arrived = vec![0u64; k];
    let mut hit = vec![0u64; k];
    for t in run.probe.traces() {
        if let Some(ncl) = t.first_central_ncl {
            if ncl < k {
                arrived[ncl] += 1;
                if t.delivered() {
                    hit[ncl] += 1;
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>10} {:>10} {:>10}",
        "NCL", "central", "load", "1st-here", "hit rate"
    );
    for (i, &central) in run.central_nodes.iter().enumerate() {
        let rate = if arrived[i] > 0 {
            hit[i] as f64 / arrived[i] as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>4} {:>8} {:>10} {:>10} {:>9.1}%",
            i,
            central.0,
            run.ncl_query_load.get(i).copied().unwrap_or(0),
            arrived[i],
            rate * 100.0
        );
    }

    // Delay decomposition: the three phases sum to total_delay_secs.
    let d = run.probe.total_decomposition();
    let total = d.total_secs().max(1);
    let _ = writeln!(out, "\n-- delay decomposition (satisfied queries) --");
    let _ = writeln!(out, "{:>12} {:>12} {:>8}", "phase", "seconds", "share");
    for (name, secs) in [
        ("pull", d.pull_secs),
        ("ncl", d.ncl_secs),
        ("response", d.response_secs),
    ] {
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>7.1}%",
            name,
            secs,
            secs as f64 / total as f64 * 100.0
        );
    }
    let _ = writeln!(
        out,
        "{:>12} {:>12} (metrics total_delay_secs: {}{})",
        "sum",
        d.total_secs(),
        m.total_delay_secs,
        if d.total_secs() == m.total_delay_secs {
            ", exact match"
        } else {
            " -- MISMATCH"
        }
    );

    // Oracle cache behavior relayed from the scheme.
    let (rebuilds, recomputes, hits) = run.probe.oracle_counters();
    if rebuilds + recomputes + hits > 0 {
        let _ = writeln!(out, "\n-- path oracle --");
        let served = recomputes + hits;
        let _ = writeln!(
            out,
            "snapshots rebuilt: {rebuilds}; path tables: {recomputes} recomputed, \
             {hits} reused ({:.1}% hit rate)",
            if served > 0 {
                hits as f64 / served as f64 * 100.0
            } else {
                0.0
            }
        );
    }

    // Achieved parallelism: per-window batch statistics from the
    // windowed executor's planning phase (absent in serial runs).
    let par = run.probe.parallel_counters();
    if par.windows > 0 {
        let _ = writeln!(out, "\n-- achieved parallelism --");
        let _ = writeln!(
            out,
            "{} windows over {} contacts: {:.1} contacts/window, {} batches \
             (mean width {:.2}, widest {}), conflict rate {:.1}%",
            par.windows,
            par.contacts,
            par.contacts as f64 / par.windows as f64,
            par.batches,
            par.mean_batch_width(),
            par.widest,
            par.conflict_rate() * 100.0,
        );
    }

    // Histograms (alloc-free fixed buckets, recorded in the hot loop).
    if run.probe.delay_hist().count() > 0 {
        let _ = writeln!(out, "\n{}", run.probe.delay_hist().render("delay", "s"));
    }
    if run.probe.hop_hist().count() > 0 {
        let _ = writeln!(out, "{}", run.probe.hop_hist().render("hops/query", ""));
    }
    if run.probe.occupancy_hist().count() > 0 {
        let _ = writeln!(
            out,
            "{}",
            run.probe.occupancy_hist().render("cache occupancy", "B")
        );
    }

    // Top-k slowest satisfied queries, full lifecycle each.
    let mut slowest: Vec<&QueryTrace> = run.probe.traces().filter(|t| t.delivered()).collect();
    slowest.sort_by_key(|t| {
        std::cmp::Reverse(t.delivered_at.unwrap_or(t.issued_at).0 - t.issued_at.0)
    });
    let _ = writeln!(
        out,
        "\n-- top {} slowest satisfied queries --",
        5.min(slowest.len())
    );
    for t in slowest.iter().take(5) {
        render_trace(&mut out, t);
    }
    out
}

/// Renders the `timeline` view: run banner, the windowed over-time
/// table, and the hierarchical phase profile.
pub fn render_timeline(run: &ObserveRun) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== timeline {}: {} (seed {}) ==",
        run.figure,
        run.scheme.name(),
        run.seed
    );
    let _ = writeln!(
        out,
        "window {}s from t={}s; {} non-empty windows; {} queries, {} satisfied ({:.1}%)",
        run.telemetry.window_secs(),
        run.telemetry.origin().0,
        run.telemetry
            .windows()
            .iter()
            .filter(|w| !w.is_empty())
            .count(),
        run.metrics.queries_issued,
        run.metrics.queries_satisfied,
        run.metrics.success_ratio() * 100.0,
    );
    out.push_str(&run.telemetry.render_table());
    if let Some(profile) = &run.profile {
        out.push('\n');
        out.push_str(&profile.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_run_covers_every_satisfied_query() {
        let run = observe_figure("fig10", 0.02, 7).expect("known figure");
        assert!(run.metrics.queries_issued > 0, "workload generated queries");
        // Every issued query has an assembled trace; every satisfied one
        // carries a delivery timestamp.
        assert_eq!(
            run.probe.traces().count() as u64,
            run.metrics.queries_issued
        );
        assert_eq!(
            run.probe.traces().filter(|t| t.delivered()).count() as u64,
            run.metrics.queries_satisfied
        );
        // The per-phase decomposition sums exactly to the metric delay.
        assert_eq!(
            run.probe.total_decomposition().total_secs(),
            run.metrics.total_delay_secs
        );
        // The probe's delay histogram mirrors the delivery count.
        assert_eq!(
            run.probe.delay_hist().count(),
            run.metrics.queries_satisfied
        );
        // The tee'd flight recorder conserves the same totals window by
        // window (the full matrix lives in tests/telemetry_conservation).
        let totals = run.telemetry.totals();
        assert_eq!(totals.queries_issued, run.metrics.queries_issued);
        assert_eq!(totals.deliveries, run.metrics.queries_satisfied);
        assert_eq!(totals.delay_sum_secs, run.metrics.total_delay_secs);
        assert_eq!(totals.bytes_transmitted, run.metrics.bytes_transmitted);
        // The profiler ran and charged the contact loop.
        let profile = run.profile.as_ref().expect("observe profiles its runs");
        assert!(profile.entries.iter().any(|e| e.phase == "contact_commit"));
        assert!(profile.total_ns() > 0);
    }

    #[test]
    fn jsonl_lines_parse_as_flat_objects() {
        let run = observe_figure("fig10", 0.02, 7).expect("known figure");
        let mut buf = Vec::new();
        let lines = write_jsonl(&run, &mut buf).expect("in-memory write");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), lines);
        assert!(lines > 1, "header plus events/traces");
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line {line:?}"
            );
            assert!(line.contains("\"type\":\""), "line missing type: {line:?}");
        }
        // Header first, then events, traces, windows, phases, footer.
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"type\":\"run\""));
        assert!(first.contains("\"schema\":\"dtn-observe/2\""));
        assert!(first.contains("\"telemetry_schema\":\"dtn-telemetry/1\""));
        assert!(text.contains("\"type\":\"event\""));
        assert!(text.contains("\"type\":\"trace\""));
        assert!(text.contains("\"type\":\"window\""));
        assert!(text.contains("\"type\":\"phase\""));
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"type\":\"footer\""), "{last}");
        assert!(last.contains(&format!(
            "\"queries_satisfied\":{}",
            run.metrics.queries_satisfied
        )));
    }

    #[test]
    fn timeline_renders_windows_and_profile() {
        let run = observe_figure("fig10", 0.02, 7).expect("known figure");
        let timeline = render_timeline(&run);
        assert!(timeline.contains("timeline fig10"));
        assert!(timeline.contains("t_start"), "{timeline}");
        assert!(timeline.contains("phase profile"), "{timeline}");
        assert!(timeline.contains("contact_commit"), "{timeline}");
    }

    #[test]
    fn observe_any_rejects_unknown_targets() {
        let err = observe_any("fig99", 0.02, 1, 1).unwrap_err();
        assert!(err.contains("regimes") && err.contains("scale"), "{err}");
    }

    #[test]
    fn report_renders_decomposition_and_ncl_table() {
        let run = observe_figure("fig10", 0.02, 7).expect("known figure");
        let report = render_report(&run);
        assert!(report.contains("delay decomposition"));
        assert!(report.contains("exact match"), "{report}");
        assert!(report.contains("NCL query arrivals"));
        assert!(report.contains("probe counters"));
        assert!(!report.contains("MISMATCH"), "{report}");
    }

    #[test]
    fn threaded_observe_matches_serial_and_reports_parallelism() {
        let serial = observe_figure("fig10", 0.02, 7).expect("known figure");
        let par = observe_figure_threaded("fig10", 0.02, 7, 4).expect("known figure");
        // Equivalence contract: identical metrics, and the parallel run
        // actually formed windows.
        assert_eq!(serial.metrics, par.metrics);
        assert_eq!(serial.central_nodes, par.central_nodes);
        assert_eq!(serial.ncl_query_load, par.ncl_query_load);
        assert_eq!(serial.probe.parallel_counters().windows, 0);
        assert!(par.probe.parallel_counters().windows > 0);
        // The report surfaces achieved parallelism only when windows ran.
        assert!(!render_report(&serial).contains("achieved parallelism"));
        let report = render_report(&par);
        assert!(report.contains("achieved parallelism"), "{report}");
        assert!(report.contains("conflict rate"), "{report}");
    }

    #[test]
    fn unknown_figure_is_an_error() {
        assert!(observe_figure("fig99", 0.02, 1).is_err());
    }

    #[test]
    fn churn_run_observes_reelections() {
        let run = observe_figure("churn", 0.05, 3).expect("known figure");
        // Epochs fire on the churn setup; re-elections and oracle
        // invalidations surface through the probe vocabulary.
        assert!(run.probe.count("epoch_fired") > 0, "no epochs observed");
    }
}
