//! Open-loop serving benchmark: sustained decisions/sec and tail
//! latency for the online decision service (`dtn-serve`).
//!
//! The harness replays a synthetic contact trace through a
//! [`DecisionService`] and measures each `decide()` call — stream
//! ingestion plus answer computation — with a monotonic clock. The
//! latency distribution under load is then derived **open-loop**: for
//! each offered rate λ the measured per-decision service times are
//! replayed against a virtual wall-clock cursor
//! (`start_i = max(wall, arrival_i)`, `wall = start_i + service_i`,
//! `latency_i = wall − arrival_i`), so a slow decision delays every
//! queued arrival behind it and the reported percentiles are free of
//! coordinated omission. The saturation sweep runs the same recorded
//! service times at increasing λ until the achieved rate stops
//! following the offered rate.
//!
//! Decisions themselves are wall-clock independent (same trace + same
//! request sequence ⇒ bit-identical answers), so `BENCH_serve.json`
//! carries the determinism contract as `_exact`/`_checksum` keys next
//! to the informational latency numbers — `experiments compare` gates
//! the former exactly and never gates the latter (their key names
//! deliberately avoid the perf-direction suffixes; CI machines are not
//! this machine).

use std::time::Instant;

use dtn_cache::intentional::{IntentionalConfig, IntentionalScheme};
use dtn_cache::CachingScheme;
use dtn_core::ids::{DataId, NodeId};
use dtn_core::time::{Duration, Time};
use dtn_serve::{Answer, DecisionService, Request, ServeConfig};
use dtn_sim::engine::{SimConfig, Simulator};
use dtn_trace::synthetic::SyntheticTraceBuilder;
use dtn_trace::ContactTrace;

/// All knobs of one serving benchmark run.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Population size of the synthetic trace.
    pub nodes: usize,
    /// Calibration target for the trace's total contact count.
    pub target_contacts: u64,
    /// Trace duration; the first half is warm-up, decisions are served
    /// over the second half.
    pub duration: Duration,
    /// Decisions to serve (alternating `Place` / `Route`).
    pub decisions: u64,
    /// Offered arrival rates (decisions/sec of wall clock) for the
    /// open-loop saturation sweep.
    pub offered_rates: Vec<f64>,
    /// Trace and engine seed.
    pub seed: u64,
    /// NCLs to elect.
    pub ncl_count: usize,
    /// Per-decision latency budget, nanoseconds.
    pub latency_budget_ns: u64,
}

impl ServeBenchConfig {
    /// The CI-sized run: finishes in seconds, and its deterministic
    /// keys are the ones committed in `BENCH_serve.json` — a fresh
    /// smoke run must reproduce them bit-identically.
    pub fn smoke() -> Self {
        ServeBenchConfig {
            nodes: 60,
            target_contacts: 30_000,
            duration: Duration::days(2),
            decisions: 2_000,
            offered_rates: vec![2e3, 2e4, 2e5],
            seed: 42,
            ncl_count: 3,
            latency_budget_ns: 1_000_000,
        }
    }

    /// The committed-numbers run: larger population and decision count,
    /// plus a deeper saturation sweep.
    pub fn full() -> Self {
        ServeBenchConfig {
            nodes: 200,
            target_contacts: 150_000,
            duration: Duration::days(2),
            decisions: 20_000,
            offered_rates: vec![2e3, 2e4, 2e5, 1e6],
            seed: 42,
            ncl_count: 5,
            latency_budget_ns: 1_000_000,
        }
    }
}

/// One offered-rate point of the saturation sweep.
#[derive(Debug, Clone)]
pub struct RatePoint {
    /// Offered arrival rate, decisions/sec.
    pub offered: f64,
    /// Achieved completion rate, decisions/sec.
    pub achieved: f64,
    /// Open-loop latency percentiles (queueing included), nanoseconds.
    pub p50_ns: u64,
    /// 99th percentile latency, ns.
    pub p99_ns: u64,
    /// 99.9th percentile latency, ns.
    pub p999_ns: u64,
    /// Worst latency, ns.
    pub max_ns: u64,
    /// Arrivals whose open-loop latency exceeded the budget.
    pub budget_violations: u64,
}

/// The full benchmark result.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Which config produced it: `"smoke"` or `"full"`.
    pub label: String,
    /// Population size.
    pub nodes: usize,
    /// Contacts in the generated trace.
    pub contacts: usize,
    /// Central nodes elected at configure time.
    pub central_nodes: usize,
    /// Decisions served.
    pub decisions: u64,
    /// `Place` decisions among them.
    pub place_decisions: u64,
    /// Decisions whose answer carried at least one next hop.
    pub routed_decisions: u64,
    /// FNV-1a checksum over the decision stream (request + answer).
    pub decision_checksum: u64,
    /// Per-decision latency budget, ns.
    pub latency_budget_ns: u64,
    /// Exact service-time percentiles (no queueing), nanoseconds.
    pub service_p50_ns: u64,
    /// 99th percentile service time, ns.
    pub service_p99_ns: u64,
    /// 99.9th percentile service time, ns.
    pub service_p999_ns: u64,
    /// Worst service time, ns.
    pub service_max_ns: u64,
    /// Back-to-back capacity: decisions / total service time.
    pub sustained_per_sec: f64,
    /// The saturation sweep.
    pub points: Vec<RatePoint>,
}

/// The deterministic request sequence: alternating `Place`/`Route`
/// with a multiplicative-hash node walk, so every run over the same
/// `(nodes, decisions)` pair asks the identical questions.
pub fn request_at(i: u64, nodes: usize) -> Request {
    let node = |x: u64| NodeId((x.wrapping_mul(2_654_435_761) % nodes as u64) as u32);
    if i.is_multiple_of(2) {
        Request::Place {
            data: DataId(i / 2),
            source: node(i),
        }
    } else {
        Request::Route {
            requester: node(i),
            data: DataId(i / 2),
        }
    }
}

/// Builds the benchmark trace for `cfg`.
pub fn serve_trace(cfg: &ServeBenchConfig) -> ContactTrace {
    let density = (12.0 / (cfg.nodes.max(2) - 1) as f64).min(0.4);
    SyntheticTraceBuilder::new(cfg.nodes)
        .duration(cfg.duration)
        .target_contacts(cfg.target_contacts)
        .edge_density(density)
        .seed(cfg.seed)
        .build()
}

/// Builds a configured service over `trace` (warm-up over the first
/// half, NCL election at the midpoint) ready to serve decisions.
pub fn serve_service<'t>(
    cfg: &ServeBenchConfig,
    trace: &'t ContactTrace,
) -> DecisionService<dtn_sim::engine::TraceSource<'t>> {
    let scheme = IntentionalScheme::new(IntentionalConfig {
        ncl_count: cfg.ncl_count,
        ..IntentionalConfig::default()
    });
    let sim = Simulator::new(
        trace,
        scheme,
        SimConfig {
            seed: cfg.seed,
            ..SimConfig::default()
        },
    );
    let mut svc = DecisionService::new(
        sim,
        ServeConfig {
            latency_budget_ns: cfg.latency_budget_ns,
            ..ServeConfig::default()
        },
    );
    svc.configure_at(trace.midpoint(), 3600.0 * 6.0, None);
    svc
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Replays measured service times at offered rate λ through the
/// virtual wall-clock cursor. Pure arithmetic — no sleeping — so a
/// full saturation sweep costs microseconds.
pub fn replay_open_loop(service_ns: &[u64], offered: f64, budget_ns: u64) -> RatePoint {
    let gap = 1e9 / offered;
    let mut wall = 0.0f64;
    let mut latencies: Vec<u64> = Vec::with_capacity(service_ns.len());
    let mut violations = 0u64;
    for (i, &s) in service_ns.iter().enumerate() {
        let arrival = i as f64 * gap;
        let start = wall.max(arrival);
        wall = start + s as f64;
        let lat = (wall - arrival) as u64;
        if lat > budget_ns {
            violations += 1;
        }
        latencies.push(lat);
    }
    latencies.sort_unstable();
    let achieved = if wall > 0.0 {
        service_ns.len() as f64 * 1e9 / wall
    } else {
        0.0
    };
    RatePoint {
        offered,
        achieved,
        p50_ns: exact_quantile(&latencies, 0.5),
        p99_ns: exact_quantile(&latencies, 0.99),
        p999_ns: exact_quantile(&latencies, 0.999),
        max_ns: latencies.last().copied().unwrap_or(0),
        budget_violations: violations,
    }
}

/// Runs the benchmark: one serving pass measuring per-decision wall
/// time, then the open-loop saturation sweep over the recorded service
/// times.
pub fn run_serve_bench(label: &str, cfg: &ServeBenchConfig) -> ServeBenchReport {
    let trace = serve_trace(cfg);
    let mut svc = serve_service(cfg, &trace);
    let mid = trace.midpoint();
    let end = Time(trace.duration().as_secs());
    let span = end.0.saturating_sub(mid.0).max(1);

    let mut service_ns: Vec<u64> = Vec::with_capacity(cfg.decisions as usize);
    let mut place_decisions = 0u64;
    let mut routed = 0u64;
    for i in 0..cfg.decisions {
        let at = Time(mid.0 + span * i / cfg.decisions.max(1));
        let req = request_at(i, cfg.nodes);
        let started = Instant::now();
        let d = svc.decide(at, req).expect("service configured");
        service_ns.push(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        let has_hop = match &d.answer {
            Answer::Place(p) => {
                place_decisions += 1;
                p.plan.iter().any(|plan| plan.next_hop.is_some())
            }
            Answer::Route(r) => r.as_ref().is_some_and(|r| r.next_hop.is_some()),
        };
        if has_hop {
            routed += 1;
        }
    }

    let stats = svc.stats();
    let total_service: u64 = service_ns.iter().sum();
    let sustained = if total_service > 0 {
        cfg.decisions as f64 * 1e9 / total_service as f64
    } else {
        0.0
    };
    let points = cfg
        .offered_rates
        .iter()
        .map(|&rate| replay_open_loop(&service_ns, rate, cfg.latency_budget_ns))
        .collect();
    let mut sorted = service_ns;
    sorted.sort_unstable();
    ServeBenchReport {
        label: label.to_string(),
        nodes: cfg.nodes,
        contacts: trace.contact_count(),
        central_nodes: svc.sim().scheme().central_nodes().len(),
        decisions: stats.decisions,
        place_decisions,
        routed_decisions: routed,
        decision_checksum: stats.checksum,
        latency_budget_ns: cfg.latency_budget_ns,
        service_p50_ns: exact_quantile(&sorted, 0.5),
        service_p99_ns: exact_quantile(&sorted, 0.99),
        service_p999_ns: exact_quantile(&sorted, 0.999),
        service_max_ns: sorted.last().copied().unwrap_or(0),
        sustained_per_sec: sustained,
        points,
    }
}

impl ServeBenchReport {
    /// Renders the report as one member of `BENCH_serve.json`'s
    /// `results` object. With `exact = true` the deterministic facts
    /// use `_exact`/`_checksum` key suffixes (gated bit-exactly by
    /// `experiments compare`) — only the smoke section carries them,
    /// because a CI smoke run must reproduce every exact key it finds
    /// in the committed baseline. The wall-clock numbers use `_usec` /
    /// `per_wall_second` names that no compare direction matches, so
    /// CI never gates this machine's timings against another's.
    pub fn to_json(&self, indent: usize, exact: bool) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let e = if exact { "_exact" } else { "" };
        let checksum_key = if exact {
            "decision_checksum"
        } else {
            "decision_stream_hash"
        };
        let usec = |ns: u64| ns as f64 / 1_000.0;
        let mut points = String::new();
        for (i, p) in self.points.iter().enumerate() {
            points.push_str(&format!(
                "{inner}  {{ \"offered_per_wall_second\": {:.0}, \"achieved_per_wall_second\": {:.0}, \
                 \"p50_usec\": {:.1}, \"p99_usec\": {:.1}, \"p999_usec\": {:.1}, \
                 \"max_usec\": {:.1}, \"budget_violations\": {} }}{}",
                p.offered,
                p.achieved,
                usec(p.p50_ns),
                usec(p.p99_ns),
                usec(p.p999_ns),
                usec(p.max_ns),
                p.budget_violations,
                if i + 1 < self.points.len() { ",\n" } else { "" },
            ));
        }
        format!(
            "{pad}{{\n\
             {inner}\"nodes{e}\": {},\n\
             {inner}\"contacts{e}\": {},\n\
             {inner}\"central_nodes{e}\": {},\n\
             {inner}\"decisions{e}\": {},\n\
             {inner}\"place_decisions{e}\": {},\n\
             {inner}\"routed_decisions{e}\": {},\n\
             {inner}\"{checksum_key}\": {},\n\
             {inner}\"latency_budget_usec\": {:.0},\n\
             {inner}\"service_p50_usec\": {:.1},\n\
             {inner}\"service_p99_usec\": {:.1},\n\
             {inner}\"service_p999_usec\": {:.1},\n\
             {inner}\"service_max_usec\": {:.1},\n\
             {inner}\"sustained_per_wall_second\": {:.0},\n\
             {inner}\"points\": [\n{points}\n{inner}]\n\
             {pad}}}",
            self.nodes,
            self.contacts,
            self.central_nodes,
            self.decisions,
            self.place_decisions,
            self.routed_decisions,
            self.decision_checksum,
            usec(self.latency_budget_ns),
            usec(self.service_p50_ns),
            usec(self.service_p99_ns),
            usec(self.service_p999_ns),
            usec(self.service_max_ns),
            self.sustained_per_sec,
        )
    }
}

/// Serve-vs-engine differential on a shared trace. Returns the list of
/// discrepancies (empty = pass):
///
/// 1. **Outcome purity** — interleaving serve decisions into a full
///    engine run must leave the engine's metrics and central set
///    bit-identical to an undisturbed run (decision reads are pure).
/// 2. **Reproducibility** — two serving passes over the same stream
///    must produce the same decision checksum.
/// 3. **Kernel equivalence** — every recorded `Place` next hop must
///    equal an independent recomputation through the public
///    `better_relay` kernel on a fresh oracle over the same rates.
pub fn run_serve_differential(cfg: &ServeBenchConfig) -> Vec<String> {
    let mut problems = Vec::new();
    let trace = serve_trace(cfg);
    let decisions = cfg.decisions.min(200);
    let mid = trace.midpoint();
    let end = Time(trace.duration().as_secs());
    let span = end.0.saturating_sub(mid.0).max(1);

    // Baseline: the engine runs the trace with no serving interleaved.
    let mut baseline = serve_service(cfg, &trace);
    baseline.sim_mut().run_until(end);
    let base_metrics = baseline.sim().metrics().clone();
    let base_centrals = baseline.sim().scheme().central_nodes().to_vec();

    // Serve-interleaved run over the same trace.
    let run = || {
        let mut svc = serve_service(cfg, &trace).with_decision_log();
        for i in 0..decisions {
            let at = Time(mid.0 + span * i / decisions.max(1));
            svc.decide(at, request_at(i, cfg.nodes))
                .expect("service configured");
        }
        svc.sim_mut().run_until(end);
        svc
    };
    let first = run();
    if first.sim().scheme().central_nodes() != base_centrals.as_slice() {
        problems.push("central set diverged under serving".to_string());
    }
    let m = first.sim().metrics();
    if m.queries_issued != base_metrics.queries_issued
        || m.queries_satisfied != base_metrics.queries_satisfied
        || m.bytes_transmitted != base_metrics.bytes_transmitted
    {
        problems.push(format!(
            "engine outcome diverged under serving: \
             issued {} vs {}, satisfied {} vs {}, bytes {} vs {}",
            m.queries_issued,
            base_metrics.queries_issued,
            m.queries_satisfied,
            base_metrics.queries_satisfied,
            m.bytes_transmitted,
            base_metrics.bytes_transmitted,
        ));
    }

    let second = run();
    if first.stats().checksum != second.stats().checksum {
        problems.push(format!(
            "decision stream not reproducible: checksum {} vs {}",
            first.stats().checksum,
            second.stats().checksum,
        ));
    }

    // Kernel equivalence on a sample of recorded Place decisions.
    let rates = first.sim().rate_table().clone();
    let nodes = cfg.nodes;
    for d in first.decisions().iter().take(40) {
        let dtn_serve::Request::Place { source, .. } = d.request else {
            continue;
        };
        let Answer::Place(p) = &d.answer else {
            continue;
        };
        for plan in &p.plan {
            let mut fresh =
                dtn_sim::oracle::PathOracle::new(nodes, 3600.0 * 6.0, Duration::hours(1));
            let mut best: Option<(NodeId, f64)> = None;
            for n in (0..nodes as u32).map(NodeId) {
                if n == source
                    || !dtn_cache::common::better_relay(
                        &mut fresh,
                        &rates,
                        d.at,
                        source,
                        n,
                        plan.central,
                    )
                {
                    continue;
                }
                let w = if n == plan.central {
                    f64::INFINITY
                } else {
                    fresh.weight(&rates, d.at, n, plan.central)
                };
                if best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((n, w));
                }
            }
            let expect = best.map(|(n, _)| n);
            if plan.next_hop != expect {
                problems.push(format!(
                    "decision {} toward central {} chose {:?}, kernel recomputation says {:?}",
                    d.seq, plan.central.0, plan.next_hop, expect,
                ));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeBenchConfig {
        ServeBenchConfig {
            nodes: 20,
            target_contacts: 4_000,
            duration: Duration::days(1),
            decisions: 60,
            offered_rates: vec![1e4, 1e6],
            seed: 7,
            ncl_count: 3,
            latency_budget_ns: 1_000_000,
        }
    }

    #[test]
    fn bench_report_is_reproducible_and_renders_json() {
        let cfg = tiny();
        let a = run_serve_bench("smoke", &cfg);
        let b = run_serve_bench("smoke", &cfg);
        assert_eq!(a.decisions, cfg.decisions);
        assert_eq!(a.decision_checksum, b.decision_checksum);
        assert_eq!(a.contacts, b.contacts);
        assert_eq!(a.place_decisions, 30);
        assert!(a.sustained_per_sec > 0.0);
        assert_eq!(a.points.len(), 2);
        let json = a.to_json(4, true);
        let doc = crate::json::JsonValue::parse(&json).expect("valid JSON");
        assert_eq!(
            doc.get("decisions_exact").and_then(|v| v.as_f64()),
            Some(cfg.decisions as f64)
        );
        assert!(doc.get("decision_checksum").is_some());
        // The non-exact rendering (the `full` section) must not carry
        // exactness-gated keys, or a CI smoke run would regress on them.
        let loose = a.to_json(4, false);
        assert!(!loose.contains("_exact") && !loose.contains("decision_checksum"));
        assert!(loose.contains("decision_stream_hash"));
    }

    #[test]
    fn open_loop_replay_accounts_for_queueing() {
        // Constant 1 ms service at 10k/s offered (100 µs gaps): the
        // queue grows without bound, so late arrivals see much larger
        // latency than the pure service time.
        let service = vec![1_000_000u64; 100];
        let p = replay_open_loop(&service, 10_000.0, 1_000_000);
        assert!(
            p.p99_ns > 10 * 1_000_000,
            "p99 {} includes queueing",
            p.p99_ns
        );
        assert!(p.achieved < 10_000.0 / 5.0, "saturated throughput");
        assert!(p.budget_violations > 50);
        // At 100/s offered (10 ms gaps) the queue never forms: latency
        // equals the service time exactly.
        let p = replay_open_loop(&service, 100.0, 1_000_000);
        assert_eq!(p.p99_ns, 1_000_000);
        assert_eq!(p.max_ns, 1_000_000);
        assert_eq!(p.budget_violations, 0);
        assert!((p.achieved - 100.0).abs() < 2.0);
    }

    #[test]
    fn differential_is_clean_on_a_shared_trace() {
        let problems = run_serve_differential(&tiny());
        assert!(problems.is_empty(), "{problems:?}");
    }
}
