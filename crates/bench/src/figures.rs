//! Per-figure experiment definitions (DESIGN.md §4).
//!
//! Every function regenerates the data behind one table or figure of the
//! paper. A global `scale` parameter shrinks trace duration and contact
//! counts proportionally (contact density preserved) so the same code
//! runs as a full reproduction, a quick check, or a criterion bench.
//! Data lifetimes scale with the trace so the lifetime-to-duration ratio
//! — the quantity that shapes the curves — is preserved.

use dtn_cache::experiment::ExperimentConfig;
use dtn_cache::replacement::ReplacementKind;
use dtn_cache::SchemeKind;
use dtn_core::ncl::CentralityScore;
use dtn_core::sigmoid::ResponseFunction;
use dtn_core::time::{Duration, Time};
use dtn_sim::engine::megabits;
use dtn_trace::stats::{metric_distribution, TraceStats};
use dtn_trace::synthetic::{regime_shift_trace, SyntheticTraceBuilder};
use dtn_trace::trace::ContactTrace;
use dtn_trace::TracePreset;
use dtn_workload::{Workload, WorkloadConfig, Zipf};

use crate::runner::{timed_averaged_sweep, AveragedReport, PointTiming, SweepPoint};

/// Splits fanned-out `(report, timing)` results back into row-sized
/// chunks, in input order.
fn into_rows(
    results: Vec<(AveragedReport, PointTiming)>,
    row_len: usize,
) -> Vec<(Vec<AveragedReport>, Vec<PointTiming>)> {
    let mut rows = Vec::with_capacity(results.len().div_ceil(row_len.max(1)));
    let mut iter = results.into_iter().peekable();
    while iter.peek().is_some() {
        let mut reports = Vec::with_capacity(row_len);
        let mut timings = Vec::with_capacity(row_len);
        for _ in 0..row_len {
            let Some((r, t)) = iter.next() else { break };
            reports.push(r);
            timings.push(t);
        }
        rows.push((reports, timings));
    }
    rows
}

/// Builds the synthetic stand-in for a preset trace at the given scale.
pub fn preset_trace(preset: TracePreset, scale: f64, seed: u64) -> ContactTrace {
    SyntheticTraceBuilder::from_preset(preset)
        .scale(scale)
        .seed(seed)
        .build()
}

/// Formats a duration as fractional hours/days for axis labels.
pub fn human_duration(d: Duration) -> String {
    fn trim(v: f64) -> String {
        let s = format!("{v:.1}");
        s.strip_suffix(".0").map_or(s.clone(), str::to_owned)
    }
    let secs = d.as_secs() as f64;
    if secs >= 86_400.0 {
        format!("{}d", trim(secs / 86_400.0))
    } else {
        format!("{}h", trim(secs / 3600.0))
    }
}

// ---------------------------------------------------------------- Table I

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Which trace.
    pub preset: TracePreset,
    /// Statistics of the generated stand-in.
    pub stats: TraceStats,
    /// The paper's contact-count target (scaled).
    pub target_contacts: f64,
}

/// Regenerates Table I: summary statistics of all four traces.
pub fn table1(scale: f64, seed: u64) -> Vec<Table1Row> {
    TracePreset::ALL
        .iter()
        .map(|&preset| {
            let trace = preset_trace(preset, scale, seed);
            Table1Row {
                preset,
                stats: TraceStats::compute(&trace),
                target_contacts: preset.total_contacts() as f64 * scale,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 4

/// The NCL-metric distribution of one trace (one subplot of Fig. 4).
#[derive(Debug, Clone)]
pub struct Fig4Series {
    /// Which trace.
    pub preset: TracePreset,
    /// Horizon `T` used (§IV-B values).
    pub horizon: Duration,
    /// Metric of every node, descending.
    pub scores: Vec<CentralityScore>,
}

/// Regenerates Fig. 4: the skewed NCL selection metric distributions.
pub fn fig4(scale: f64, seed: u64) -> Vec<Fig4Series> {
    TracePreset::ALL
        .iter()
        .map(|&preset| {
            let trace = preset_trace(preset, scale, seed);
            let horizon = preset.ncl_horizon();
            Fig4Series {
                preset,
                horizon,
                scores: metric_distribution(&trace, horizon.as_secs_f64()),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 7

/// Regenerates Fig. 7: the sigmoid response probability over remaining
/// time, with the paper's example parameters (`p_min = 0.45`,
/// `p_max = 0.8`, `T_q = 10 h`). Returns `(hours, probability)` points.
pub fn fig7() -> Vec<(f64, f64)> {
    let f =
        ResponseFunction::new(0.45, 0.8, Duration::hours(10)).expect("paper parameters are valid");
    (0..=20)
        .map(|half_hours| {
            let t = Duration::minutes(30 * half_hours);
            (t.as_secs_f64() / 3600.0, f.probability(t))
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 9

/// One `T_L` point of Fig. 9(a).
#[derive(Debug, Clone)]
pub struct Fig9aRow {
    /// Mean data lifetime.
    pub lifetime: Duration,
    /// Total items generated over the window.
    pub items_generated: usize,
    /// Time-averaged live items.
    pub avg_live_items: f64,
}

/// Regenerates Fig. 9(a): amount of data in the network vs `T_L`
/// (MIT Reality population, `p_G = 0.2`).
pub fn fig9a(scale: f64, seed: u64) -> Vec<Fig9aRow> {
    let preset = TracePreset::MitReality;
    let window_end = preset.duration().mul_f64(scale);
    let window = (Time(window_end.as_secs() / 2), Time(window_end.as_secs()));
    lifetimes_mit(scale)
        .into_iter()
        .map(|lifetime| {
            let cfg = WorkloadConfig {
                mean_lifetime: lifetime,
                seed,
                ..WorkloadConfig::new(window)
            };
            let w = Workload::generate(preset.node_count(), &cfg);
            Fig9aRow {
                lifetime,
                items_generated: w.items().len(),
                avg_live_items: w.avg_live_items(),
            }
        })
        .collect()
}

/// Regenerates Fig. 9(b): Zipf probabilities `P_j` for `j ≤ 20` at
/// exponents `s ∈ {0.5, 1.0, 1.5}` with `M = 100` items.
pub fn fig9b() -> Vec<(f64, Vec<f64>)> {
    [0.5, 1.0, 1.5]
        .iter()
        .map(|&s| {
            let z = Zipf::new(100, s);
            (s, (1..=20).map(|j| z.probability(j)).collect())
        })
        .collect()
}

// ------------------------------------------------------- Fig. 10/11/13

/// One parameter point of a scheme-comparison figure: the five schemes'
/// averaged metrics at one x-axis value.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Human-readable x-axis label (e.g. "1w" or "100Mb").
    pub label: String,
    /// Reports in [`SchemeKind::ALL`] order.
    pub reports: Vec<AveragedReport>,
    /// Throughput accounting per report (same order).
    pub timings: Vec<PointTiming>,
}

/// The Fig. 10 lifetime sweep, scaled with the trace so the
/// lifetime/duration ratio matches the paper's 123-day window.
fn lifetimes_mit(scale: f64) -> Vec<Duration> {
    [
        Duration::hours(12),
        Duration::days(1),
        Duration::days(3),
        Duration::weeks(1),
        Duration::weeks(2),
        Duration::days(30),
        Duration::days(90),
    ]
    .into_iter()
    .map(|d| Duration((d.as_secs() as f64 * scale) as u64).max(Duration::hours(1)))
    .collect()
}

/// Base configuration of the §VI-B MIT Reality experiments, scaled.
pub(crate) fn mit_config(scale: f64) -> ExperimentConfig {
    ExperimentConfig {
        ncl_count: 8,
        mean_data_lifetime: Duration((Duration::weeks(1).as_secs() as f64 * scale) as u64)
            .max(Duration::hours(1)),
        ..ExperimentConfig::default()
    }
}

/// Regenerates Fig. 10: data-access performance vs average data
/// lifetime `T_L` on MIT Reality (all five schemes; success ratio,
/// delay, caching overhead).
pub fn fig10(scale: f64, seeds: u32) -> Vec<ComparisonRow> {
    let trace = preset_trace(TracePreset::MitReality, scale, 42);
    let lifetimes = lifetimes_mit(scale);
    let mut points = Vec::new();
    for &lifetime in &lifetimes {
        let cfg = ExperimentConfig {
            mean_data_lifetime: lifetime,
            ..mit_config(scale)
        };
        for &scheme in &SchemeKind::ALL {
            points.push(SweepPoint {
                trace: &trace,
                scheme,
                config: cfg.clone(),
            });
        }
    }
    let results = timed_averaged_sweep(&points, seeds);
    lifetimes
        .into_iter()
        .zip(into_rows(results, SchemeKind::ALL.len()))
        .map(|(lifetime, (reports, timings))| ComparisonRow {
            label: human_duration(lifetime),
            reports,
            timings,
        })
        .collect()
}

/// The Fig. 11/12 data-size sweep: 20–200 Mb.
pub fn sizes_mb() -> Vec<u64> {
    vec![20, 50, 100, 150, 200]
}

/// Regenerates Fig. 11: data-access performance vs average data size
/// `s_avg` on MIT Reality.
pub fn fig11(scale: f64, seeds: u32) -> Vec<ComparisonRow> {
    let trace = preset_trace(TracePreset::MitReality, scale, 42);
    let sizes = sizes_mb();
    let mut points = Vec::new();
    for &mb in &sizes {
        let cfg = ExperimentConfig {
            mean_data_size: megabits(mb),
            ..mit_config(scale)
        };
        for &scheme in &SchemeKind::ALL {
            points.push(SweepPoint {
                trace: &trace,
                scheme,
                config: cfg.clone(),
            });
        }
    }
    let results = timed_averaged_sweep(&points, seeds);
    sizes
        .into_iter()
        .zip(into_rows(results, SchemeKind::ALL.len()))
        .map(|(mb, (reports, timings))| ComparisonRow {
            label: format!("{mb}Mb"),
            reports,
            timings,
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 12

/// One data-size point of Fig. 12: the four replacement policies'
/// averaged metrics inside the intentional scheme.
#[derive(Debug, Clone)]
pub struct ReplacementRow {
    /// Mean data size label.
    pub label: String,
    /// Reports in [`ReplacementKind::ALL`] order.
    pub reports: Vec<AveragedReport>,
    /// Throughput accounting per report (same order).
    pub timings: Vec<PointTiming>,
}

/// Regenerates Fig. 12: cache-replacement strategies vs data size on
/// MIT Reality (`T_L` = 1 week).
pub fn fig12(scale: f64, seeds: u32) -> Vec<ReplacementRow> {
    let trace = preset_trace(TracePreset::MitReality, scale, 42);
    let sizes = sizes_mb();
    let mut points = Vec::new();
    for &mb in &sizes {
        for &replacement in &ReplacementKind::ALL {
            points.push(SweepPoint {
                trace: &trace,
                scheme: SchemeKind::Intentional,
                config: ExperimentConfig {
                    mean_data_size: megabits(mb),
                    replacement,
                    ..mit_config(scale)
                },
            });
        }
    }
    let results = timed_averaged_sweep(&points, seeds);
    sizes
        .into_iter()
        .zip(into_rows(results, ReplacementKind::ALL.len()))
        .map(|(mb, (reports, timings))| ReplacementRow {
            label: format!("{mb}Mb"),
            reports,
            timings,
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 13

/// One `(K, s_avg)` point of Fig. 13.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// Number of NCLs.
    pub ncl_count: usize,
    /// Reports per data size, in [`fig13_sizes_mb`] order.
    pub reports: Vec<AveragedReport>,
    /// Throughput accounting per report (same order).
    pub timings: Vec<PointTiming>,
}

/// The data sizes of the Fig. 13 curves.
pub fn fig13_sizes_mb() -> Vec<u64> {
    vec![50, 100, 200]
}

/// Regenerates Fig. 13: impact of the number of NCLs `K` on Infocom06
/// (`T_L` = 3 h), for several node-buffer conditions.
pub fn fig13(scale: f64, seeds: u32) -> Vec<Fig13Row> {
    let trace = preset_trace(TracePreset::Infocom06, scale, 42);
    let lifetime =
        Duration((Duration::hours(3).as_secs() as f64 * scale) as u64).max(Duration::minutes(30));
    let sizes = fig13_sizes_mb();
    let mut points = Vec::new();
    for k in 1..=10usize {
        for &mb in &sizes {
            points.push(SweepPoint {
                trace: &trace,
                scheme: SchemeKind::Intentional,
                config: ExperimentConfig {
                    ncl_count: k,
                    mean_data_lifetime: lifetime,
                    mean_data_size: megabits(mb),
                    ..ExperimentConfig::default()
                },
            });
        }
    }
    let results = timed_averaged_sweep(&points, seeds);
    (1..=10)
        .zip(into_rows(results, sizes.len()))
        .map(|(ncl_count, (reports, timings))| Fig13Row {
            ncl_count,
            reports,
            timings,
        })
        .collect()
}

// ---------------------------------------------------------------- Ablations

/// One ablation variant of the intentional scheme.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant description.
    pub label: String,
    /// Averaged metrics of the variant per data size (see
    /// [`ablation_sizes_mb`]).
    pub reports: Vec<AveragedReport>,
    /// Throughput accounting per report (same order).
    pub timings: Vec<PointTiming>,
}

/// The data sizes used by the ablation study.
pub fn ablation_sizes_mb() -> Vec<u64> {
    vec![50, 150]
}

/// Ablation study of the paper's two probabilistic design choices
/// (DESIGN.md: "ablation benches for the design choices"):
///
/// 1. Algorithm 1's probabilistic knapsack selection vs the
///    deterministic basic strategy (§V-D-2 vs §V-D-3),
/// 2. the sigmoid response function vs path-aware response
///    probabilities (§V-C's two information regimes).
pub fn ablation(scale: f64, seeds: u32) -> Vec<AblationRow> {
    use dtn_cache::intentional::ResponseStrategy;
    use dtn_cache::routing::ForwardingStrategy;
    let trace = preset_trace(TracePreset::MitReality, scale, 42);
    let greedy = ForwardingStrategy::Greedy;
    let variants: Vec<(String, bool, ResponseStrategy, ForwardingStrategy)> = vec![
        (
            "paper (Alg.1 + sigmoid)".into(),
            true,
            ResponseStrategy::default(),
            greedy,
        ),
        (
            "deterministic knapsack".into(),
            false,
            ResponseStrategy::default(),
            greedy,
        ),
        (
            "path-aware response".into(),
            true,
            ResponseStrategy::PathAware,
            greedy,
        ),
        (
            "deterministic + path-aware".into(),
            false,
            ResponseStrategy::PathAware,
            greedy,
        ),
        (
            "spray-and-wait responses (L=4)".into(),
            true,
            ResponseStrategy::default(),
            ForwardingStrategy::SprayAndWait { initial_copies: 4 },
        ),
        (
            "epidemic responses".into(),
            true,
            ResponseStrategy::default(),
            ForwardingStrategy::Epidemic,
        ),
        (
            "direct-delivery responses".into(),
            true,
            ResponseStrategy::default(),
            ForwardingStrategy::Direct,
        ),
    ];
    let sizes = ablation_sizes_mb();
    let mut points = Vec::new();
    for &(_, probabilistic, response, routing) in &variants {
        for &mb in &sizes {
            points.push(SweepPoint {
                trace: &trace,
                scheme: SchemeKind::Intentional,
                config: ExperimentConfig {
                    mean_data_size: megabits(mb),
                    probabilistic_selection: probabilistic,
                    response,
                    response_routing: routing,
                    ..mit_config(scale)
                },
            });
        }
    }
    let results = timed_averaged_sweep(&points, seeds);
    variants
        .into_iter()
        .zip(into_rows(results, sizes.len()))
        .map(|((label, _, _, _), (reports, timings))| AblationRow {
            label,
            reports,
            timings,
        })
        .collect()
}

// ------------------------------------------------------ Bounds study

/// One scheme's averaged metrics in the bounds comparison.
#[derive(Debug, Clone)]
pub struct BoundsRow {
    /// The scheme.
    pub scheme: SchemeKind,
    /// Averaged metrics on the study configuration.
    pub report: AveragedReport,
    /// Throughput accounting for this scheme's runs.
    pub timing: PointTiming,
}

/// Compares the paper's five schemes against the epidemic-flooding
/// upper bound on the MIT Reality configuration, including the network
/// cost per satisfied query (flooding buys delivery with bandwidth).
pub fn bounds(scale: f64, seeds: u32) -> Vec<BoundsRow> {
    let trace = preset_trace(TracePreset::MitReality, scale, 42);
    let cfg = mit_config(scale);
    let points: Vec<SweepPoint<'_>> = SchemeKind::ALL_WITH_BOUNDS
        .iter()
        .map(|&scheme| SweepPoint {
            trace: &trace,
            scheme,
            config: cfg.clone(),
        })
        .collect();
    let results = timed_averaged_sweep(&points, seeds);
    SchemeKind::ALL_WITH_BOUNDS
        .iter()
        .zip(results)
        .map(|(&scheme, (report, timing))| BoundsRow {
            scheme,
            report,
            timing,
        })
        .collect()
}

// -------------------------------------------------- NCL strategy study

/// One NCL-selection strategy's averaged metrics, per trace preset.
#[derive(Debug, Clone)]
pub struct NclStrategyRow {
    /// Strategy description.
    pub label: String,
    /// One report per entry of [`ncl_study_presets`].
    pub reports: Vec<AveragedReport>,
    /// Throughput accounting per report (same order).
    pub timings: Vec<PointTiming>,
}

/// The traces the NCL-strategy study runs on.
pub fn ncl_study_presets() -> Vec<TracePreset> {
    vec![TracePreset::MitReality, TracePreset::Infocom06]
}

/// Compares the paper's probabilistic NCL selection metric (Eq. 3)
/// against degree centrality, raw contact frequency and a random pick —
/// the §IV design-choice ablation.
pub fn ncl_strategies(scale: f64, seeds: u32) -> Vec<NclStrategyRow> {
    use dtn_core::ncl::SelectionStrategy;
    let strategies: Vec<(String, SelectionStrategy)> = vec![
        ("path metric (paper)".into(), SelectionStrategy::PathMetric),
        (
            "degree centrality".into(),
            SelectionStrategy::DegreeCentrality,
        ),
        (
            "contact frequency".into(),
            SelectionStrategy::ContactFrequency,
        ),
        ("random".into(), SelectionStrategy::Random { seed: 9 }),
    ];
    let traces: Vec<(TracePreset, ContactTrace)> = ncl_study_presets()
        .into_iter()
        .map(|p| (p, preset_trace(p, scale, 42)))
        .collect();
    let mut points = Vec::new();
    for &(_, strategy) in &strategies {
        for (preset, trace) in &traces {
            let lifetime = match preset {
                TracePreset::Infocom06 => Duration::hours(3),
                _ => Duration::weeks(1),
            };
            points.push(SweepPoint {
                trace,
                scheme: SchemeKind::Intentional,
                config: ExperimentConfig {
                    ncl_count: preset.default_ncl_count(),
                    mean_data_lifetime: Duration((lifetime.as_secs() as f64 * scale) as u64)
                        .max(Duration::minutes(30)),
                    ncl_selection: strategy,
                    ..ExperimentConfig::default()
                },
            });
        }
    }
    let results = timed_averaged_sweep(&points, seeds);
    strategies
        .into_iter()
        .zip(into_rows(results, traces.len()))
        .map(|((label, _), (reports, timings))| NclStrategyRow {
            label,
            reports,
            timings,
        })
        .collect()
}

// -------------------------------------------------- Epoch churn study

/// One epoch-interval point of the churn study.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Human-readable epoch cadence ("frozen" for no epochs).
    pub label: String,
    /// The swept maintenance-epoch interval (`None` = frozen NCLs).
    pub epoch_interval: Option<Duration>,
    /// Averaged intentional-scheme metrics at this cadence.
    pub report: AveragedReport,
    /// Throughput accounting for this point's runs.
    pub timing: PointTiming,
}

/// The epoch cadences of the churn sweep, scaled with the trace. The
/// leading `None` is the frozen-NCL baseline every other point is read
/// against.
pub fn churn_intervals(scale: f64) -> Vec<Option<Duration>> {
    let mut intervals = vec![None];
    intervals.extend(
        [
            Duration::hours(2),
            Duration::hours(6),
            Duration::hours(12),
            Duration::days(1),
        ]
        .into_iter()
        .map(|d| {
            Some(Duration((d.as_secs() as f64 * scale.max(0.25)) as u64).max(Duration::minutes(30)))
        }),
    );
    intervals
}

/// The churn study: delivery ratio and delay of the intentional scheme
/// vs the maintenance-epoch interval, on a two-regime synthetic trace
/// whose hubs move at the midpoint (so warm-up-frozen NCLs are stale
/// for the whole measurement phase). Fast cadences adapt quickly but
/// churn the central set and migrate more cache copies; `None` never
/// adapts — the gap between the two is what online re-election buys.
pub fn churn(scale: f64, seeds: u32) -> Vec<ChurnRow> {
    churn_with(scale, seeds, churn_intervals(scale))
}

/// [`churn`] with caller-chosen epoch cadences — the `--epoch` flag of
/// `experiments` narrows the sweep to frozen-vs-one-cadence this way.
pub fn churn_with(scale: f64, seeds: u32, intervals: Vec<Option<Duration>>) -> Vec<ChurnRow> {
    let s = scale.max(0.05);
    let half = Duration((Duration::days(2).as_secs() as f64 * s) as u64).max(Duration::hours(4));
    let trace = regime_shift_trace(30, (10_000.0 * s) as u64, 42, half);
    let base = ExperimentConfig {
        ncl_count: 4,
        mean_data_lifetime: Duration((half.as_secs() as f64 * 0.9) as u64),
        ..ExperimentConfig::default()
    };
    let points: Vec<SweepPoint<'_>> = intervals
        .iter()
        .map(|&epoch_interval| SweepPoint {
            trace: &trace,
            scheme: SchemeKind::Intentional,
            config: ExperimentConfig {
                epoch_interval,
                ..base.clone()
            },
        })
        .collect();
    let results = timed_averaged_sweep(&points, seeds);
    intervals
        .into_iter()
        .zip(results)
        .map(|(epoch_interval, (report, timing))| ChurnRow {
            label: epoch_interval.map_or_else(|| "frozen".into(), human_duration),
            epoch_interval,
            report,
            timing,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: f64 = 0.02;

    #[test]
    fn table1_covers_all_presets() {
        let rows = table1(TINY, 1);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.stats.nodes, row.preset.node_count());
            assert!(row.stats.contacts > 0);
        }
    }

    #[test]
    fn fig4_distributions_are_skewed() {
        let series = fig4(TINY, 1);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.scores.len(), s.preset.node_count());
            let max = s.scores.first().map(|c| c.metric).unwrap_or(0.0);
            let min = s.scores.last().map(|c| c.metric).unwrap_or(0.0);
            assert!(max >= min);
        }
    }

    #[test]
    fn fig7_is_monotone_between_bounds() {
        let points = fig7();
        assert_eq!(points.len(), 21);
        for w in points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        assert!((points[0].1 - 0.45).abs() < 1e-9);
        assert!((points[20].1 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn fig9_outputs_are_plausible() {
        let rows = fig9a(0.05, 1);
        assert_eq!(rows.len(), 7);
        // Total generated decreases as T_L grows.
        assert!(rows.first().unwrap().items_generated >= rows.last().unwrap().items_generated);
        let zipf = fig9b();
        assert_eq!(zipf.len(), 3);
        for (_, probs) in &zipf {
            assert!(probs[0] >= probs[19]);
        }
    }

    #[test]
    fn human_duration_picks_natural_units() {
        assert_eq!(human_duration(Duration::hours(12)), "12h");
        assert_eq!(human_duration(Duration::days(3)), "3d");
        assert_eq!(human_duration(Duration::minutes(90)), "1.5h");
        assert_eq!(human_duration(Duration((1.4 * 86_400.0) as u64)), "1.4d");
    }

    #[test]
    fn churn_intervals_start_frozen_and_stay_sorted() {
        let intervals = churn_intervals(1.0);
        assert_eq!(intervals.len(), 5);
        assert!(intervals[0].is_none());
        let cadences: Vec<u64> = intervals[1..]
            .iter()
            .map(|i| i.expect("swept cadence").as_secs())
            .collect();
        assert!(cadences.windows(2).all(|w| w[0] < w[1]));
        // Scaling shrinks cadences but never below the floor.
        for i in churn_intervals(0.01).into_iter().flatten() {
            assert!(i >= Duration::minutes(30));
        }
    }

    #[test]
    fn fig13_row_shape() {
        // One tiny smoke run: K ∈ {1..10} would be slow, so check the
        // static shape helpers only.
        assert_eq!(fig13_sizes_mb().len(), 3);
        assert_eq!(sizes_mb().len(), 5);
    }
}
