//! Flight-recorder overhead benchmark: the same fig10-style point run
//! uninstrumented, with the windowed [`Telemetry`] recorder tee'd onto
//! the probe layer, and with the hierarchical phase profiler enabled.
//!
//! Three arms over one manual warm-up → configure → workload protocol
//! (the exact sequence `run_experiment` and `observe` perform):
//!
//! - `off` — no probe, `profile: false`. This is the zero-cost-off
//!   gate arm: its time must stay within 5% of the committed
//!   `BENCH_sim_engine.json` optimized baseline, because with
//!   everything disabled the engine runs the identical hot loop.
//! - `telemetry` — a [`Telemetry`] window recorder installed as the
//!   probe. Measures the cost of folding every engine event into the
//!   fixed window array (alloc-free after setup).
//! - `profiler` — `profile: true`. Measures the scoped span tree
//!   (monotonic clock reads around engine phases).
//!
//! Before measuring, the `off` arm asserts bit-identical [`Metrics`]
//! against `run_experiment` (same protocol, so same numbers) and the
//! instrumented arms assert they perturb nothing. The committed
//! `BENCH_telemetry.json` records the gate; `cargo bench -p bench
//! --bench telemetry -- --test` runs each body once as a CI smoke.

use std::cell::RefCell;
use std::rc::Rc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dtn_cache::experiment::{build_scheme, run_experiment, ExperimentConfig};
use dtn_cache::{NetworkSetup, SchemeKind};
use dtn_core::ids::NodeId;
use dtn_core::time::{Duration, Time};
use dtn_sim::engine::{SimConfig, Simulator};
use dtn_sim::metrics::Metrics;
use dtn_sim::telemetry::{Telemetry, TelemetryConfig};
use dtn_trace::synthetic::SyntheticTraceBuilder;
use dtn_trace::trace::ContactTrace;
use dtn_trace::TracePreset;
use dtn_workload::{Workload, WorkloadConfig};

/// Same reduced fig10 point as `benches/sim_engine.rs`, so the `off`
/// arm is directly comparable to the committed optimized baseline.
const SCALE: f64 = 0.3;
const SEED: u64 = 42;

/// Which instrument the run carries.
#[derive(Clone, Copy, PartialEq)]
enum Instrument {
    Off,
    Telemetry,
    Profiler,
}

fn fig10_trace() -> ContactTrace {
    SyntheticTraceBuilder::from_preset(TracePreset::MitReality)
        .scale(SCALE)
        .seed(42)
        .build()
}

fn fig10_config() -> ExperimentConfig {
    ExperimentConfig {
        ncl_count: 8,
        mean_data_lifetime: Duration((Duration::weeks(1).as_secs() as f64 * SCALE) as u64)
            .max(Duration::hours(1)),
        ..ExperimentConfig::default()
    }
}

/// The `run_experiment` protocol spelled out so an instrument can be
/// attached: warm-up over the first half, NCL selection + configure,
/// workload over the second half.
fn run_point(trace: &ContactTrace, config: &ExperimentConfig, instrument: Instrument) -> Metrics {
    let scheme = build_scheme(SchemeKind::Intentional, config);
    let mut sim = Simulator::new(
        trace,
        scheme,
        SimConfig {
            buffer_range: config.buffer_range,
            sample_interval: config.sample_interval,
            epoch_interval: config.epoch_interval,
            path_refresh: config.path_refresh,
            seed: SEED,
            profile: instrument == Instrument::Profiler,
            ..SimConfig::default()
        },
    );

    let mid = trace.midpoint();
    sim.run_until(mid);

    let capacities: Vec<u64> = (0..trace.node_count() as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    let setup = NetworkSetup {
        rate_table: &rate_table,
        now: mid,
        capacities,
        horizon: config
            .horizon
            .unwrap_or_else(|| config.mean_data_lifetime.as_secs_f64().max(3600.0)),
        path_refresh: config.path_refresh,
    };
    sim.scheme_mut().configure(&setup);

    let end = Time(trace.duration().as_secs());
    let telemetry = (instrument == Instrument::Telemetry).then(|| {
        let recorder = Rc::new(RefCell::new(Telemetry::new(&TelemetryConfig::spanning(
            mid,
            Duration(end.0 - mid.0),
            24,
            config.ncl_count,
        ))));
        sim.set_probe(Box::new(Rc::clone(&recorder)));
        recorder
    });

    let workload_cfg = WorkloadConfig {
        generation_probability: config.generation_probability,
        mean_lifetime: config.mean_data_lifetime,
        mean_size: config.mean_data_size,
        zipf_exponent: config.zipf_exponent,
        query_constraint: config.query_constraint,
        window: (mid, end),
        seed: SEED,
    };
    let workload = Workload::generate(trace.node_count(), &workload_cfg);
    sim.add_workload(workload.into_events());
    sim.run_to_end();

    if let Some(recorder) = telemetry {
        drop(sim.take_probe());
        let telemetry = Rc::try_unwrap(recorder)
            .expect("engine returned its telemetry handle")
            .into_inner();
        black_box(telemetry.totals());
    }
    sim.metrics().clone()
}

fn bench_telemetry(c: &mut Criterion) {
    let trace = fig10_trace();
    let cfg = fig10_config();

    // Self-checks: the spelled-out protocol reproduces `run_experiment`
    // bit-for-bit, and neither instrument perturbs the engine.
    let reference = run_experiment(&trace, SchemeKind::Intentional, &cfg, SEED);
    let off = run_point(&trace, &cfg, Instrument::Off);
    assert_eq!(
        off, reference.metrics,
        "manual protocol diverged from run_experiment on the benchmark point"
    );
    assert_eq!(
        run_point(&trace, &cfg, Instrument::Telemetry),
        off,
        "telemetry probe perturbed the run"
    );
    assert_eq!(
        run_point(&trace, &cfg, Instrument::Profiler),
        off,
        "profiler perturbed the run"
    );

    let mut group = c.benchmark_group("telemetry");
    for (name, instrument) in [
        ("off", Instrument::Off),
        ("telemetry", Instrument::Telemetry),
        ("profiler", Instrument::Profiler),
    ] {
        group.bench_with_input(
            BenchmarkId::new(name, "fig10_mit_single_seed"),
            &trace,
            |b, trace| b.iter(|| run_point(black_box(trace), black_box(&cfg), instrument)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_telemetry
}
criterion_main!(benches);
