//! One bench per table/figure of the paper, at reduced scale
//! (DESIGN.md §4): the same code paths as the `experiments` binary with
//! tiny traces so `cargo bench` exercises every reproduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use bench::figures;
use dtn_cache::experiment::{run_experiment, ExperimentConfig};
use dtn_cache::replacement::ReplacementKind;
use dtn_cache::SchemeKind;
use dtn_core::time::Duration;
use dtn_sim::engine::megabits;
use dtn_trace::TracePreset;

/// Tiny scale shared by the simulation benches: keeps a single
/// experiment run in the tens of milliseconds.
const BENCH_SCALE: f64 = 0.01;

fn mit_bench_config() -> ExperimentConfig {
    ExperimentConfig {
        ncl_count: 4,
        mean_data_lifetime: Duration::hours(12),
        ..ExperimentConfig::default()
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_trace_stats", |b| {
        b.iter(|| figures::table1(black_box(BENCH_SCALE), 42))
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4_metric_distributions", |b| {
        b.iter(|| figures::fig4(black_box(BENCH_SCALE), 42))
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_sigmoid_curve", |b| b.iter(figures::fig7));
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9a_workload_volume", |b| {
        b.iter(|| figures::fig9a(black_box(0.02), 42))
    });
    c.bench_function("fig9b_zipf_curves", |b| b.iter(figures::fig9b));
}

fn bench_fig10_point(c: &mut Criterion) {
    // One representative (T_L, scheme) cell of Fig. 10: the intentional
    // scheme on the scaled MIT Reality trace.
    let trace = figures::preset_trace(TracePreset::MitReality, BENCH_SCALE, 42);
    let cfg = mit_bench_config();
    c.bench_function("fig10_point_intentional_mit", |b| {
        b.iter(|| run_experiment(black_box(&trace), SchemeKind::Intentional, &cfg, 1))
    });
    c.bench_function("fig10_point_nocache_mit", |b| {
        b.iter(|| run_experiment(black_box(&trace), SchemeKind::NoCache, &cfg, 1))
    });
}

fn bench_fig11_point(c: &mut Criterion) {
    let trace = figures::preset_trace(TracePreset::MitReality, BENCH_SCALE, 42);
    let cfg = ExperimentConfig {
        mean_data_size: megabits(200),
        ..mit_bench_config()
    };
    c.bench_function("fig11_point_large_data_mit", |b| {
        b.iter(|| run_experiment(black_box(&trace), SchemeKind::Intentional, &cfg, 1))
    });
}

fn bench_fig12_point(c: &mut Criterion) {
    let trace = figures::preset_trace(TracePreset::MitReality, BENCH_SCALE, 42);
    for kind in [ReplacementKind::Lru, ReplacementKind::UtilityKnapsack] {
        let cfg = ExperimentConfig {
            replacement: kind,
            mean_data_size: megabits(150),
            ..mit_bench_config()
        };
        c.bench_function(&format!("fig12_point_{}", kind.name()), |b| {
            b.iter(|| run_experiment(black_box(&trace), SchemeKind::Intentional, &cfg, 1))
        });
    }
}

fn bench_fig13_point(c: &mut Criterion) {
    let trace = figures::preset_trace(TracePreset::Infocom06, BENCH_SCALE, 42);
    let cfg = ExperimentConfig {
        ncl_count: 5,
        mean_data_lifetime: Duration::minutes(30),
        ..ExperimentConfig::default()
    };
    c.bench_function("fig13_point_k5_infocom06", |b| {
        b.iter(|| run_experiment(black_box(&trace), SchemeKind::Intentional, &cfg, 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table1,
        bench_fig4,
        bench_fig7,
        bench_fig9,
        bench_fig10_point,
        bench_fig11_point,
        bench_fig12_point,
        bench_fig13_point,
}
criterion_main!(benches);
