//! Path-engine benchmarks: incremental accumulator search vs the naive
//! owned-path reference, NCL metric sweep, and oracle refresh epochs.
//!
//! Three groups on synthetic contact graphs of 100 / 500 / 2000 nodes:
//!
//! - `single_source` — one label-setting search, `optimized`
//!   (`shortest_paths`, O(r) incremental relaxations) vs `naive`
//!   (`shortest_paths_naive`, O(r²) + two clones per relaxation),
//! - `all_metrics` — the full NCL selection-metric sweep (one search per
//!   node), optimized vs the equivalent naive loop; this is the ≥5×
//!   acceptance target at 500 nodes,
//! - `oracle_refresh` — one full PathOracle refresh epoch (shared
//!   snapshot + per-source tables) vs the unshared formulation that
//!   rebuilds the contact graph for every source.
//!
//! `cargo bench -p bench --bench path_engine` prints ns/iter per entry;
//! `-- --test` runs every body once as a CI smoke test. The committed
//! `BENCH_path_engine.json` baseline was produced from this benchmark.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dtn_core::graph::ContactGraph;
use dtn_core::ids::NodeId;
use dtn_core::ncl::all_metrics;
use dtn_core::path::{shortest_paths, shortest_paths_naive};
use dtn_core::rate::RateTable;
use dtn_core::time::{Duration, Time};
use dtn_sim::oracle::PathOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Path-weight horizon: 10 hours, matching the paper's T range.
const HORIZON: f64 = 36_000.0;

/// Random connected-ish contact graph with ~`avg_degree` edges per node
/// and DTN-realistic rates (one contact per ten minutes … per day).
fn synthetic_graph(n: usize, avg_degree: usize, seed: u64) -> ContactGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ContactGraph::new(n);
    // A random spanning backbone keeps most nodes reachable so searches
    // do real work on long multi-hop paths.
    for v in 1..n as u32 {
        let u = rng.gen_range(0..v);
        g.set_rate(NodeId(u), NodeId(v), rng.gen_range(1e-5f64..2e-3));
    }
    let extra = n * avg_degree / 2;
    for _ in 0..extra {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            g.set_rate(NodeId(a), NodeId(b), rng.gen_range(1e-5f64..2e-3));
        }
    }
    g
}

/// The NCL metric sweep exactly as `all_metrics` computes it, but driven
/// by the naive owned-path search — the pre-optimization cost model.
fn naive_all_metrics(g: &ContactGraph) -> Vec<f64> {
    let n = g.node_count();
    g.nodes()
        .map(|node| {
            let paths = shortest_paths_naive(g, node, HORIZON);
            let sum: f64 = g
                .nodes()
                .filter(|&j| j != node)
                .map(|j| paths[j.index()].as_ref().map_or(0.0, |p| p.weight(HORIZON)))
                .sum();
            sum / (n - 1) as f64
        })
        .collect()
}

/// A rate table whose contact counts mirror the synthetic graph sizes.
fn synthetic_rates(n: usize, seed: u64) -> RateTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rates = RateTable::new(n, Time::ZERO);
    for _ in 0..n * 6 {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            rates.record(NodeId(a), NodeId(b), Time(rng.gen_range(1u64..86_400)));
        }
    }
    rates
}

fn bench_single_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_source");
    for &n in &[100usize, 500, 2000] {
        let g = synthetic_graph(n, 8, 42);
        group.bench_with_input(BenchmarkId::new("optimized", n), &g, |b, g| {
            b.iter(|| shortest_paths(black_box(g), NodeId(0), HORIZON))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &g, |b, g| {
            b.iter(|| shortest_paths_naive(black_box(g), NodeId(0), HORIZON))
        });
    }
    group.finish();
}

fn bench_all_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_metrics");
    for &n in &[100usize, 500] {
        let g = synthetic_graph(n, 8, 42);
        group.bench_with_input(BenchmarkId::new("optimized", n), &g, |b, g| {
            b.iter(|| all_metrics(black_box(g), HORIZON))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &g, |b, g| {
            b.iter(|| naive_all_metrics(black_box(g)))
        });
    }
    // The naive sweep at 2000 nodes takes minutes per iteration; only
    // the optimized engine is measured there.
    let g = synthetic_graph(2000, 8, 42);
    group.bench_with_input(BenchmarkId::new("optimized", 2000usize), &g, |b, g| {
        b.iter(|| all_metrics(black_box(g), HORIZON))
    });
    group.finish();
}

fn bench_oracle_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_refresh");
    const SOURCES: u32 = 8;
    for &n in &[100usize, 500, 2000] {
        let rates = synthetic_rates(n, 7);
        let now = Time(86_400);
        group.bench_with_input(
            BenchmarkId::new("shared_snapshot", n),
            &rates,
            |b, rates| {
                let mut oracle = PathOracle::new(n, HORIZON, Duration::hours(6));
                b.iter(|| {
                    // Force a fresh epoch, then serve SOURCES sources from
                    // the one shared snapshot.
                    oracle.invalidate();
                    let mut acc = 0.0;
                    for s in 0..SOURCES {
                        acc += oracle.weight(rates, now, NodeId(s), NodeId(SOURCES));
                    }
                    black_box(acc)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("unshared", n), &rates, |b, rates| {
            b.iter(|| {
                // The pre-optimization cost model: rebuild the contact
                // graph for every source's refresh.
                let mut acc = 0.0;
                for s in 0..SOURCES {
                    let graph = ContactGraph::from_rate_table(rates, now);
                    let table = shortest_paths(&graph, NodeId(s), HORIZON);
                    acc += table.weight_to(NodeId(SOURCES));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_source, bench_all_metrics, bench_oracle_refresh
}
criterion_main!(benches);
