//! Micro-benchmarks of the hot core algorithms: hypoexponential path
//! weights, shortest-opportunistic-path search, NCL selection, the
//! cache-replacement knapsack and workload sampling.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dtn_core::graph::ContactGraph;
use dtn_core::hypoexp;
use dtn_core::ids::NodeId;
use dtn_core::knapsack::{CacheItem, KnapsackSolver};
use dtn_core::ncl::select_central_nodes;
use dtn_core::path::shortest_paths;
use dtn_core::popularity::PopularityEstimator;
use dtn_core::time::{Duration, Time};
use dtn_trace::synthetic::SyntheticTraceBuilder;
use dtn_workload::Zipf;

fn random_graph(nodes: usize, degree: usize, seed: u64) -> ContactGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = ContactGraph::new(nodes);
    for i in 0..nodes as u32 {
        for _ in 0..degree {
            let j = rng.gen_range(0..nodes as u32);
            if i != j {
                g.set_rate(NodeId(i), NodeId(j), rng.gen_range(1e-6..1e-3));
            }
        }
    }
    g
}

fn bench_hypoexp(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypoexp_cdf");
    for hops in [2usize, 4, 8] {
        let rates: Vec<f64> = (1..=hops).map(|k| 1e-4 * k as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(hops), &rates, |b, rates| {
            b.iter(|| hypoexp::cdf(black_box(rates), black_box(36_000.0)))
        });
    }
    group.finish();
}

fn bench_hypoexp_extended(c: &mut Criterion) {
    // The oracle's innermost kernel: one candidate-rate extension of a
    // cached accumulator per relaxation step. The flat evaluation loop
    // (separation scan hoisted out) is what this measures; stage counts
    // mirror path lengths seen at the 10k city scale.
    let mut group = c.benchmark_group("hypoexp_extended_cdf");
    for stages in [4usize, 8, 16, 32] {
        let mut acc = hypoexp::HorizonAccumulator::new(36_000.0);
        for k in 1..=stages {
            acc.push(1e-4 * k as f64);
        }
        group.bench_with_input(BenchmarkId::from_parameter(stages), &acc, |b, acc| {
            b.iter(|| acc.extended_cdf(black_box(7.77e-4)))
        });
    }
    group.finish();
}

fn bench_shortest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortest_paths");
    for n in [50usize, 100, 200] {
        let g = random_graph(n, 8, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| shortest_paths(black_box(g), NodeId(0), 36_000.0))
        });
    }
    group.finish();
}

fn bench_ncl_selection(c: &mut Criterion) {
    let g = random_graph(80, 6, 11);
    c.bench_function("ncl_select_top8_n80", |b| {
        b.iter(|| select_central_nodes(black_box(&g), 8, 36_000.0))
    });
}

fn bench_knapsack(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let items: Vec<CacheItem> = (0..50)
        .map(|_| CacheItem {
            size: rng.gen_range(1 << 20..32 << 20),
            utility: rng.gen_range(0.0..1.0),
        })
        .collect();
    let mut solver = KnapsackSolver::default();
    let capacity = 256 << 20;
    c.bench_function("knapsack_solve_50items", |b| {
        b.iter(|| solver.solve(black_box(&items), black_box(capacity)))
    });
    c.bench_function("knapsack_solve_in_50items_scratch_reuse", |b| {
        b.iter(|| {
            let selection = solver.solve_in(black_box(&items), black_box(capacity));
            black_box(selection.indices.len())
        })
    });
    c.bench_function("knapsack_probabilistic_50items", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| solver.probabilistic_select(black_box(&items), black_box(capacity), &mut rng))
    });
}

fn bench_knapsack_dp_heavy(c: &mut Criterion) {
    // Forces the full DP table (total weight far above capacity) at a
    // coarser quantum so the row update — the blocked, branchless
    // kernel — dominates. 200 items × 4096 weight units is the
    // replacement workload at a loaded NCL.
    let mut rng = StdRng::seed_from_u64(13);
    let items: Vec<CacheItem> = (0..200)
        .map(|_| CacheItem {
            size: rng.gen_range(1 << 20..64 << 20),
            utility: rng.gen_range(0.0..1.0),
        })
        .collect();
    let mut solver = KnapsackSolver::new(1 << 20);
    let capacity = 4096u64 << 20;
    c.bench_function("knapsack_dp_200items_4096units", |b| {
        b.iter(|| {
            let selection = solver.solve_in(black_box(&items), black_box(capacity));
            black_box(selection.indices.len())
        })
    });
}

fn bench_popularity(c: &mut Criterion) {
    c.bench_function("popularity_record_and_query", |b| {
        b.iter(|| {
            let mut est = PopularityEstimator::new();
            for t in 0..100u64 {
                est.record_request(Time(t * 500));
            }
            black_box(est.popularity(Time(60_000), Time(120_000)))
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(1000, 1.0);
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("zipf_sample_m1000", |b| b.iter(|| zipf.sample(&mut rng)));
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("synthetic_trace_40n_10k_contacts", |b| {
        b.iter(|| {
            SyntheticTraceBuilder::new(40)
                .duration(Duration::days(3))
                .target_contacts(10_000)
                .seed(black_box(1))
                .build()
        })
    });
}

criterion_group!(
    benches,
    bench_hypoexp,
    bench_hypoexp_extended,
    bench_shortest_paths,
    bench_ncl_selection,
    bench_knapsack,
    bench_knapsack_dp_heavy,
    bench_popularity,
    bench_zipf,
    bench_trace_generation,
);
criterion_main!(benches);
