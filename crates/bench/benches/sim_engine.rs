//! End-to-end simulation hot-loop benchmark: the indexed-queue
//! intentional scheme vs the retain-sweep reference implementation.
//!
//! One fig10-style point (MIT Reality synthetic preset at reduced
//! scale, the §VI-B base configuration) is run single-seed through the
//! full `run_experiment` pipeline — warm-up, NCL selection, workload —
//! twice per group:
//!
//! - `optimized` — the production [`dtn_cache::intentional::IntentionalScheme`]
//!   with per-node pending-message indexes, lazy expiry heaps,
//!   slab-backed knapsack exchange with dirty-generation skipping, and
//!   scratch reuse throughout,
//! - `reference` — [`dtn_cache::reference::ReferenceIntentionalScheme`],
//!   the faithful per-contact retain-sweep port the differential suite
//!   (`tests/scheme_equivalence.rs`) holds the optimized engine
//!   bit-identical to.
//!
//! Both run under the exact same trace, buffers, workload and seed, so
//! the ratio is pure engine overhead. The committed
//! `BENCH_sim_engine.json` baseline was produced from this benchmark;
//! the acceptance target is ≥3× on the single-seed end-to-end run.
//! `cargo bench -p bench --bench sim_engine -- --test` runs each body
//! once as a CI smoke test.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dtn_cache::experiment::{run_experiment, run_experiment_with, ExperimentConfig};
use dtn_cache::intentional::IntentionalConfig;
use dtn_cache::reference::ReferenceIntentionalScheme;
use dtn_cache::SchemeKind;
use dtn_core::time::Duration;
use dtn_trace::synthetic::SyntheticTraceBuilder;
use dtn_trace::trace::ContactTrace;
use dtn_trace::TracePreset;

/// Trace scale: a reduced fig10 point that still runs thousands of
/// contacts with real cache churn.
const SCALE: f64 = 0.3;

/// Workload seed; both engines consume it identically (bit-identical
/// metrics), so one seed is a fair single-seed comparison.
const SEED: u64 = 42;

fn fig10_trace() -> ContactTrace {
    SyntheticTraceBuilder::from_preset(TracePreset::MitReality)
        .scale(SCALE)
        .seed(42)
        .build()
}

/// The §VI-B MIT Reality base configuration at reduced scale, as
/// `figures::fig10` builds it.
fn fig10_config() -> ExperimentConfig {
    ExperimentConfig {
        ncl_count: 8,
        mean_data_lifetime: Duration((Duration::weeks(1).as_secs() as f64 * SCALE) as u64)
            .max(Duration::hours(1)),
        ..ExperimentConfig::default()
    }
}

/// The reference scheme mirroring `build_scheme(SchemeKind::Intentional)`.
fn reference_scheme(config: &ExperimentConfig) -> Box<ReferenceIntentionalScheme> {
    Box::new(ReferenceIntentionalScheme::new(IntentionalConfig {
        ncl_count: config.ncl_count,
        response: config.response,
        replacement: config.replacement,
        probabilistic_selection: config.probabilistic_selection,
        response_routing: config.response_routing,
        ncl_selection: config.ncl_selection,
        ..IntentionalConfig::default()
    }))
}

fn bench_sim_engine(c: &mut Criterion) {
    let trace = fig10_trace();
    let cfg = fig10_config();

    // Self-check: the two engines must report bit-identical metrics on
    // this point, otherwise the speedup ratio is meaningless.
    let fast = run_experiment(&trace, SchemeKind::Intentional, &cfg, SEED);
    let slow = run_experiment_with(
        &trace,
        SchemeKind::Intentional,
        reference_scheme(&cfg),
        &cfg,
        SEED,
    );
    assert_eq!(
        fast.metrics, slow.metrics,
        "optimized and reference engines diverged on the benchmark point"
    );

    let mut group = c.benchmark_group("sim_engine");
    group.bench_with_input(
        BenchmarkId::new("optimized", "fig10_mit_single_seed"),
        &trace,
        |b, trace| {
            b.iter(|| {
                run_experiment(
                    black_box(trace),
                    SchemeKind::Intentional,
                    black_box(&cfg),
                    SEED,
                )
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("reference", "fig10_mit_single_seed"),
        &trace,
        |b, trace| {
            b.iter(|| {
                run_experiment_with(
                    black_box(trace),
                    SchemeKind::Intentional,
                    reference_scheme(&cfg),
                    black_box(&cfg),
                    SEED,
                )
            })
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_engine
}
criterion_main!(benches);
