//! Online serving mode: a bounded-latency decision service over a live
//! contact stream.
//!
//! The simulator answers "what would the scheme have done" after the
//! fact; [`DecisionService`] answers it *while the network runs*. It
//! wraps the real engine ([`Simulator`]) over any [`ContactSource`] —
//! a replayed trace, a [`StreamSource`](dtn_sim::engine::StreamSource)
//! fed from a socket, an accelerated synthetic stream — and serves two
//! request kinds against the engine's exact live state:
//!
//! - [`Request::Place`]: where should a new data item be cached? →
//!   the elected NCL set plus, per NCL, the best next relay from the
//!   source under the §V-A greedy rule ([`PlacementDecision`]).
//! - [`Request::Route`]: where should a query go? → the central node
//!   with the highest opportunistic weight from the requester plus the
//!   best next relay toward it ([`RouteDecision`]).
//!
//! # Concurrency model (snapshot reads, background refresh)
//!
//! Every decision reads through the scheme's
//! [`DecisionPoint`](dtn_sim::decision::DecisionPoint), whose oracle
//! reads go to the [`PathOracle`](dtn_sim::oracle::PathOracle)'s
//! generation-versioned snapshot: a decision never waits for a refresh;
//! it reads the current snapshot, and staleness is bounded by the
//! oracle's refresh interval. [`DecisionService::refresh`] is the
//! background arm — it pre-stages path searches for the hot sources on
//! worker threads against the same snapshot, so subsequent decisions
//! hit staged results instead of recomputing inline. Priming is
//! byte-identical to the lazy miss path, so serving with or without
//! refresh produces the same answers (the differential tests pin this).
//! Epoch-driven NCL re-election arrives through the engine's own epoch
//! channel: [`DecisionService::decide`] ingests the contact stream up
//! to the request time before answering, so re-elections are visible to
//! the very next decision.
//!
//! # Latency accounting
//!
//! Each decision's service time is measured with a monotonic clock and
//! recorded in a nanosecond histogram plus a budget-violation counter
//! against [`ServeConfig::latency_budget_ns`]. [`write_jsonl`] exports
//! the per-decision trace in the `dtn-serve/1` JSONL schema (header,
//! one line per decision, stats footer) alongside the
//! `dtn-observe/2` captures.

use std::io::{self, Write};
use std::time::Instant;

use dtn_cache::intentional::IntentionalScheme;
use dtn_core::hist::Histogram;
use dtn_core::ids::{DataId, NodeId};
use dtn_core::time::Time;
use dtn_sim::decision::{PlacementDecision, RouteDecision};
use dtn_sim::engine::{ContactSource, Simulator};

/// Serving-loop configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-decision latency budget; decisions slower than this bump the
    /// violation counter. Default 1 ms.
    pub latency_budget_ns: u64,
    /// Bucket width of the service-time histogram, in nanoseconds.
    pub hist_bucket_ns: u64,
    /// Bucket count of the service-time histogram (overflow clamps to
    /// the last bucket).
    pub hist_buckets: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            latency_budget_ns: 1_000_000,
            hist_bucket_ns: 10_000,
            hist_buckets: 512,
        }
    }
}

/// A decision request, stamped with its stream arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Where should `data`, currently at `source`, be cached?
    Place { data: DataId, source: NodeId },
    /// Where should `requester`'s query for `data` go?
    Route { requester: NodeId, data: DataId },
}

/// A decision answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// NCL set + per-NCL relay plan.
    Place(PlacementDecision),
    /// Central target + next hop; `None` when no centrals are elected.
    Route(Option<RouteDecision>),
}

/// One served decision, as recorded in the `dtn-serve/1` trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Sequence number in the decision stream.
    pub seq: u64,
    /// Simulation time the decision was served at (the request time,
    /// clamped forward to the stream position if it had already moved).
    pub at: Time,
    /// The request.
    pub request: Request,
    /// The answer.
    pub answer: Answer,
    /// Oracle snapshot epoch that answered the decision.
    pub oracle_epoch: u64,
    /// Wall-clock service time in nanoseconds (decision computation
    /// only; stream ingestion is accounted to the stream, not the
    /// decision).
    pub service_ns: u64,
}

/// Why a decision could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The scheme has not been configured yet (no NCL election, no
    /// oracle) — call [`DecisionService::configure_at`] first.
    NotConfigured,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NotConfigured => {
                write!(f, "decision service not configured: no NCLs elected yet")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Aggregate serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Decisions served.
    pub decisions: u64,
    /// Decisions over the latency budget.
    pub budget_violations: u64,
    /// FNV-1a checksum over the canonical encoding of every answer —
    /// two runs over the same stream are bit-identical iff these match.
    pub checksum: u64,
    /// Maximum observed service time, ns.
    pub max_service_ns: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_u64(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fold_option_node(hash: u64, node: Option<NodeId>) -> u64 {
    match node {
        Some(n) => fnv1a_u64(fnv1a_u64(hash, 1), n.0 as u64),
        None => fnv1a_u64(hash, 0),
    }
}

/// The online decision service: the real engine plus a serving loop.
pub struct DecisionService<C: ContactSource> {
    sim: Simulator<IntentionalScheme, C>,
    nodes: Vec<NodeId>,
    cfg: ServeConfig,
    hist: Histogram,
    decisions: u64,
    budget_violations: u64,
    checksum: u64,
    max_service_ns: u64,
    log: Option<Vec<Decision>>,
}

impl<C: ContactSource> DecisionService<C> {
    /// Wraps an engine. The simulator may be fresh or already warmed;
    /// decisions are refused until the scheme is configured
    /// ([`configure_at`](Self::configure_at) or an external
    /// `configure`).
    pub fn new(sim: Simulator<IntentionalScheme, C>, cfg: ServeConfig) -> Self {
        let nodes = (0..sim.source().node_count() as u32).map(NodeId).collect();
        let hist = Histogram::new(cfg.hist_bucket_ns.max(1), cfg.hist_buckets.max(1));
        DecisionService {
            sim,
            nodes,
            cfg,
            hist,
            decisions: 0,
            budget_violations: 0,
            checksum: FNV_OFFSET,
            max_service_ns: 0,
            log: None,
        }
    }

    /// Turns on per-decision recording (for the JSONL export and the
    /// differential harness). Returns `self` for builder-style use.
    pub fn with_decision_log(mut self) -> Self {
        self.log = Some(Vec::new());
        self
    }

    /// Ingests the stream up to `now`, then runs NCL election and
    /// scheme configuration from the engine's live state — the serving
    /// analog of the experiment protocol's warm-up/configure phases.
    pub fn configure_at(
        &mut self,
        now: Time,
        horizon: f64,
        path_refresh: Option<dtn_core::time::Duration>,
    ) {
        self.sim.run_until(now);
        let capacities: Vec<u64> = self
            .nodes
            .iter()
            .map(|&n| self.sim.buffer_capacity(n))
            .collect();
        let rate_table = self.sim.rate_table().clone();
        use dtn_cache::CachingScheme;
        self.sim.scheme_mut().configure(&dtn_cache::NetworkSetup {
            rate_table: &rate_table,
            now,
            capacities,
            horizon,
            path_refresh,
        });
    }

    /// Serves one decision: ingests the contact stream (and any epoch
    /// re-elections) up to the request time, then answers from the
    /// scheme's live decision point. Only the answer computation counts
    /// toward the decision's service time.
    ///
    /// # Errors
    ///
    /// [`ServeError::NotConfigured`] until the scheme has elected NCLs.
    pub fn decide(&mut self, at: Time, request: Request) -> Result<Decision, ServeError> {
        let at = at.max(self.sim.now());
        self.sim.run_until(at);
        let (scheme, rates, now) = self.sim.decision_inputs();
        let started = Instant::now();
        let mut dp = scheme
            .decision_point(rates, now)
            .ok_or(ServeError::NotConfigured)?;
        let oracle_epoch = dp.snapshot_epoch();
        let answer = match request {
            Request::Place { source, .. } => Answer::Place(dp.place(source, &self.nodes)),
            Request::Route { requester, .. } => Answer::Route(dp.route(requester, &self.nodes)),
        };
        let service_ns = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;

        self.decisions += 1;
        let clamp = (self.hist.bucket_width() * (self.cfg.hist_buckets.max(1) as u64 - 1)).max(1);
        self.hist.record(service_ns.min(clamp));
        self.max_service_ns = self.max_service_ns.max(service_ns);
        if service_ns > self.cfg.latency_budget_ns {
            self.budget_violations += 1;
        }
        self.checksum = checksum_fold(self.checksum, at, &request, &answer);

        let decision = Decision {
            seq: self.decisions - 1,
            at,
            request,
            answer,
            oracle_epoch,
            service_ns,
        };
        if let Some(log) = &mut self.log {
            log.push(decision.clone());
        }
        Ok(decision)
    }

    /// Background refresh: pre-stages path searches for `sources` (all
    /// nodes when empty) on up to `threads` workers against the current
    /// oracle snapshot. No-op before configuration; never changes what
    /// any decision answers — only how fast.
    pub fn refresh(&mut self, sources: &[NodeId], threads: usize) {
        let (scheme, rates, now) = self.sim.decision_inputs();
        if let Some(mut dp) = scheme.decision_point(rates, now) {
            if sources.is_empty() {
                dp.prime(&self.nodes, threads);
            } else {
                dp.prime(sources, threads);
            }
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            decisions: self.decisions,
            budget_violations: self.budget_violations,
            checksum: self.checksum,
            max_service_ns: self.max_service_ns,
        }
    }

    /// The service-time histogram (nanosecond buckets).
    pub fn latency_hist(&self) -> &Histogram {
        &self.hist
    }

    /// Recorded decisions (empty slice when the log is off).
    pub fn decisions(&self) -> &[Decision] {
        self.log.as_deref().unwrap_or(&[])
    }

    /// The wrapped engine.
    pub fn sim(&self) -> &Simulator<IntentionalScheme, C> {
        &self.sim
    }

    /// Mutable access to the wrapped engine (e.g. to feed workload
    /// events into the stream between decisions).
    pub fn sim_mut(&mut self) -> &mut Simulator<IntentionalScheme, C> {
        &mut self.sim
    }

    /// Consumes the service, returning the engine (for post-run metric
    /// and differential checks).
    pub fn into_sim(self) -> Simulator<IntentionalScheme, C> {
        self.sim
    }
}

/// Folds one decision into the stream checksum: request identity, the
/// serving time and every node choice in the answer. Deliberately
/// excludes wall-clock fields so two runs over the same stream hash
/// identically.
fn checksum_fold(mut h: u64, at: Time, request: &Request, answer: &Answer) -> u64 {
    h = fnv1a_u64(h, at.0);
    match *request {
        Request::Place { data, source } => {
            h = fnv1a_u64(h, 1);
            h = fnv1a_u64(h, data.0);
            h = fnv1a_u64(h, source.0 as u64);
        }
        Request::Route { requester, data } => {
            h = fnv1a_u64(h, 2);
            h = fnv1a_u64(h, requester.0 as u64);
            h = fnv1a_u64(h, data.0);
        }
    }
    match answer {
        Answer::Place(p) => {
            h = fnv1a_u64(h, p.ncls.len() as u64);
            for plan in &p.plan {
                h = fnv1a_u64(h, plan.central.0 as u64);
                h = fold_option_node(h, plan.next_hop);
            }
        }
        Answer::Route(r) => match r {
            None => h = fnv1a_u64(h, 0),
            Some(r) => {
                h = fnv1a_u64(h, r.central.0 as u64);
                h = fold_option_node(h, r.next_hop);
            }
        },
    }
    h
}

/// Writes the recorded decision trace as `dtn-serve/1` JSONL: a header
/// line, one line per decision, and a stats footer. Returns the number
/// of lines written.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn write_jsonl<C: ContactSource>(
    service: &DecisionService<C>,
    out: &mut dyn Write,
) -> io::Result<usize> {
    let stats = service.stats();
    let mut lines = 0usize;
    writeln!(
        out,
        "{{\"schema\":\"dtn-serve/1\",\"type\":\"header\",\"nodes\":{},\"budget_ns\":{}}}",
        service.nodes.len(),
        service.cfg.latency_budget_ns,
    )?;
    lines += 1;
    for d in service.decisions() {
        let (kind, a, b) = match d.request {
            Request::Place { data, source } => ("place", data.0, source.0 as u64),
            Request::Route { requester, data } => ("route", requester.0 as u64, data.0),
        };
        let target = match &d.answer {
            Answer::Place(p) => p
                .plan
                .first()
                .and_then(|plan| plan.next_hop)
                .map_or(-1, |n| n.0 as i64),
            Answer::Route(r) => r.as_ref().map_or(-1, |r| r.central.0 as i64),
        };
        writeln!(
            out,
            "{{\"type\":\"decision\",\"seq\":{},\"at\":{},\"kind\":\"{kind}\",\"a\":{a},\"b\":{b},\
             \"target\":{target},\"epoch\":{},\"service_ns\":{}}}",
            d.seq, d.at.0, d.oracle_epoch, d.service_ns,
        )?;
        lines += 1;
    }
    let hist = service.latency_hist();
    let q = |p: f64| hist.quantile_bucket(p).unwrap_or(0);
    writeln!(
        out,
        "{{\"type\":\"footer\",\"decisions\":{},\"budget_violations\":{},\
         \"p50_service_ns\":{},\"p99_service_ns\":{},\"max_service_ns\":{},\
         \"decision_checksum\":{}}}",
        stats.decisions,
        stats.budget_violations,
        q(0.5),
        q(0.99),
        stats.max_service_ns,
        stats.checksum,
    )?;
    lines += 1;
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_cache::intentional::IntentionalConfig;
    use dtn_cache::CachingScheme;
    use dtn_core::time::Duration;
    use dtn_sim::engine::SimConfig;
    use dtn_trace::SyntheticTraceBuilder;

    fn trace() -> dtn_trace::ContactTrace {
        SyntheticTraceBuilder::new(20)
            .duration(Duration::days(1))
            .target_contacts(4_000)
            .edge_density(0.4)
            .seed(7)
            .build()
    }

    fn service(
        trace: &dtn_trace::ContactTrace,
    ) -> DecisionService<dtn_sim::engine::TraceSource<'_>> {
        let scheme = IntentionalScheme::new(IntentionalConfig {
            ncl_count: 3,
            ..IntentionalConfig::default()
        });
        let sim = Simulator::new(trace, scheme, SimConfig::default());
        let mut svc = DecisionService::new(sim, ServeConfig::default()).with_decision_log();
        svc.configure_at(trace.midpoint(), 3600.0 * 6.0, None);
        svc
    }

    #[test]
    fn unconfigured_service_refuses_decisions() {
        let t = trace();
        let scheme = IntentionalScheme::new(IntentionalConfig::default());
        let sim = Simulator::new(&t, scheme, SimConfig::default());
        let mut svc = DecisionService::new(sim, ServeConfig::default());
        let err = svc
            .decide(
                Time(10),
                Request::Place {
                    data: DataId(1),
                    source: NodeId(0),
                },
            )
            .unwrap_err();
        assert_eq!(err, ServeError::NotConfigured);
        assert!(err.to_string().contains("not configured"));
    }

    #[test]
    fn serves_place_and_route_with_latency_accounting() {
        let t = trace();
        let mut svc = service(&t);
        let mid = t.midpoint();
        for i in 0..40u64 {
            let at = Time(mid.0 + i * 60);
            let req = if i % 2 == 0 {
                Request::Place {
                    data: DataId(i),
                    source: NodeId((i % 20) as u32),
                }
            } else {
                Request::Route {
                    requester: NodeId((i % 20) as u32),
                    data: DataId(i / 2),
                }
            };
            let d = svc.decide(at, req).expect("configured");
            assert_eq!(d.at, at);
            match (&req, &d.answer) {
                (Request::Place { .. }, Answer::Place(p)) => {
                    assert_eq!(p.ncls.len(), 3);
                    assert_eq!(p.plan.len(), 3);
                }
                (Request::Route { .. }, Answer::Route(r)) => {
                    assert!(r.is_some());
                }
                _ => panic!("answer kind mismatch"),
            }
        }
        let stats = svc.stats();
        assert_eq!(stats.decisions, 40);
        assert_eq!(svc.latency_hist().count(), 40);
        assert_eq!(svc.decisions().len(), 40);
        assert!(stats.max_service_ns > 0);
    }

    #[test]
    fn identical_streams_produce_identical_checksums() {
        let t = trace();
        let run = |refresh: bool| {
            let mut svc = service(&t);
            let mid = t.midpoint();
            for i in 0..30u64 {
                if refresh && i % 10 == 0 {
                    svc.refresh(&[], 2);
                }
                let at = Time(mid.0 + i * 120);
                svc.decide(
                    at,
                    Request::Route {
                        requester: NodeId((i % 20) as u32),
                        data: DataId(i),
                    },
                )
                .unwrap();
            }
            (svc.stats().checksum, svc.decisions().to_vec())
        };
        let (c1, d1) = run(false);
        let (c2, d2) = run(false);
        assert_eq!(c1, c2);
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(a.answer, b.answer);
        }
        // Background priming never changes answers, only speed.
        let (c3, _) = run(true);
        assert_eq!(c1, c3, "refresh must not change any decision");
    }

    #[test]
    fn jsonl_export_has_header_decisions_and_footer() {
        let t = trace();
        let mut svc = service(&t);
        svc.decide(
            Time(t.midpoint().0 + 60),
            Request::Place {
                data: DataId(9),
                source: NodeId(4),
            },
        )
        .unwrap();
        let mut buf = Vec::new();
        let lines = write_jsonl(&svc, &mut buf).unwrap();
        assert_eq!(lines, 3);
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"schema\":\"dtn-serve/1\""));
        assert!(s.contains("\"kind\":\"place\""));
        assert!(s.contains("\"decision_checksum\":"));
    }

    #[test]
    fn out_of_order_request_is_clamped_to_the_stream_position() {
        let t = trace();
        let mut svc = service(&t);
        let mid = t.midpoint();
        svc.decide(
            Time(mid.0 + 600),
            Request::Route {
                requester: NodeId(1),
                data: DataId(1),
            },
        )
        .unwrap();
        let d = svc
            .decide(
                Time(mid.0 + 60),
                Request::Route {
                    requester: NodeId(2),
                    data: DataId(2),
                },
            )
            .unwrap();
        assert_eq!(d.at, Time(mid.0 + 600), "stream never rewinds");
    }

    #[test]
    fn decisions_match_a_fresh_oracle_recomputation() {
        // Differential: the service's next-hop choice equals an
        // independent recomputation through the public better_relay
        // kernel on a fresh oracle over the same rates/time.
        let t = trace();
        let mut svc = service(&t);
        let mid = t.midpoint();
        let centrals = svc.sim().scheme().central_nodes().to_vec();
        let d = svc
            .decide(
                Time(mid.0 + 300),
                Request::Place {
                    data: DataId(3),
                    source: NodeId(5),
                },
            )
            .unwrap();
        let Answer::Place(p) = &d.answer else {
            panic!("place answer expected")
        };
        assert_eq!(p.ncls, centrals);
        let rates = svc.sim().rate_table().clone();
        let horizon = 3600.0 * 6.0;
        for plan in &p.plan {
            let mut fresh = dtn_sim::oracle::PathOracle::new(20, horizon, Duration::hours(1));
            let mut best: Option<(NodeId, f64)> = None;
            for n in (0..20u32).map(NodeId) {
                if n == NodeId(5)
                    || !dtn_cache::common::better_relay(
                        &mut fresh,
                        &rates,
                        d.at,
                        NodeId(5),
                        n,
                        plan.central,
                    )
                {
                    continue;
                }
                let w = if n == plan.central {
                    f64::INFINITY
                } else {
                    fresh.weight(&rates, d.at, n, plan.central)
                };
                if best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((n, w));
                }
            }
            assert_eq!(plan.next_hop, best.map(|(n, _)| n));
        }
    }
}
