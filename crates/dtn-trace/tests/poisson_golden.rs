//! Frozen-output regression for the Poisson reference process.
//!
//! The per-pair contact generator was refactored around the
//! `ContactProcess` trait; the Poisson implementation must reproduce the
//! pre-refactor generator bit for bit at equal seed, or every committed
//! BENCH baseline and equivalence suite silently drifts. These golden
//! values were captured from the generator *before* the refactor and
//! must never change.

use dtn_core::time::Duration;
use dtn_trace::synthetic::SyntheticTraceBuilder;

fn checksum(trace: &dtn_trace::trace::ContactTrace) -> u64 {
    // FNV-1a over every contact field, order-sensitive.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for c in trace.contacts() {
        mix(u64::from(c.a.0));
        mix(u64::from(c.b.0));
        mix(c.start.as_secs());
        mix(c.end.as_secs());
    }
    h
}

#[test]
fn poisson_build_output_is_frozen() {
    let cases = [
        (
            SyntheticTraceBuilder::new(12).seed(7),
            "plain",
            625,
            0x73d2_4159_d349_e34a_u64,
        ),
        (
            SyntheticTraceBuilder::new(30)
                .seed(17)
                .duration(Duration::days(2))
                .communities(3)
                .community_boost(6.0),
            "communities",
            1445,
            0xac6c_d823_27f8_6cb1,
        ),
        (
            SyntheticTraceBuilder::new(25).seed(23).burstiness(4.0),
            "bursty",
            1242,
            0x18c4_ccdf_606a_c46a,
        ),
    ];
    for (builder, label, count, sum) in cases {
        let trace = builder.build();
        assert_eq!(
            trace.contact_count(),
            count,
            "{label}: contact count drifted"
        );
        assert_eq!(
            checksum(&trace),
            sum,
            "{label}: contact sequence drifted from the pre-refactor generator"
        );
        // The streaming path shares the plan, so it is frozen too.
        let streamed: Vec<_> = builder.stream().collect();
        assert_eq!(streamed, trace.contacts(), "{label}: stream != build");
    }
}
