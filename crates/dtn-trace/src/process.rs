//! Pluggable per-pair inter-contact processes.
//!
//! The paper's network model (§III-B) assumes every node pair meets
//! according to a Poisson process, and the whole stack downstream — the
//! `RateEstimator`, the hypoexp path weights, the NCL metric — inherits
//! that assumption. Real traces do not cooperate: Conan et al. show
//! heavy-tailed, per-pair-heterogeneous inter-contact times. This module
//! makes the generator's per-pair law pluggable so experiments can
//! measure how far the Poisson-assuming machinery degrades under model
//! mismatch.
//!
//! A [`ContactProcess`] is a resumable per-pair sampler: given the
//! current session clock it returns the start of the next co-location
//! session, drawing only from the pair's private RNG. Every process is
//! **calibrated to the same mean session rate** — the expected number of
//! sessions over the observation stays equal to the Poisson reference —
//! so traces generated under different processes remain comparable in
//! the figures; only the *shape* of the inter-contact law changes.
//!
//! [`ContactProcessKind::Poisson`] is the reference implementation and
//! reproduces the pre-trait generator bit for bit at equal seed (see
//! `tests/poisson_golden.rs`).

use rand::rngs::StdRng;
use rand::Rng;

/// Domain-separation salt for the duty-cycle phase derived from a pair's
/// process seed (no RNG draw — Poisson draw order stays untouched).
const DUTY_PHASE_SALT: u64 = 0x7F4A_7C15_9E37_79B9;

/// Configuration of the per-pair inter-contact law, selected on
/// [`SyntheticTraceBuilder::contact_process`].
///
/// Every variant is calibrated so the mean inter-session gap equals the
/// pair's calibrated `1/rate` — the expected contact count of a trace is
/// invariant under the process choice; only the gap distribution's shape
/// (tail weight, periodicity) changes.
///
/// [`SyntheticTraceBuilder::contact_process`]:
/// crate::synthetic::SyntheticTraceBuilder::contact_process
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ContactProcessKind {
    /// Exponential gaps — the paper's §III-B reference model.
    #[default]
    Poisson,
    /// Pareto gaps with tail exponent `shape` (> 1 so the mean exists).
    /// Smaller shapes mean heavier tails: a few enormous silences
    /// carrying most of the mass.
    Pareto {
        /// Tail exponent α; the CCDF decays as `x^-α`.
        shape: f64,
    },
    /// Lognormal gaps with log-domain standard deviation `sigma`:
    /// subexponential but all moments finite.
    Lognormal {
        /// σ of `ln(gap)`.
        sigma: f64,
    },
    /// Power-law gaps with exponent `shape` truncated at `cap` times the
    /// minimum gap. Unlike [`ContactProcessKind::Pareto`] the exponent
    /// may be ≤ 1 (the truncation keeps the mean finite) — the regime
    /// real inter-contact measurements report.
    BoundedPowerLaw {
        /// Tail exponent α within the bounded region (> 0, ≠ 1).
        shape: f64,
        /// Upper truncation as a multiple of the minimum gap (> 1).
        cap: f64,
    },
    /// Periodic on/off availability: within "on" windows of
    /// `duty × period` seconds the pair meets as a Poisson process at
    /// `rate / duty`; in the "off" remainder it never meets. Each pair
    /// gets a deterministic phase derived from its process seed.
    DutyCycled {
        /// Full on+off cycle length in seconds.
        period_secs: f64,
        /// Fraction of the period the pair is available, in `(0, 1]`.
        duty: f64,
    },
}

impl ContactProcessKind {
    /// Every process with its default parameters, Poisson first.
    pub const ALL: [ContactProcessKind; 5] = [
        ContactProcessKind::Poisson,
        ContactProcessKind::PARETO,
        ContactProcessKind::LOGNORMAL,
        ContactProcessKind::BOUNDED_POWER_LAW,
        ContactProcessKind::DUTY_CYCLED,
    ];

    /// Default heavy-tail Pareto: α = 1.5 (finite mean, infinite
    /// variance — the classic DTN inter-contact regime).
    pub const PARETO: ContactProcessKind = ContactProcessKind::Pareto { shape: 1.5 };

    /// Default lognormal: σ = 1.6 (gaps span ~3 orders of magnitude).
    pub const LOGNORMAL: ContactProcessKind = ContactProcessKind::Lognormal { sigma: 1.6 };

    /// Default bounded power law: α = 0.8 truncated at 1000× the
    /// minimum gap.
    pub const BOUNDED_POWER_LAW: ContactProcessKind = ContactProcessKind::BoundedPowerLaw {
        shape: 0.8,
        cap: 1000.0,
    };

    /// Default duty cycle: 6 h period, available 30% of it.
    pub const DUTY_CYCLED: ContactProcessKind = ContactProcessKind::DutyCycled {
        period_secs: 21_600.0,
        duty: 0.3,
    };

    /// Stable kebab-case name, used by `simcheck --process` and the
    /// regimes experiment.
    pub fn name(self) -> &'static str {
        match self {
            ContactProcessKind::Poisson => "poisson",
            ContactProcessKind::Pareto { .. } => "pareto",
            ContactProcessKind::Lognormal { .. } => "lognormal",
            ContactProcessKind::BoundedPowerLaw { .. } => "bounded-power-law",
            ContactProcessKind::DutyCycled { .. } => "duty-cycled",
        }
    }

    /// Parses a kebab-case name to the default-parameter variant.
    pub fn parse(name: &str) -> Option<ContactProcessKind> {
        ContactProcessKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
    }

    /// The configured power-law tail exponent, for processes that have
    /// one — what the Hill estimator should recover from a generated
    /// trace.
    pub fn tail_exponent(self) -> Option<f64> {
        match self {
            ContactProcessKind::Pareto { shape }
            | ContactProcessKind::BoundedPowerLaw { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// Validates the parameters, panicking with a named reason.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside its documented domain.
    pub fn validate(self) {
        match self {
            ContactProcessKind::Poisson => {}
            ContactProcessKind::Pareto { shape } => {
                assert!(
                    shape.is_finite() && shape > 1.0,
                    "Pareto shape must exceed 1 so the mean gap exists, got {shape}"
                );
            }
            ContactProcessKind::Lognormal { sigma } => {
                assert!(
                    sigma.is_finite() && sigma > 0.0,
                    "lognormal sigma must be positive, got {sigma}"
                );
            }
            ContactProcessKind::BoundedPowerLaw { shape, cap } => {
                assert!(
                    shape.is_finite() && shape > 0.0 && shape != 1.0,
                    "bounded power-law shape must be positive and != 1, got {shape}"
                );
                assert!(
                    cap.is_finite() && cap > 1.0,
                    "bounded power-law cap must exceed 1, got {cap}"
                );
            }
            ContactProcessKind::DutyCycled { period_secs, duty } => {
                assert!(
                    period_secs.is_finite() && period_secs > 0.0,
                    "duty-cycle period must be positive, got {period_secs}"
                );
                assert!(
                    duty.is_finite() && duty > 0.0 && duty <= 1.0,
                    "duty fraction must be in (0, 1], got {duty}"
                );
            }
        }
    }

    /// Instantiates the per-pair sampler, calibrated so the mean
    /// inter-session gap is `1 / rate`. `pair_seed` derives per-pair
    /// constants (the duty-cycle phase) without consuming the pair's
    /// contact RNG.
    pub fn sampler(self, rate: f64, pair_seed: u64) -> PairSampler {
        match self {
            ContactProcessKind::Poisson => PairSampler::Poisson(Poisson { rate }),
            ContactProcessKind::Pareto { shape } => {
                // E[x_m · U^(-1/α)] = x_m · α/(α−1).
                let scale = (shape - 1.0) / (shape * rate);
                PairSampler::Pareto(Pareto {
                    scale,
                    inv_shape: 1.0 / shape,
                })
            }
            ContactProcessKind::Lognormal { sigma } => {
                // E[exp(μ + σZ)] = exp(μ + σ²/2) = 1/rate.
                let mu = -rate.ln() - 0.5 * sigma * sigma;
                PairSampler::Lognormal(Lognormal { mu, sigma })
            }
            ContactProcessKind::BoundedPowerLaw { shape, cap } => {
                // Truncated Pareto on [x_m, cap·x_m]:
                // E = x_m · α/(α−1) · (1 − cap^(1−α)) / (1 − cap^(−α)).
                let tail_mass = 1.0 - cap.powf(-shape);
                let mean_factor = shape / (shape - 1.0) * (1.0 - cap.powf(1.0 - shape)) / tail_mass;
                let scale = 1.0 / (rate * mean_factor);
                PairSampler::BoundedPowerLaw(BoundedPowerLaw {
                    scale,
                    inv_shape: 1.0 / shape,
                    tail_mass,
                })
            }
            ContactProcessKind::DutyCycled { period_secs, duty } => {
                let on_len = duty * period_secs;
                // Deterministic per-pair phase from the seed hash: no RNG
                // draw, so the sampler's draw count matches Poisson's.
                let phase =
                    crate::synthetic::hash_uniform01(pair_seed ^ DUTY_PHASE_SALT) * period_secs;
                PairSampler::DutyCycled(DutyCycled {
                    inv_active_rate: duty / rate,
                    period: period_secs,
                    on_len,
                    phase,
                })
            }
        }
    }
}

/// A resumable per-pair inter-contact sampler: advances the pair's
/// session clock to the next co-location session, drawing only from the
/// pair's private RNG.
pub trait ContactProcess {
    /// Given the current session clock `t` (seconds since trace start),
    /// returns the start of the next session. Must be strictly
    /// increasing in expectation and must never return less than `t`.
    fn next_session(&mut self, t: f64, rng: &mut StdRng) -> f64;
}

/// The Poisson reference process: exponential gaps at `rate`.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    rate: f64,
}

impl ContactProcess for Poisson {
    fn next_session(&mut self, t: f64, rng: &mut StdRng) -> f64 {
        // Draw order and arithmetic are frozen: this is the pre-trait
        // generator's exact expression (tests/poisson_golden.rs).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t + -u.ln() / self.rate
    }
}

/// Pareto gaps: `x_m · U^(-1/α)`.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    scale: f64,
    inv_shape: f64,
}

impl ContactProcess for Pareto {
    fn next_session(&mut self, t: f64, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t + self.scale * u.powf(-self.inv_shape)
    }
}

/// Lognormal gaps: `exp(μ + σZ)` with Z a Box–Muller standard normal.
#[derive(Debug, Clone, Copy)]
pub struct Lognormal {
    mu: f64,
    sigma: f64,
}

impl ContactProcess for Lognormal {
    fn next_session(&mut self, t: f64, rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
        t + (self.mu + self.sigma * z).exp()
    }
}

/// Truncated power-law gaps via inverse-CDF sampling on
/// `[x_m, cap·x_m]`.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPowerLaw {
    scale: f64,
    inv_shape: f64,
    /// `1 − cap^(−α)`: the CDF mass between the truncation bounds.
    tail_mass: f64,
}

impl ContactProcess for BoundedPowerLaw {
    fn next_session(&mut self, t: f64, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        t + self.scale * (1.0 - u * self.tail_mass).powf(-self.inv_shape)
    }
}

/// Periodic on/off availability: Poisson at `rate/duty` inside the "on"
/// window of each cycle, silent outside it. The exponential wait is
/// drawn in *active time* and mapped to wall-clock time by skipping the
/// off windows, so the process resumes exactly where it stopped.
#[derive(Debug, Clone, Copy)]
pub struct DutyCycled {
    inv_active_rate: f64,
    period: f64,
    on_len: f64,
    phase: f64,
}

impl ContactProcess for DutyCycled {
    fn next_session(&mut self, t: f64, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let mut wait = -u.ln() * self.inv_active_rate; // active seconds
        let mut t = t;
        // Align to the containing or next on-window.
        let x = (t - self.phase).rem_euclid(self.period);
        if x >= self.on_len {
            t += self.period - x;
        } else {
            let available = self.on_len - x;
            if wait < available {
                return t + wait;
            }
            wait -= available;
            t += available + (self.period - self.on_len);
        }
        // `t` is now at an on-window start; consume whole windows.
        let windows = (wait / self.on_len).floor();
        t += windows * self.period;
        wait -= windows * self.on_len;
        t + wait
    }
}

/// Enum dispatch over the five processes: one concrete, `Copy`-able
/// sampler per planned pair, no boxing in the per-pair hot loop.
#[derive(Debug, Clone, Copy)]
pub enum PairSampler {
    /// See [`Poisson`].
    Poisson(Poisson),
    /// See [`Pareto`].
    Pareto(Pareto),
    /// See [`Lognormal`].
    Lognormal(Lognormal),
    /// See [`BoundedPowerLaw`].
    BoundedPowerLaw(BoundedPowerLaw),
    /// See [`DutyCycled`].
    DutyCycled(DutyCycled),
}

impl ContactProcess for PairSampler {
    fn next_session(&mut self, t: f64, rng: &mut StdRng) -> f64 {
        match self {
            PairSampler::Poisson(p) => p.next_session(t, rng),
            PairSampler::Pareto(p) => p.next_session(t, rng),
            PairSampler::Lognormal(p) => p.next_session(t, rng),
            PairSampler::BoundedPowerLaw(p) => p.next_session(t, rng),
            PairSampler::DutyCycled(p) => p.next_session(t, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Mean gap over `n` draws from a fresh sampler.
    fn mean_gap(kind: ContactProcessKind, rate: f64, n: usize) -> f64 {
        let mut sampler = kind.sampler(rate, 0xABCD);
        let mut rng = StdRng::seed_from_u64(42);
        let mut t = 0.0;
        let mut prev = 0.0;
        let mut sum = 0.0;
        for _ in 0..n {
            t = sampler.next_session(t, &mut rng);
            sum += t - prev;
            prev = t;
        }
        sum / n as f64
    }

    #[test]
    fn every_process_calibrates_to_the_target_rate() {
        let rate = 1.0 / 3600.0; // one session per hour
        for kind in ContactProcessKind::ALL {
            kind.validate();
            let mean = mean_gap(kind, rate, 200_000);
            let err = (mean - 3600.0).abs() / 3600.0;
            // Pareto α=1.5 has infinite variance: the sample mean
            // converges slowly, hence the loose band.
            let tol = if kind == ContactProcessKind::PARETO {
                0.25
            } else {
                0.05
            };
            assert!(
                err < tol,
                "{}: mean gap {mean:.1}s vs calibrated 3600s (err {err:.3})",
                kind.name()
            );
        }
    }

    #[test]
    fn duty_cycle_sessions_only_land_in_on_windows() {
        let kind = ContactProcessKind::DutyCycled {
            period_secs: 1000.0,
            duty: 0.25,
        };
        let mut sampler = kind.sampler(1.0 / 500.0, 0x1234);
        // Recover the phase the sampler derived for this pair seed.
        let phase = crate::synthetic::hash_uniform01(0x1234 ^ DUTY_PHASE_SALT) * 1000.0;
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = 0.0;
        for _ in 0..5_000 {
            let next = sampler.next_session(t, &mut rng);
            assert!(next >= t, "clock went backwards: {next} < {t}");
            t = next;
            let x = (t - phase).rem_euclid(1000.0);
            assert!(
                x < 250.0 + 1e-6,
                "session at {t} lands {x:.3}s into the cycle (on-window is 250s)"
            );
        }
    }

    #[test]
    fn bounded_power_law_respects_the_cap() {
        let kind = ContactProcessKind::BoundedPowerLaw {
            shape: 0.8,
            cap: 100.0,
        };
        let mut sampler = kind.sampler(1.0 / 3600.0, 9);
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = 0.0;
        let mut min_gap = f64::INFINITY;
        let mut max_gap: f64 = 0.0;
        for _ in 0..50_000 {
            let next = sampler.next_session(t, &mut rng);
            let gap = next - t;
            min_gap = min_gap.min(gap);
            max_gap = max_gap.max(gap);
            t = next;
        }
        assert!(
            max_gap / min_gap <= 105.0,
            "observed gap ratio {:.1} exceeds the 100x cap",
            max_gap / min_gap
        );
    }

    #[test]
    fn names_round_trip() {
        for kind in ContactProcessKind::ALL {
            let parsed = ContactProcessKind::parse(kind.name()).expect("parses");
            assert_eq!(parsed.name(), kind.name());
        }
        assert_eq!(ContactProcessKind::parse("nonsense"), None);
    }

    #[test]
    fn configured_tails_are_exposed() {
        assert_eq!(ContactProcessKind::PARETO.tail_exponent(), Some(1.5));
        assert_eq!(
            ContactProcessKind::BOUNDED_POWER_LAW.tail_exponent(),
            Some(0.8)
        );
        assert_eq!(ContactProcessKind::Poisson.tail_exponent(), None);
        assert_eq!(ContactProcessKind::LOGNORMAL.tail_exponent(), None);
    }

    #[test]
    #[should_panic(expected = "Pareto shape")]
    fn sub_unit_pareto_shape_panics() {
        ContactProcessKind::Pareto { shape: 0.9 }.validate();
    }

    #[test]
    #[should_panic(expected = "duty fraction")]
    fn bad_duty_fraction_panics() {
        ContactProcessKind::DutyCycled {
            period_secs: 100.0,
            duty: 1.5,
        }
        .validate();
    }
}
