//! Importers for common public contact-trace formats.
//!
//! The paper's traces are distributed through CRAWDAD and the ONE
//! simulator community in two dominant shapes; both import into a
//! [`ContactTrace`] here:
//!
//! - **interval rows** ([`read_intervals`]): whitespace- or
//!   comma-separated `node_a node_b start end` lines (the shape of the
//!   published Haggle/Reality contact dumps). Node ids may be sparse
//!   and 1-based; they are renumbered densely.
//! - **ONE connectivity events** ([`read_one_events`]): the ONE
//!   simulator's `<time> CONN <a> <b> up|down` report. `up`/`down`
//!   pairs become contacts; dangling `up`s close at the trace end.

use std::collections::HashMap;
use std::io::BufRead;

use dtn_core::ids::NodeId;
use dtn_core::time::{Duration, Time};

use crate::io::TraceReadError;
use crate::trace::{Contact, ContactTrace};

/// Densely renumbers arbitrary external node ids.
#[derive(Debug, Default)]
struct NodeInterner {
    map: HashMap<u64, NodeId>,
}

impl NodeInterner {
    fn intern(&mut self, external: u64) -> NodeId {
        let next = NodeId(self.map.len() as u32);
        *self.map.entry(external).or_insert(next)
    }
    fn len(&self) -> usize {
        self.map.len()
    }
}

fn parse_err(line: usize, reason: impl Into<String>) -> TraceReadError {
    TraceReadError::Parse {
        line,
        reason: reason.into(),
    }
}

/// Reads `a b start end` interval rows (whitespace or comma separated;
/// `#`-comments and blank lines skipped). Times are in seconds;
/// fractional timestamps are truncated. External node ids are
/// renumbered densely in order of first appearance.
///
/// Zero-length and inverted intervals are **skipped** rather than
/// rejected — public dumps contain both.
///
/// # Errors
///
/// Returns [`TraceReadError`] on I/O failure, non-numeric fields, or an
/// empty input.
///
/// # Example
///
/// ```
/// use dtn_trace::import::read_intervals;
///
/// let raw = "# CRAWDAD-style dump\n17 23 100 160\n23 99 200.5 260\n";
/// let trace = read_intervals(raw.as_bytes())?;
/// assert_eq!(trace.node_count(), 3); // 17, 23, 99 renumbered
/// assert_eq!(trace.contact_count(), 2);
/// # Ok::<(), dtn_trace::io::TraceReadError>(())
/// ```
pub fn read_intervals<R: BufRead>(reader: R) -> Result<ContactTrace, TraceReadError> {
    let mut interner = NodeInterner::default();
    let mut contacts = Vec::new();
    let mut max_end = 0u64;
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|f| !f.is_empty())
            .collect();
        if fields.len() < 4 {
            return Err(parse_err(line_no, format!("expected 4 fields, got {t:?}")));
        }
        let num = |idx: usize, name: &str| -> Result<f64, TraceReadError> {
            fields[idx]
                .parse::<f64>()
                .map_err(|_| parse_err(line_no, format!("non-numeric {name} in {t:?}")))
        };
        let a = num(0, "node a")? as u64;
        let b = num(1, "node b")? as u64;
        let start = num(2, "start")? as u64;
        let end = num(3, "end")? as u64;
        if a == b || end <= start {
            continue; // tolerated noise in public dumps
        }
        let a = interner.intern(a);
        let b = interner.intern(b);
        max_end = max_end.max(end);
        contacts.push(Contact::new(a, b, Time(start), Time(end)));
    }
    if interner.len() < 2 {
        return Err(parse_err(0, "no usable contacts in input"));
    }
    Ok(ContactTrace::new(
        interner.len(),
        contacts,
        Duration(max_end),
    ))
}

/// Reads the ONE simulator's connectivity report:
/// `<time> CONN <a> <b> up|down` lines. Each `up` opens a contact that
/// the matching `down` closes; contacts still open at the end of input
/// close at the last event time.
///
/// # Errors
///
/// Returns [`TraceReadError`] on I/O failure, malformed lines, or an
/// empty input.
///
/// # Example
///
/// ```
/// use dtn_trace::import::read_one_events;
///
/// let raw = "10 CONN 1 2 up\n50 CONN 1 2 down\n60 CONN 2 3 up\n";
/// let trace = read_one_events(raw.as_bytes())?;
/// assert_eq!(trace.contact_count(), 2);
/// // the dangling contact closes at the last timestamp (60 → 60+)
/// # Ok::<(), dtn_trace::io::TraceReadError>(())
/// ```
pub fn read_one_events<R: BufRead>(reader: R) -> Result<ContactTrace, TraceReadError> {
    let mut interner = NodeInterner::default();
    let mut open: HashMap<(NodeId, NodeId), Time> = HashMap::new();
    let mut contacts = Vec::new();
    let mut last_time = 0u64;
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        if fields.len() < 5 || !fields[1].eq_ignore_ascii_case("CONN") {
            return Err(parse_err(
                line_no,
                format!("expected `<time> CONN <a> <b> up|down`, got {t:?}"),
            ));
        }
        let time = fields[0]
            .parse::<f64>()
            .map_err(|_| parse_err(line_no, format!("non-numeric time in {t:?}")))?
            as u64;
        let a_ext = fields[2]
            .parse::<u64>()
            .map_err(|_| parse_err(line_no, format!("non-numeric node in {t:?}")))?;
        let b_ext = fields[3]
            .parse::<u64>()
            .map_err(|_| parse_err(line_no, format!("non-numeric node in {t:?}")))?;
        if a_ext == b_ext {
            continue;
        }
        last_time = last_time.max(time);
        let a = interner.intern(a_ext);
        let b = interner.intern(b_ext);
        let key = if a < b { (a, b) } else { (b, a) };
        match fields[4].to_ascii_lowercase().as_str() {
            "up" => {
                open.entry(key).or_insert(Time(time));
            }
            "down" => {
                if let Some(start) = open.remove(&key) {
                    if time > start.as_secs() {
                        contacts.push(Contact::new(key.0, key.1, start, Time(time)));
                    }
                }
            }
            other => {
                return Err(parse_err(line_no, format!("unknown event {other:?}")));
            }
        }
    }
    // Close dangling connections at the end of the report.
    let close_at = Time(last_time + 1);
    for ((a, b), start) in open {
        if close_at > start {
            contacts.push(Contact::new(a, b, start, close_at));
        }
    }
    if interner.len() < 2 {
        return Err(parse_err(0, "no usable contacts in input"));
    }
    Ok(ContactTrace::new(
        interner.len(),
        contacts,
        Duration(close_at.as_secs()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_renumber_sparse_ids() {
        let raw = "100 200 0 50\n200 999 60 90\n100 999 95 120\n";
        let t = read_intervals(raw.as_bytes()).expect("valid");
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.contact_count(), 3);
        assert_eq!(t.duration(), Duration(120));
    }

    #[test]
    fn intervals_accept_commas_and_fractions() {
        let raw = "1,2,10.7,20.9\n";
        let t = read_intervals(raw.as_bytes()).expect("valid");
        assert_eq!(t.contacts()[0].start, Time(10));
        assert_eq!(t.contacts()[0].end, Time(20));
    }

    #[test]
    fn intervals_skip_noise_rows() {
        let raw = "1 2 10 20\n3 3 30 40\n1 2 50 50\n# comment\n\n2 1 60 70\n";
        let t = read_intervals(raw.as_bytes()).expect("valid");
        assert_eq!(t.contact_count(), 2);
    }

    #[test]
    fn intervals_reject_non_numeric() {
        let err = read_intervals(&b"1 2 ten 20\n"[..]).unwrap_err();
        assert!(err.to_string().contains("non-numeric"));
    }

    #[test]
    fn intervals_reject_empty() {
        assert!(read_intervals(&b"# nothing\n"[..]).is_err());
    }

    #[test]
    fn one_events_pair_up_down() {
        let raw = "0 CONN 5 7 up\n30 CONN 5 7 down\n40 CONN 7 9 up\n90 CONN 9 7 down\n";
        let t = read_one_events(raw.as_bytes()).expect("valid");
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.contact_count(), 2);
        assert_eq!(t.contacts()[0].duration(), Duration(30));
        // the down used swapped endpoints — must still match the up
        assert_eq!(t.contacts()[1].duration(), Duration(50));
    }

    #[test]
    fn one_events_close_dangling_at_end() {
        let raw = "10 CONN 1 2 up\n500 CONN 3 4 up\n";
        let t = read_one_events(raw.as_bytes()).expect("valid");
        assert_eq!(t.contact_count(), 2);
        let longest = t.contacts().iter().map(|c| c.end).max().unwrap();
        assert_eq!(longest, Time(501));
    }

    #[test]
    fn one_events_reject_garbage() {
        assert!(read_one_events(&b"10 LINK 1 2 up\n"[..]).is_err());
        assert!(read_one_events(&b"10 CONN 1 2 sideways\n"[..]).is_err());
        assert!(read_one_events(&b"x CONN 1 2 up\n"[..]).is_err());
    }

    #[test]
    fn imported_trace_flows_into_the_pipeline() {
        // Imported traces work with the rest of the toolkit.
        let raw = "1 2 0 100\n2 3 200 300\n1 3 400 500\n1 2 600 700\n";
        let t = read_intervals(raw.as_bytes()).expect("valid");
        let stats = crate::stats::TraceStats::compute(&t);
        assert_eq!(stats.nodes, 3);
        let table = t.rate_table(Time(700));
        assert_eq!(table.total_contacts(), 4);
    }
}
