//! Synthetic contact-trace generation.
//!
//! Substitutes the paper's proprietary traces (see DESIGN.md §2). The
//! model follows the paper's own assumptions:
//!
//! - each unordered node pair `(i, j)` meets according to a **Poisson
//!   process** with rate `λ_ij` (§III-B of the paper);
//! - rates are heterogeneous: each node has a *sociability* weight `w_i`
//!   drawn from a truncated Pareto distribution and
//!   `λ_ij ∝ w_i · w_j · m_ij`, where `m_ij` boosts pairs in the same
//!   community — this yields the highly skewed NCL-metric distribution
//!   of Fig. 4;
//! - the proportionality constant is calibrated so the **expected total
//!   number of contacts** matches the preset's Table I figure;
//! - each contact lasts uniformly `[0.5g, 1.5g]` around the preset
//!   granularity `g`, mirroring how the real traces' detection intervals
//!   bound observable contact durations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dtn_core::ids::NodeId;
use dtn_core::time::{Duration, Time};

use crate::trace::{Contact, ContactTrace};
use crate::TracePreset;

/// Builder for synthetic contact traces.
///
/// # Example
///
/// ```
/// use dtn_core::time::Duration;
/// use dtn_trace::synthetic::SyntheticTraceBuilder;
///
/// let trace = SyntheticTraceBuilder::new(30)
///     .duration(Duration::days(2))
///     .target_contacts(5_000)
///     .communities(3)
///     .seed(7)
///     .build();
/// assert_eq!(trace.node_count(), 30);
/// // Poisson counts concentrate near the calibration target.
/// assert!((trace.contact_count() as f64 - 5_000.0).abs() < 500.0);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTraceBuilder {
    nodes: usize,
    duration: Duration,
    granularity: Duration,
    target_contacts: u64,
    pareto_shape: f64,
    pareto_cap: f64,
    activity_sigma: f64,
    communities: usize,
    community_boost: f64,
    edge_density: f64,
    burstiness: f64,
    seed: u64,
    scale: f64,
}

impl SyntheticTraceBuilder {
    /// Starts a builder for a population of `nodes` nodes with neutral
    /// defaults: one day, 120 s granularity, 50 contacts per node,
    /// moderate heterogeneity, no community structure.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 2, "need at least two nodes to generate contacts");
        SyntheticTraceBuilder {
            nodes,
            duration: Duration::days(1),
            granularity: Duration::secs(120),
            target_contacts: 50 * nodes as u64,
            pareto_shape: 1.8,
            pareto_cap: 25.0,
            activity_sigma: 0.8,
            communities: 1,
            community_boost: 4.0,
            edge_density: 0.4,
            burstiness: 1.0,
            seed: 0,
            scale: 1.0,
        }
    }

    /// Starts a builder calibrated to one of the paper's Table I traces.
    pub fn from_preset(preset: TracePreset) -> Self {
        let mut b = SyntheticTraceBuilder::new(preset.node_count());
        b.duration = preset.duration();
        b.granularity = preset.granularity();
        b.target_contacts = preset.total_contacts();
        b.communities = match preset {
            // Conferences mix heavily; campus/city traces are clustered.
            TracePreset::Infocom05 | TracePreset::Infocom06 => 2,
            TracePreset::MitReality => 4,
            TracePreset::Ucsd => 8,
        };
        // Real contact graphs are sparse: conference attendees meet a
        // large share of their peers, campus populations only a few —
        // this sparsity is what makes the Fig. 4 metric distribution
        // skewed ("few nodes contact many others and act as the
        // communication hubs", §IV-B).
        b.edge_density = match preset {
            TracePreset::Infocom05 | TracePreset::Infocom06 => 0.5,
            TracePreset::MitReality => 0.12,
            TracePreset::Ucsd => 0.04,
        };
        b.pareto_shape = match preset {
            TracePreset::Infocom05 | TracePreset::Infocom06 => 1.8,
            TracePreset::MitReality | TracePreset::Ucsd => 1.4,
        };
        // Long traces accumulate strong participation heterogeneity
        // (devices switched off, dropouts); conferences less so.
        b.activity_sigma = match preset {
            TracePreset::Infocom05 => 2.2,
            TracePreset::Infocom06 => 2.6,
            TracePreset::MitReality => 3.0,
            TracePreset::Ucsd => 2.6,
        };
        b
    }

    /// Sets the lognormal σ of the per-node activity factor (default
    /// 0.8). Larger values produce more near-inactive nodes and a more
    /// skewed metric distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn activity_sigma(mut self, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "activity sigma must be finite and non-negative, got {sigma}"
        );
        self.activity_sigma = sigma;
        self
    }

    /// Sets the observation length.
    pub fn duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the mean contact duration (detection granularity).
    pub fn granularity(mut self, granularity: Duration) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the expected total number of contacts to calibrate to.
    pub fn target_contacts(mut self, contacts: u64) -> Self {
        self.target_contacts = contacts;
        self
    }

    /// Sets the Pareto shape of the sociability distribution; smaller
    /// values mean heavier tails (more heterogeneity). Typical: 1.5–3.
    ///
    /// # Panics
    ///
    /// Panics if `shape <= 1.0` (the mean would diverge).
    pub fn heterogeneity(mut self, shape: f64) -> Self {
        assert!(shape > 1.0, "Pareto shape must exceed 1, got {shape}");
        self.pareto_shape = shape;
        self
    }

    /// Sets the number of equal-sized communities nodes are assigned to
    /// round-robin. Pairs within a community contact `community_boost`
    /// times more often.
    ///
    /// # Panics
    ///
    /// Panics if `communities == 0`.
    pub fn communities(mut self, communities: usize) -> Self {
        assert!(communities > 0, "need at least one community");
        self.communities = communities;
        self
    }

    /// Sets the intra-community contact-rate boost factor (default 4).
    ///
    /// # Panics
    ///
    /// Panics if `boost < 1.0`.
    pub fn community_boost(mut self, boost: f64) -> Self {
        assert!(boost >= 1.0, "community boost must be at least 1");
        self.community_boost = boost;
        self
    }

    /// Sets the cap on sociability weights (default 25). Higher caps let
    /// hub nodes absorb a larger share of all contacts, increasing the
    /// skew of the metric distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `cap >= 1.0`.
    pub fn sociability_cap(mut self, cap: f64) -> Self {
        assert!(cap >= 1.0, "sociability cap must be at least 1, got {cap}");
        self.pareto_cap = cap;
        self
    }

    /// Sets the fraction of node pairs that ever meet (default 0.4).
    /// Pairs are kept with probability proportional to their affinity,
    /// so sociable nodes keep more edges — the source of the skewed
    /// metric distribution of Fig. 4.
    ///
    /// # Panics
    ///
    /// Panics unless `density` is in `(0, 1]`.
    pub fn edge_density(mut self, density: f64) -> Self {
        assert!(
            density > 0.0 && density <= 1.0,
            "edge density must be in (0, 1], got {density}"
        );
        self.edge_density = density;
        self
    }

    /// Sets the mean number of contacts per co-location *session*
    /// (default 1 = pure Poisson contacts, the paper's §III-B model).
    ///
    /// Real Bluetooth/WiFi traces are bursty: two co-located devices are
    /// re-detected every scan interval, so one physical meeting shows up
    /// as a run of consecutive contact records. With `burstiness > 1`,
    /// pair meetings arrive as Poisson *sessions* whose contact-count is
    /// geometric with this mean, spaced one granularity apart. Total
    /// expected contacts still match the calibration target, but the
    /// independent-meeting rate drops by the burstiness factor —
    /// mirroring how raw contact counts overestimate meeting
    /// opportunities in real traces.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_contacts_per_session >= 1.0`.
    pub fn burstiness(mut self, mean_contacts_per_session: f64) -> Self {
        assert!(
            mean_contacts_per_session >= 1.0 && mean_contacts_per_session.is_finite(),
            "burstiness must be a finite value ≥ 1, got {mean_contacts_per_session}"
        );
        self.burstiness = mean_contacts_per_session;
        self
    }

    /// Sets the RNG seed; the same builder with the same seed produces an
    /// identical trace.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales duration *and* contact target by `factor`, preserving the
    /// contact density. Use small factors for fast tests and benches.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scale(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale must be finite and positive, got {factor}"
        );
        self.scale = factor;
        self
    }

    /// Generates the trace.
    pub fn build(&self) -> ContactTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let duration = self.duration.mul_f64(self.scale);
        let target = (self.target_contacts as f64 * self.scale).round().max(1.0);
        let span = duration.as_secs_f64().max(1.0);

        // Per-node sociability: a truncated Pareto(shape, x_m = 1) upper
        // tail (hubs) multiplied by a lognormal activity factor that
        // also produces a heavy *lower* tail — real traces contain many
        // near-inactive devices, and that inactivity is what keeps the
        // median NCL metric far below the hubs' (Fig. 4).
        let weights: Vec<f64> = (0..self.nodes)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let pareto = u.powf(-1.0 / self.pareto_shape).min(self.pareto_cap);
                // Box-Muller standard normal for the activity factor.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
                pareto * (self.activity_sigma * z).exp()
            })
            .collect();

        // Select which pairs ever meet: keep probability proportional to
        // affinity (capped at 1), scaled so the expected kept fraction is
        // `edge_density`. Sociable nodes keep more edges, producing the
        // skewed, sparse contact graphs of real traces (Fig. 4).
        let mut affinities = Vec::with_capacity(self.nodes * (self.nodes - 1) / 2);
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                affinities.push((i, j, weights[i] * weights[j] * self.pair_boost(i, j)));
            }
        }
        let pair_count = affinities.len() as f64;
        let target_edges = self.edge_density * pair_count;
        // Binary search the affinity multiplier k with Σ min(1, k·a) =
        // target_edges (monotone in k).
        let kept_expectation =
            |k: f64| -> f64 { affinities.iter().map(|&(_, _, a)| (k * a).min(1.0)).sum() };
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while kept_expectation(hi) < target_edges && hi < 1e12 {
            hi *= 2.0;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if kept_expectation(mid) < target_edges {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let k = hi;
        let kept: Vec<(usize, usize, f64)> = affinities
            .into_iter()
            .filter(|&(_, _, a)| rng.gen_bool((k * a).min(1.0)))
            .collect();

        // Calibrate the global rate constant over the kept pairs so that
        // Σ λ_ij · duration = target contacts.
        let affinity_sum: f64 = kept.iter().map(|&(_, _, a)| a).sum();
        if affinity_sum <= 0.0 {
            return ContactTrace::new(self.nodes, Vec::new(), duration);
        }
        let c = target / (affinity_sum * span);

        let mut contacts = Vec::with_capacity(target as usize);
        let g = self.granularity.as_secs().max(1);
        // With burstiness B, meetings arrive as sessions at rate/B and
        // each emits a geometric(mean B) run of contacts — expected
        // total contacts stay calibrated.
        let session_divisor = self.burstiness;
        for &(i, j, affinity) in &kept {
            let session_rate = c * affinity / session_divisor;
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / session_rate;
                if t >= span {
                    break;
                }
                let run = if self.burstiness > 1.0 {
                    // Geometric with mean B: 1 + floor(ln u / ln(1 − 1/B))
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    1 + (u.ln() / (1.0 - 1.0 / self.burstiness).ln()) as u64
                } else {
                    1
                };
                let mut session_t = t as u64;
                for _ in 0..run {
                    if session_t >= duration.as_secs() {
                        break;
                    }
                    let start = Time(session_t);
                    let len = rng.gen_range(g.div_ceil(2)..=g + g / 2).max(1);
                    let end = Time((session_t + len).min(duration.as_secs().max(session_t + 1)));
                    if end > start {
                        contacts.push(Contact::new(NodeId(i as u32), NodeId(j as u32), start, end));
                    }
                    // Next re-detection one granularity later.
                    session_t += g;
                }
                // Resume the Poisson session process from the start of
                // the run's last contact (memoryless continuation; for
                // single-contact sessions `t` is unchanged).
                t = t.max(session_t.saturating_sub(g) as f64);
            }
        }
        ContactTrace::new(self.nodes, contacts, duration)
    }

    fn pair_boost(&self, i: usize, j: usize) -> f64 {
        if self.communities > 1 && i % self.communities == j % self.communities {
            self.community_boost
        } else {
            1.0
        }
    }
}

/// A two-regime trace with a mid-run mobility shift: the first half is
/// one synthetic trace, the second half an independently seeded trace
/// with the node identities **reversed**, so the sociable hubs of the
/// warm-up regime go quiet exactly at the midpoint and new hubs take
/// over. Warm-up-frozen NCL selections are maximally stale on the
/// second half, which is what the online re-election experiments
/// measure.
///
/// `half_contacts` is the calibration target for *each* half and
/// `half` its duration; the returned trace spans `2 × half` with
/// [`ContactTrace::midpoint`] exactly at the regime boundary.
///
/// # Example
///
/// ```
/// use dtn_core::time::Duration;
/// use dtn_trace::synthetic::regime_shift_trace;
///
/// let trace = regime_shift_trace(20, 3_000, 7, Duration::days(1));
/// assert_eq!(trace.node_count(), 20);
/// assert_eq!(trace.midpoint(), dtn_core::time::Time(86_400));
/// ```
pub fn regime_shift_trace(
    nodes: usize,
    half_contacts: u64,
    seed: u64,
    half: Duration,
) -> ContactTrace {
    let build_half = |s: u64| {
        SyntheticTraceBuilder::new(nodes)
            .duration(half)
            .target_contacts(half_contacts)
            .activity_sigma(2.0)
            .edge_density(0.25)
            .seed(s)
            .build()
    };
    let first = build_half(seed);
    let second = build_half(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut contacts = first.contacts().to_vec();
    let flip = |n: NodeId| NodeId((nodes - 1 - n.index()) as u32);
    let end = half + half;
    contacts.extend(second.contacts().iter().map(|c| {
        Contact::new(
            flip(c.a),
            flip(c.b),
            Time(c.start.as_secs() + half.as_secs()),
            Time(c.end.as_secs() + half.as_secs()),
        )
    }));
    // Drop the stragglers past 2×half so the combined duration — and
    // therefore the midpoint — stays exact.
    contacts.retain(|c| c.end.as_secs() <= end.as_secs());
    ContactTrace::new(nodes, contacts, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::graph::ContactGraph;
    use dtn_core::ncl::{all_metrics, metric_skew};

    #[test]
    fn regime_shift_trace_moves_the_hubs() {
        let half = Duration::days(1);
        let t = regime_shift_trace(20, 3_000, 9, half);
        assert_eq!(t.midpoint(), Time(half.as_secs()));
        let first = t.slice(Time::ZERO, t.midpoint());
        let second = t.slice(t.midpoint(), Time(t.duration().as_secs()));
        let hub = |tr: &ContactTrace| {
            tr.node_contact_counts()
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_ne!(
            hub(&first),
            hub(&second),
            "the busiest node must change across the regime boundary"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SyntheticTraceBuilder::new(10).seed(3).build();
        let b = SyntheticTraceBuilder::new(10).seed(3).build();
        assert_eq!(a, b);
        let c = SyntheticTraceBuilder::new(10).seed(4).build();
        assert_ne!(a, c);
    }

    #[test]
    fn contact_count_matches_target_within_tolerance() {
        let target = 10_000;
        let t = SyntheticTraceBuilder::new(40)
            .duration(Duration::days(3))
            .target_contacts(target)
            .seed(11)
            .build();
        let got = t.contact_count() as f64;
        assert!(
            (got - target as f64).abs() < 0.1 * target as f64,
            "got {got} contacts for target {target}"
        );
    }

    #[test]
    fn contacts_lie_within_duration() {
        let t = SyntheticTraceBuilder::new(15)
            .duration(Duration::hours(6))
            .seed(2)
            .build();
        for c in t.contacts() {
            assert!(c.start < c.end);
            assert!(c.end.as_secs() <= t.duration().as_secs());
        }
    }

    #[test]
    fn scale_shrinks_duration_and_contacts_proportionally() {
        let full = SyntheticTraceBuilder::new(30)
            .duration(Duration::days(4))
            .target_contacts(20_000)
            .seed(5)
            .build();
        let tenth = SyntheticTraceBuilder::new(30)
            .duration(Duration::days(4))
            .target_contacts(20_000)
            .scale(0.1)
            .seed(5)
            .build();
        assert_eq!(tenth.duration(), Duration::days(4).mul_f64(0.1));
        let ratio = tenth.contact_count() as f64 / full.contact_count() as f64;
        assert!((ratio - 0.1).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn preset_matches_table_one_statistics() {
        // Scaled down 20× to keep the test fast; density is preserved.
        let t = SyntheticTraceBuilder::from_preset(TracePreset::Infocom05)
            .scale(0.05)
            .seed(1)
            .build();
        assert_eq!(t.node_count(), 41);
        let expected = 22_459.0 * 0.05;
        let got = t.contact_count() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "got {got}, expected ≈{expected}"
        );
    }

    #[test]
    fn metric_distribution_is_skewed_like_fig4() {
        // The heterogeneity knob must produce a clearly skewed NCL-metric
        // distribution (the paper reports up-to-tenfold max/median).
        let t = SyntheticTraceBuilder::new(40)
            .duration(Duration::days(2))
            .target_contacts(4_000)
            .heterogeneity(1.5)
            .seed(9)
            .build();
        let table = t.rate_table(Time(t.duration().as_secs()));
        let g = ContactGraph::from_rate_table(&table, Time(t.duration().as_secs()));
        let skew = metric_skew(&all_metrics(&g, 3600.0));
        assert!(skew.max_over_median > 1.5, "skew {skew:?}");
    }

    #[test]
    fn communities_concentrate_contacts() {
        let base = SyntheticTraceBuilder::new(20)
            .duration(Duration::days(1))
            .target_contacts(4_000)
            .communities(4)
            .community_boost(8.0)
            .seed(13);
        let t = base.build();
        let (mut intra, mut inter) = (0u64, 0u64);
        for c in t.contacts() {
            if c.a.index() % 4 == c.b.index() % 4 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // 4 communities of 5 nodes: intra pairs = 4·C(5,2)=40 of 190
        // total. With an 8× boost, intra contacts must clearly dominate
        // their 21% pair share.
        let intra_share = intra as f64 / (intra + inter) as f64;
        assert!(intra_share > 0.5, "intra share {intra_share}");
    }

    #[test]
    fn burstiness_preserves_contact_count_but_clusters_meetings() {
        let base = SyntheticTraceBuilder::new(20)
            .duration(Duration::days(4))
            .target_contacts(12_000)
            .granularity(Duration::secs(120))
            .seed(31);
        let smooth = base.clone().build();
        let bursty = base.clone().burstiness(6.0).build();
        // Calibration holds for both.
        let (s, b) = (smooth.contact_count() as f64, bursty.contact_count() as f64);
        assert!((s - 12_000.0).abs() < 1_800.0, "smooth {s}");
        assert!((b - 12_000.0).abs() < 3_000.0, "bursty {b}");
        // Bursty contacts cluster: many consecutive same-pair gaps of
        // exactly one granularity.
        let count_small_gaps = |t: &ContactTrace| {
            let mut small = 0u32;
            let mut total = 0u32;
            for pair in crate::analysis::aggregate_intercontact_times(t) {
                total += 1;
                if pair.as_secs() <= 120 {
                    small += 1;
                }
            }
            small as f64 / total.max(1) as f64
        };
        assert!(
            count_small_gaps(&bursty) > 2.0 * count_small_gaps(&smooth),
            "bursty trace must have far more back-to-back contacts"
        );
    }

    #[test]
    #[should_panic(expected = "burstiness")]
    fn sub_one_burstiness_panics() {
        let _ = SyntheticTraceBuilder::new(5).burstiness(0.5);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn one_node_population_panics() {
        let _ = SyntheticTraceBuilder::new(1);
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn bad_shape_panics() {
        let _ = SyntheticTraceBuilder::new(5).heterogeneity(0.9);
    }
}
