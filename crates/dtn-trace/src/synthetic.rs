//! Synthetic contact-trace generation.
//!
//! Substitutes the paper's proprietary traces (see DESIGN.md §2). The
//! model follows the paper's own assumptions:
//!
//! - each unordered node pair `(i, j)` meets according to a **Poisson
//!   process** with rate `λ_ij` (§III-B of the paper) by default — the
//!   per-pair law is pluggable via [`ContactProcessKind`] (heavy-tailed
//!   and duty-cycled alternatives, all calibrated to the same mean
//!   rate, for estimator-mismatch experiments);
//! - rates are heterogeneous: each node has a *sociability* weight `w_i`
//!   drawn from a truncated Pareto distribution and
//!   `λ_ij ∝ w_i · w_j · m_ij`, where `m_ij` boosts pairs in the same
//!   community — this yields the highly skewed NCL-metric distribution
//!   of Fig. 4;
//! - the proportionality constant is calibrated so the **expected total
//!   number of contacts** matches the preset's Table I figure;
//! - each contact lasts uniformly `[0.5g, 1.5g]` around the preset
//!   granularity `g`, mirroring how the real traces' detection intervals
//!   bound observable contact durations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dtn_core::ids::NodeId;
use dtn_core::time::{Duration, Time};

use crate::process::{ContactProcess, ContactProcessKind, PairSampler};
use crate::trace::{Contact, ContactTrace};
use crate::TracePreset;

/// Builder for synthetic contact traces.
///
/// # Example
///
/// ```
/// use dtn_core::time::Duration;
/// use dtn_trace::synthetic::SyntheticTraceBuilder;
///
/// let trace = SyntheticTraceBuilder::new(30)
///     .duration(Duration::days(2))
///     .target_contacts(5_000)
///     .communities(3)
///     .seed(7)
///     .build();
/// assert_eq!(trace.node_count(), 30);
/// // Poisson counts concentrate near the calibration target.
/// assert!((trace.contact_count() as f64 - 5_000.0).abs() < 500.0);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTraceBuilder {
    nodes: usize,
    duration: Duration,
    granularity: Duration,
    target_contacts: u64,
    pareto_shape: f64,
    pareto_cap: f64,
    activity_sigma: f64,
    communities: usize,
    community_boost: f64,
    edge_density: f64,
    burstiness: f64,
    process: ContactProcessKind,
    seed: u64,
    scale: f64,
}

impl SyntheticTraceBuilder {
    /// Starts a builder for a population of `nodes` nodes with neutral
    /// defaults: one day, 120 s granularity, 50 contacts per node,
    /// moderate heterogeneity, no community structure.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes >= 2, "need at least two nodes to generate contacts");
        SyntheticTraceBuilder {
            nodes,
            duration: Duration::days(1),
            granularity: Duration::secs(120),
            target_contacts: 50 * nodes as u64,
            pareto_shape: 1.8,
            pareto_cap: 25.0,
            activity_sigma: 0.8,
            communities: 1,
            community_boost: 4.0,
            edge_density: 0.4,
            burstiness: 1.0,
            process: ContactProcessKind::Poisson,
            seed: 0,
            scale: 1.0,
        }
    }

    /// Starts a builder calibrated to one of the paper's Table I traces.
    pub fn from_preset(preset: TracePreset) -> Self {
        let mut b = SyntheticTraceBuilder::new(preset.node_count());
        b.duration = preset.duration();
        b.granularity = preset.granularity();
        b.target_contacts = preset.total_contacts();
        b.communities = match preset {
            // Conferences mix heavily; campus/city traces are clustered.
            TracePreset::Infocom05 | TracePreset::Infocom06 => 2,
            TracePreset::MitReality => 4,
            TracePreset::Ucsd => 8,
        };
        // Real contact graphs are sparse: conference attendees meet a
        // large share of their peers, campus populations only a few —
        // this sparsity is what makes the Fig. 4 metric distribution
        // skewed ("few nodes contact many others and act as the
        // communication hubs", §IV-B).
        b.edge_density = match preset {
            TracePreset::Infocom05 | TracePreset::Infocom06 => 0.5,
            TracePreset::MitReality => 0.12,
            TracePreset::Ucsd => 0.04,
        };
        b.pareto_shape = match preset {
            TracePreset::Infocom05 | TracePreset::Infocom06 => 1.8,
            TracePreset::MitReality | TracePreset::Ucsd => 1.4,
        };
        // Long traces accumulate strong participation heterogeneity
        // (devices switched off, dropouts); conferences less so.
        b.activity_sigma = match preset {
            TracePreset::Infocom05 => 2.2,
            TracePreset::Infocom06 => 2.6,
            TracePreset::MitReality => 3.0,
            TracePreset::Ucsd => 2.6,
        };
        b
    }

    /// Sets the lognormal σ of the per-node activity factor (default
    /// 0.8). Larger values produce more near-inactive nodes and a more
    /// skewed metric distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn activity_sigma(mut self, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "activity sigma must be finite and non-negative, got {sigma}"
        );
        self.activity_sigma = sigma;
        self
    }

    /// Sets the observation length.
    pub fn duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the mean contact duration (detection granularity).
    pub fn granularity(mut self, granularity: Duration) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the expected total number of contacts to calibrate to.
    pub fn target_contacts(mut self, contacts: u64) -> Self {
        self.target_contacts = contacts;
        self
    }

    /// Sets the Pareto shape of the sociability distribution; smaller
    /// values mean heavier tails (more heterogeneity). Typical: 1.5–3.
    ///
    /// # Panics
    ///
    /// Panics if `shape <= 1.0` (the mean would diverge).
    pub fn heterogeneity(mut self, shape: f64) -> Self {
        assert!(shape > 1.0, "Pareto shape must exceed 1, got {shape}");
        self.pareto_shape = shape;
        self
    }

    /// Sets the number of equal-sized communities nodes are assigned to
    /// round-robin. Pairs within a community contact `community_boost`
    /// times more often.
    ///
    /// # Panics
    ///
    /// Panics if `communities == 0`.
    pub fn communities(mut self, communities: usize) -> Self {
        assert!(communities > 0, "need at least one community");
        self.communities = communities;
        self
    }

    /// Sets the intra-community contact-rate boost factor (default 4).
    ///
    /// # Panics
    ///
    /// Panics if `boost < 1.0`.
    pub fn community_boost(mut self, boost: f64) -> Self {
        assert!(boost >= 1.0, "community boost must be at least 1");
        self.community_boost = boost;
        self
    }

    /// Sets the cap on sociability weights (default 25). Higher caps let
    /// hub nodes absorb a larger share of all contacts, increasing the
    /// skew of the metric distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `cap >= 1.0`.
    pub fn sociability_cap(mut self, cap: f64) -> Self {
        assert!(cap >= 1.0, "sociability cap must be at least 1, got {cap}");
        self.pareto_cap = cap;
        self
    }

    /// Sets the fraction of node pairs that ever meet (default 0.4).
    /// Pairs are kept with probability proportional to their affinity,
    /// so sociable nodes keep more edges — the source of the skewed
    /// metric distribution of Fig. 4.
    ///
    /// # Panics
    ///
    /// Panics unless `density` is in `(0, 1]`.
    pub fn edge_density(mut self, density: f64) -> Self {
        assert!(
            density > 0.0 && density <= 1.0,
            "edge density must be in (0, 1], got {density}"
        );
        self.edge_density = density;
        self
    }

    /// Sets the mean number of contacts per co-location *session*
    /// (default 1 = pure Poisson contacts, the paper's §III-B model).
    ///
    /// Real Bluetooth/WiFi traces are bursty: two co-located devices are
    /// re-detected every scan interval, so one physical meeting shows up
    /// as a run of consecutive contact records. With `burstiness > 1`,
    /// pair meetings arrive as Poisson *sessions* whose contact-count is
    /// geometric with this mean, spaced one granularity apart. Total
    /// expected contacts still match the calibration target, but the
    /// independent-meeting rate drops by the burstiness factor —
    /// mirroring how raw contact counts overestimate meeting
    /// opportunities in real traces.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_contacts_per_session >= 1.0`.
    pub fn burstiness(mut self, mean_contacts_per_session: f64) -> Self {
        assert!(
            mean_contacts_per_session >= 1.0 && mean_contacts_per_session.is_finite(),
            "burstiness must be a finite value ≥ 1, got {mean_contacts_per_session}"
        );
        self.burstiness = mean_contacts_per_session;
        self
    }

    /// Sets the per-pair inter-contact process (default
    /// [`ContactProcessKind::Poisson`], the paper's §III-B model). Every
    /// process is calibrated to the same mean session rate, so the
    /// expected contact count is invariant under this knob — only the
    /// gap distribution's shape changes.
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are outside their documented
    /// domains (see [`ContactProcessKind::validate`]).
    pub fn contact_process(mut self, process: ContactProcessKind) -> Self {
        process.validate();
        self.process = process;
        self
    }

    /// Sets the RNG seed; the same builder with the same seed produces an
    /// identical trace.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales duration *and* contact target by `factor`, preserving the
    /// contact density. Use small factors for fast tests and benches.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scale(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale must be finite and positive, got {factor}"
        );
        self.scale = factor;
        self
    }

    /// Generates the trace, materialized in memory.
    ///
    /// This is the small-N reference path: it draws the exact same
    /// per-pair contact processes as [`SyntheticTraceBuilder::stream`]
    /// (both run off one shared internal plan), collects them, and
    /// lets [`ContactTrace::new`] sort. The two paths yield identical
    /// contact sequences for every configuration and seed; the streaming
    /// path just never holds more than `O(pairs)` state.
    pub fn build(&self) -> ContactTrace {
        let plan = self.plan();
        let mut contacts = Vec::new();
        for pair in &plan.pairs {
            let mut gen = PairContacts::new(pair, &plan);
            while let Some(c) = gen.next_raw() {
                contacts.push(c);
            }
        }
        ContactTrace::new(plan.nodes, contacts, plan.trace_duration)
    }

    /// Generates the trace as a time-ordered contact iterator without
    /// materializing it: memory stays `O(kept pairs)` (one lazy pair
    /// process plus one in-flight contact each) regardless of how many
    /// contacts the trace contains. City-scale runs feed this straight
    /// into the simulator.
    ///
    /// Yields exactly the contacts of [`SyntheticTraceBuilder::build`],
    /// in exactly `(start, a, b, end)` order.
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_trace::synthetic::SyntheticTraceBuilder;
    ///
    /// let builder = SyntheticTraceBuilder::new(20).seed(3);
    /// let streamed: Vec<_> = builder.stream().collect();
    /// assert_eq!(streamed, builder.build().contacts());
    /// ```
    pub fn stream(&self) -> ContactStream {
        ContactStream::new(self.plan())
    }

    /// Computes everything both generation paths share: calibrated
    /// durations, the kept-pair set, and each pair's session rate and
    /// derived RNG seed. `O(kept pairs)` memory.
    fn plan(&self) -> TracePlan {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let duration = self.duration.mul_f64(self.scale);
        let target = (self.target_contacts as f64 * self.scale).round().max(1.0);
        let span = duration.as_secs_f64().max(1.0);

        // Per-node sociability: a truncated Pareto(shape, x_m = 1) upper
        // tail (hubs) multiplied by a lognormal activity factor that
        // also produces a heavy *lower* tail — real traces contain many
        // near-inactive devices, and that inactivity is what keeps the
        // median NCL metric far below the hubs' (Fig. 4).
        let weights: Vec<f64> = (0..self.nodes)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let pareto = u.powf(-1.0 / self.pareto_shape).min(self.pareto_cap);
                // Box-Muller standard normal for the activity factor.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
                pareto * (self.activity_sigma * z).exp()
            })
            .collect();

        // Select which pairs ever meet: keep probability proportional to
        // affinity (capped at 1), scaled so the expected kept fraction is
        // `edge_density`. Sociable nodes keep more edges, producing the
        // skewed, sparse contact graphs of real traces (Fig. 4). Small
        // populations enumerate every pair exactly; large ones skip-sample.
        let kept = if self.nodes <= EXACT_PAIR_SWEEP_LIMIT {
            self.keep_pairs_exact(&weights)
        } else {
            self.keep_pairs_sampled(&weights)
        };

        // Calibrate the global rate constant over the kept pairs so that
        // Σ λ_ij · duration = target contacts.
        let affinity_sum: f64 = kept.iter().map(|&(_, _, a)| a).sum();
        let mut pairs = Vec::with_capacity(kept.len());
        if affinity_sum > 0.0 {
            let c = target / (affinity_sum * span);
            // With burstiness B, meetings arrive as sessions at rate/B
            // and each emits a geometric(mean B) run of contacts —
            // expected total contacts stay calibrated.
            for &(i, j, affinity) in &kept {
                pairs.push(PlannedPair {
                    a: NodeId(i),
                    b: NodeId(j),
                    session_rate: c * affinity / self.burstiness,
                    rng_seed: mix64(pair_key(self.seed, i, j) ^ PAIR_PROCESS_SALT),
                });
            }
        }
        TracePlan {
            nodes: self.nodes,
            trace_duration: duration,
            span,
            granularity_secs: self.granularity.as_secs().max(1),
            burstiness: self.burstiness,
            process: self.process,
            pairs,
        }
    }

    /// Exact pair selection: enumerate all `C(N, 2)` affinities, binary
    /// search the multiplier `k` with `Σ min(1, k·a)` = the edge target,
    /// and keep each pair by its own derived uniform.
    fn keep_pairs_exact(&self, weights: &[f64]) -> Vec<(u32, u32, f64)> {
        let mut affinities = Vec::with_capacity(self.nodes * (self.nodes - 1) / 2);
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                affinities.push((
                    i as u32,
                    j as u32,
                    weights[i] * weights[j] * self.pair_boost(i, j),
                ));
            }
        }
        let pair_count = affinities.len() as f64;
        let target_edges = self.edge_density * pair_count;
        // Binary search the affinity multiplier k with Σ min(1, k·a) =
        // target_edges (monotone in k).
        let kept_expectation =
            |k: f64| -> f64 { affinities.iter().map(|&(_, _, a)| (k * a).min(1.0)).sum() };
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        while kept_expectation(hi) < target_edges && hi < 1e12 {
            hi *= 2.0;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if kept_expectation(mid) < target_edges {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let k = hi;
        affinities
            .into_iter()
            .filter(|&(i, j, a)| {
                uniform01(mix64(pair_key(self.seed, i, j) ^ PAIR_KEEP_SALT)) < (k * a).min(1.0)
            })
            .collect()
    }

    /// Skip-sampled pair selection for populations where enumerating
    /// `C(N, 2)` pairs is infeasible (Miller–Hagberg style Chung-Lu
    /// sampling): nodes are sorted by weight, each source walks its
    /// heavier-to-lighter candidate list with geometric skips drawn
    /// against the monotone proposal bound `min(1, k·boost·wᵢ·wⱼ)`, and
    /// landed candidates are thinned to the exact pair probability
    /// `min(1, k·a)`. Expected work is `O(N + kept)`.
    ///
    /// The multiplier `k` comes from the closed form
    /// `k = target_edges / Σ a` (with `Σ a` computed in `O(N)` from
    /// weight sums) instead of the exact-capped binary search, so the
    /// realized edge count can undershoot the target where `k·a` exceeds
    /// 1 — hub pairs — by design an edge-density approximation, while
    /// the *contact* calibration below stays exact because it sums
    /// affinities over the actually-kept pairs.
    fn keep_pairs_sampled(&self, weights: &[f64]) -> Vec<(u32, u32, f64)> {
        let n = self.nodes;
        let boost = if self.communities > 1 {
            self.community_boost
        } else {
            1.0
        };
        let pair_count = n as f64 * (n as f64 - 1.0) / 2.0;
        let target_edges = self.edge_density * pair_count;
        // Σ a in closed form: the unboosted term over all pairs plus the
        // boost surplus over intra-community pairs (node i lives in
        // community i % m).
        let sum_w: f64 = weights.iter().sum();
        let sum_w2: f64 = weights.iter().map(|w| w * w).sum();
        let mut affinity_total = (sum_w * sum_w - sum_w2) / 2.0;
        if self.communities > 1 {
            let m = self.communities;
            let mut s = vec![0.0f64; m];
            let mut q = vec![0.0f64; m];
            for (i, &w) in weights.iter().enumerate() {
                s[i % m] += w;
                q[i % m] += w * w;
            }
            for c in 0..m {
                affinity_total += (boost - 1.0) * (s[c] * s[c] - q[c]) / 2.0;
            }
        }
        if affinity_total <= 0.0 {
            return Vec::new();
        }
        let k = target_edges / affinity_total;

        // Weight-descending node order (ties by id) makes the proposal
        // bound non-increasing along each source's candidate walk.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&x, &y| {
            weights[y as usize]
                .total_cmp(&weights[x as usize])
                .then(x.cmp(&y))
        });

        let mut kept = Vec::new();
        for si in 0..n.saturating_sub(1) {
            let i = order[si];
            let wi = weights[i as usize];
            let mut rng =
                StdRng::seed_from_u64(mix64(self.seed ^ EDGE_SAMPLE_SALT ^ (u64::from(i) << 20)));
            let mut sj = si + 1;
            while sj < n {
                let q = (k * boost * wi * weights[order[sj] as usize]).min(1.0);
                if q <= 0.0 {
                    break;
                }
                if q < 1.0 {
                    // Geometric number of candidates rejected by the
                    // proposal bound before the next landing.
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let skip = u.ln() / (1.0 - q).ln();
                    if skip >= (n - sj) as f64 {
                        break;
                    }
                    sj += skip as usize;
                }
                let j = order[sj];
                let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                let a = wi * weights[j as usize] * self.pair_boost(lo as usize, hi as usize);
                let p = (k * a).min(1.0);
                // Thin the proposal down to the exact pair probability.
                let u: f64 = rng.gen_range(0.0..1.0);
                if u * q < p {
                    kept.push((lo, hi, a));
                }
                sj += 1;
            }
        }
        kept
    }

    fn pair_boost(&self, i: usize, j: usize) -> f64 {
        if self.communities > 1 && i % self.communities == j % self.communities {
            self.community_boost
        } else {
            1.0
        }
    }
}

/// Populations up to this size select pairs by exact enumeration
/// ([`SyntheticTraceBuilder::plan`]); larger ones switch to skip
/// sampling. `C(2048, 2) ≈ 2.1 M` pairs is the last cheap sweep.
const EXACT_PAIR_SWEEP_LIMIT: usize = 2048;

/// Domain-separation salts for the derived per-pair randomness.
const PAIR_KEEP_SALT: u64 = 0x9E6C_5A0B_11C4_93D1;
const PAIR_PROCESS_SALT: u64 = 0x3C79_AC49_2F1E_8889;
const EDGE_SAMPLE_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// SplitMix64 finalizer: a cheap, well-mixed u64 → u64 hash.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Mixes a builder seed and an unordered pair into one key, so every
/// pair's randomness is independent of enumeration order — the property
/// that lets the streaming and materialized paths agree exactly.
fn pair_key(seed: u64, i: u32, j: u32) -> u64 {
    mix64(seed.wrapping_add(mix64((u64::from(i) << 32) | u64::from(j))))
}

/// Maps a hash to a uniform in `[0, 1)` (53-bit mantissa).
fn uniform01(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Hashes `x` to a uniform in `[0, 1)` — for per-pair derived constants
/// (e.g. duty-cycle phases) that must not consume any RNG stream.
pub(crate) fn hash_uniform01(x: u64) -> f64 {
    uniform01(mix64(x))
}

/// Everything the two generation paths share: calibration results plus
/// one entry per kept pair.
#[derive(Debug, Clone)]
struct TracePlan {
    nodes: usize,
    trace_duration: Duration,
    span: f64,
    granularity_secs: u64,
    burstiness: f64,
    process: ContactProcessKind,
    pairs: Vec<PlannedPair>,
}

/// One kept pair: endpoints, calibrated session rate, and the seed of
/// its private contact-process RNG.
#[derive(Debug, Clone, Copy)]
struct PlannedPair {
    a: NodeId,
    b: NodeId,
    session_rate: f64,
    rng_seed: u64,
}

/// Lazy generator of one pair's raw contact sequence — the pluggable
/// session process ([`ContactProcess`]) with geometric re-detection
/// runs, emitted one contact at a time. Both generation paths run this
/// exact state machine, so their per-pair sequences are identical by
/// construction.
struct PairContacts {
    a: NodeId,
    b: NodeId,
    rng: StdRng,
    sampler: PairSampler,
    burstiness: f64,
    granularity_secs: u64,
    duration_secs: u64,
    span: f64,
    /// Continuous session-process clock.
    t: f64,
    /// Start slot of the next contact in the current run.
    session_t: u64,
    /// Contacts left in the current run.
    run_left: u64,
    /// Whether a run is open (its end-of-run clock update still due).
    in_run: bool,
    done: bool,
}

impl PairContacts {
    fn new(pair: &PlannedPair, plan: &TracePlan) -> Self {
        PairContacts {
            a: pair.a,
            b: pair.b,
            rng: StdRng::seed_from_u64(pair.rng_seed),
            sampler: plan.process.sampler(pair.session_rate, pair.rng_seed),
            burstiness: plan.burstiness,
            granularity_secs: plan.granularity_secs,
            duration_secs: plan.trace_duration.as_secs(),
            span: plan.span,
            t: 0.0,
            session_t: 0,
            run_left: 0,
            in_run: false,
            done: false,
        }
    }

    /// The next raw contact in generation order (starts nondecreasing;
    /// `(start, end)` may be locally inverted across run boundaries when
    /// truncation ties two starts — [`PairStream`] restores full order).
    fn next_raw(&mut self) -> Option<Contact> {
        if self.done {
            return None;
        }
        let g = self.granularity_secs;
        loop {
            if self.run_left == 0 {
                if self.in_run {
                    // Resume the session process from the start of the
                    // run's last contact (a renewal restart; for the
                    // memoryless Poisson reference this is exactly the
                    // pre-trait continuation, and for single-contact
                    // sessions `t` is unchanged).
                    self.t = self.t.max(self.session_t.saturating_sub(g) as f64);
                    self.in_run = false;
                }
                self.t = self.sampler.next_session(self.t, &mut self.rng);
                if self.t >= self.span {
                    self.done = true;
                    return None;
                }
                self.run_left = if self.burstiness > 1.0 {
                    // Geometric with mean B: 1 + floor(ln u / ln(1 − 1/B))
                    let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    1 + (u.ln() / (1.0 - 1.0 / self.burstiness).ln()) as u64
                } else {
                    1
                };
                self.session_t = self.t as u64;
                self.in_run = true;
            }
            if self.session_t >= self.duration_secs {
                // The rest of the run falls past the observation end.
                self.run_left = 0;
                continue;
            }
            self.run_left -= 1;
            let start = Time(self.session_t);
            let len = self.rng.gen_range(g.div_ceil(2)..=g + g / 2).max(1);
            let end = Time((self.session_t + len).min(self.duration_secs.max(self.session_t + 1)));
            // Next re-detection one granularity later.
            self.session_t += g;
            if end > start {
                return Some(Contact::new(self.a, self.b, start, end));
            }
        }
    }
}

/// Wraps a [`PairContacts`] to emit the pair's contacts in full
/// `(start, end)` order: raw contacts arrive with nondecreasing starts,
/// so buffering each group of equal starts and stable-sorting it by end
/// reproduces exactly what the materialized path's global stable sort
/// does within the pair.
struct PairStream {
    gen: PairContacts,
    /// Contacts sharing the current start, sorted by end.
    group: Vec<Contact>,
    group_pos: usize,
    /// First raw contact with a later start, pulled while grouping.
    lookahead: Option<Contact>,
}

impl PairStream {
    fn new(gen: PairContacts) -> Self {
        PairStream {
            gen,
            group: Vec::new(),
            group_pos: 0,
            lookahead: None,
        }
    }

    fn next_contact(&mut self) -> Option<Contact> {
        if self.group_pos < self.group.len() {
            let c = self.group[self.group_pos];
            self.group_pos += 1;
            return Some(c);
        }
        self.group.clear();
        self.group_pos = 0;
        let first = self.lookahead.take().or_else(|| self.gen.next_raw())?;
        let start = first.start;
        self.group.push(first);
        loop {
            match self.gen.next_raw() {
                Some(c) if c.start == start => self.group.push(c),
                other => {
                    self.lookahead = other;
                    break;
                }
            }
        }
        // Stable by end: ties keep generation order, matching the
        // materialized path's stable global sort.
        self.group.sort_by_key(|c| c.end);
        self.group_pos = 1;
        Some(self.group[0])
    }
}

/// Entry of the k-way merge: one pair's next contact, ordered by the
/// trace sort key `(start, a, b, end)`.
struct MergeEntry {
    contact: Contact,
    pair: usize,
}

impl MergeEntry {
    fn key(&self) -> (Time, NodeId, NodeId, Time) {
        (
            self.contact.start,
            self.contact.a,
            self.contact.b,
            self.contact.end,
        )
    }
}

impl PartialEq for MergeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for MergeEntry {}
impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for ascending emission.
        other.key().cmp(&self.key())
    }
}

/// A time-ordered stream of synthetic contacts, produced by
/// [`SyntheticTraceBuilder::stream`].
///
/// A k-way heap merge over one lazy per-pair contact process per kept
/// pair: memory is `O(kept pairs)` and independent of the contact
/// count, which is what lets 100k–1M-node traces feed a simulation
/// without ever existing in RAM. Yields exactly the contacts of
/// [`SyntheticTraceBuilder::build`] in `(start, a, b, end)` order.
pub struct ContactStream {
    nodes: usize,
    trace_duration: Duration,
    pairs: Vec<PairStream>,
    heap: std::collections::BinaryHeap<MergeEntry>,
}

impl ContactStream {
    fn new(plan: TracePlan) -> Self {
        let mut pairs: Vec<PairStream> = plan
            .pairs
            .iter()
            .map(|p| PairStream::new(PairContacts::new(p, &plan)))
            .collect();
        let mut heap = std::collections::BinaryHeap::with_capacity(pairs.len());
        for (idx, pair) in pairs.iter_mut().enumerate() {
            if let Some(contact) = pair.next_contact() {
                heap.push(MergeEntry { contact, pair: idx });
            }
        }
        ContactStream {
            nodes: plan.nodes,
            trace_duration: plan.trace_duration,
            pairs,
            heap,
        }
    }

    /// Number of nodes of the (virtual) trace.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Observation length of the (virtual) trace; every yielded contact
    /// ends at or before it.
    pub fn duration(&self) -> Duration {
        self.trace_duration
    }
}

impl Iterator for ContactStream {
    type Item = Contact;

    fn next(&mut self) -> Option<Contact> {
        let entry = self.heap.pop()?;
        if let Some(contact) = self.pairs[entry.pair].next_contact() {
            self.heap.push(MergeEntry {
                contact,
                pair: entry.pair,
            });
        }
        Some(entry.contact)
    }
}

/// A two-regime trace with a mid-run mobility shift: the first half is
/// one synthetic trace, the second half an independently seeded trace
/// with the node identities **reversed**, so the sociable hubs of the
/// warm-up regime go quiet exactly at the midpoint and new hubs take
/// over. Warm-up-frozen NCL selections are maximally stale on the
/// second half, which is what the online re-election experiments
/// measure.
///
/// `half_contacts` is the calibration target for *each* half and
/// `half` its duration; the returned trace spans `2 × half` with
/// [`ContactTrace::midpoint`] exactly at the regime boundary.
///
/// # Example
///
/// ```
/// use dtn_core::time::Duration;
/// use dtn_trace::synthetic::regime_shift_trace;
///
/// let trace = regime_shift_trace(20, 3_000, 7, Duration::days(1));
/// assert_eq!(trace.node_count(), 20);
/// assert_eq!(trace.midpoint(), dtn_core::time::Time(86_400));
/// ```
pub fn regime_shift_trace(
    nodes: usize,
    half_contacts: u64,
    seed: u64,
    half: Duration,
) -> ContactTrace {
    let build_half = |s: u64| {
        SyntheticTraceBuilder::new(nodes)
            .duration(half)
            .target_contacts(half_contacts)
            .activity_sigma(2.0)
            .edge_density(0.25)
            .seed(s)
            .build()
    };
    let first = build_half(seed);
    let second = build_half(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut contacts = first.contacts().to_vec();
    let flip = |n: NodeId| NodeId((nodes - 1 - n.index()) as u32);
    let end = half + half;
    contacts.extend(second.contacts().iter().map(|c| {
        Contact::new(
            flip(c.a),
            flip(c.b),
            Time(c.start.as_secs() + half.as_secs()),
            Time(c.end.as_secs() + half.as_secs()),
        )
    }));
    // Drop the stragglers past 2×half so the combined duration — and
    // therefore the midpoint — stays exact.
    contacts.retain(|c| c.end.as_secs() <= end.as_secs());
    ContactTrace::new(nodes, contacts, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::graph::ContactGraph;
    use dtn_core::ncl::{all_metrics, metric_skew};

    #[test]
    fn regime_shift_trace_moves_the_hubs() {
        let half = Duration::days(1);
        let t = regime_shift_trace(20, 3_000, 9, half);
        assert_eq!(t.midpoint(), Time(half.as_secs()));
        let first = t.slice(Time::ZERO, t.midpoint());
        let second = t.slice(t.midpoint(), Time(t.duration().as_secs()));
        let hub = |tr: &ContactTrace| {
            tr.node_contact_counts()
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_ne!(
            hub(&first),
            hub(&second),
            "the busiest node must change across the regime boundary"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = SyntheticTraceBuilder::new(10).seed(3).build();
        let b = SyntheticTraceBuilder::new(10).seed(3).build();
        assert_eq!(a, b);
        let c = SyntheticTraceBuilder::new(10).seed(4).build();
        assert_ne!(a, c);
    }

    #[test]
    fn contact_count_matches_target_within_tolerance() {
        let target = 10_000;
        let t = SyntheticTraceBuilder::new(40)
            .duration(Duration::days(3))
            .target_contacts(target)
            .seed(11)
            .build();
        let got = t.contact_count() as f64;
        assert!(
            (got - target as f64).abs() < 0.1 * target as f64,
            "got {got} contacts for target {target}"
        );
    }

    #[test]
    fn contacts_lie_within_duration() {
        let t = SyntheticTraceBuilder::new(15)
            .duration(Duration::hours(6))
            .seed(2)
            .build();
        for c in t.contacts() {
            assert!(c.start < c.end);
            assert!(c.end.as_secs() <= t.duration().as_secs());
        }
    }

    #[test]
    fn scale_shrinks_duration_and_contacts_proportionally() {
        let full = SyntheticTraceBuilder::new(30)
            .duration(Duration::days(4))
            .target_contacts(20_000)
            .seed(5)
            .build();
        let tenth = SyntheticTraceBuilder::new(30)
            .duration(Duration::days(4))
            .target_contacts(20_000)
            .scale(0.1)
            .seed(5)
            .build();
        assert_eq!(tenth.duration(), Duration::days(4).mul_f64(0.1));
        let ratio = tenth.contact_count() as f64 / full.contact_count() as f64;
        assert!((ratio - 0.1).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn preset_matches_table_one_statistics() {
        // Scaled down 20× to keep the test fast; density is preserved.
        let t = SyntheticTraceBuilder::from_preset(TracePreset::Infocom05)
            .scale(0.05)
            .seed(1)
            .build();
        assert_eq!(t.node_count(), 41);
        let expected = 22_459.0 * 0.05;
        let got = t.contact_count() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "got {got}, expected ≈{expected}"
        );
    }

    #[test]
    fn metric_distribution_is_skewed_like_fig4() {
        // The heterogeneity knob must produce a clearly skewed NCL-metric
        // distribution (the paper reports up-to-tenfold max/median).
        let t = SyntheticTraceBuilder::new(40)
            .duration(Duration::days(2))
            .target_contacts(4_000)
            .heterogeneity(1.5)
            .seed(9)
            .build();
        let table = t.rate_table(Time(t.duration().as_secs()));
        let g = ContactGraph::from_rate_table(&table, Time(t.duration().as_secs()));
        let skew = metric_skew(&all_metrics(&g, 3600.0));
        assert!(skew.max_over_median > 1.5, "skew {skew:?}");
    }

    #[test]
    fn communities_concentrate_contacts() {
        let base = SyntheticTraceBuilder::new(20)
            .duration(Duration::days(1))
            .target_contacts(4_000)
            .communities(4)
            .community_boost(8.0)
            .seed(13);
        let t = base.build();
        let (mut intra, mut inter) = (0u64, 0u64);
        for c in t.contacts() {
            if c.a.index() % 4 == c.b.index() % 4 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        // 4 communities of 5 nodes: intra pairs = 4·C(5,2)=40 of 190
        // total. With an 8× boost, intra contacts must clearly dominate
        // their 21% pair share.
        let intra_share = intra as f64 / (intra + inter) as f64;
        assert!(intra_share > 0.5, "intra share {intra_share}");
    }

    #[test]
    fn burstiness_preserves_contact_count_but_clusters_meetings() {
        let base = SyntheticTraceBuilder::new(20)
            .duration(Duration::days(4))
            .target_contacts(12_000)
            .granularity(Duration::secs(120))
            .seed(31);
        let smooth = base.clone().build();
        let bursty = base.clone().burstiness(6.0).build();
        // Calibration holds for both.
        let (s, b) = (smooth.contact_count() as f64, bursty.contact_count() as f64);
        assert!((s - 12_000.0).abs() < 1_800.0, "smooth {s}");
        assert!((b - 12_000.0).abs() < 3_000.0, "bursty {b}");
        // Bursty contacts cluster: many consecutive same-pair gaps of
        // exactly one granularity.
        let count_small_gaps = |t: &ContactTrace| {
            let mut small = 0u32;
            let mut total = 0u32;
            for pair in crate::analysis::aggregate_intercontact_times(t) {
                total += 1;
                if pair.as_secs() <= 120 {
                    small += 1;
                }
            }
            small as f64 / total.max(1) as f64
        };
        assert!(
            count_small_gaps(&bursty) > 2.0 * count_small_gaps(&smooth),
            "bursty trace must have far more back-to-back contacts"
        );
    }

    #[test]
    fn calibration_is_invariant_under_the_process_choice() {
        // The acceptance bar for "figures stay comparable": every
        // process must land near the same contact target. Heavy-tailed
        // gap laws converge slowly, hence the per-process bands.
        let target = 12_000.0;
        for kind in ContactProcessKind::ALL {
            let t = SyntheticTraceBuilder::new(30)
                .duration(Duration::days(6))
                .target_contacts(12_000)
                .contact_process(kind)
                .seed(77)
                .build();
            let got = t.contact_count() as f64;
            let tol = match kind {
                ContactProcessKind::Poisson => 0.10,
                // One Pareto draw can swallow a pair's whole span.
                _ => 0.30,
            };
            assert!(
                (got - target).abs() < tol * target,
                "{}: got {got} contacts for target {target}",
                kind.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "duty fraction")]
    fn invalid_process_parameters_panic_at_the_builder() {
        let _ = SyntheticTraceBuilder::new(5).contact_process(ContactProcessKind::DutyCycled {
            period_secs: 3600.0,
            duty: 0.0,
        });
    }

    #[test]
    #[should_panic(expected = "burstiness")]
    fn sub_one_burstiness_panics() {
        let _ = SyntheticTraceBuilder::new(5).burstiness(0.5);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn one_node_population_panics() {
        let _ = SyntheticTraceBuilder::new(1);
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn bad_shape_panics() {
        let _ = SyntheticTraceBuilder::new(5).heterogeneity(0.9);
    }

    #[test]
    fn stream_matches_build_across_configurations() {
        let builders = [
            SyntheticTraceBuilder::new(12).seed(7),
            SyntheticTraceBuilder::new(30)
                .seed(17)
                .communities(3)
                .community_boost(6.0),
            SyntheticTraceBuilder::new(25).seed(23).burstiness(4.0),
            SyntheticTraceBuilder::new(40).seed(5).scale(0.3),
            SyntheticTraceBuilder::from_preset(TracePreset::Infocom05).scale(0.05),
            SyntheticTraceBuilder::new(18)
                .seed(11)
                .contact_process(ContactProcessKind::PARETO),
            SyntheticTraceBuilder::new(18)
                .seed(13)
                .contact_process(ContactProcessKind::LOGNORMAL),
            SyntheticTraceBuilder::new(18)
                .seed(19)
                .contact_process(ContactProcessKind::BOUNDED_POWER_LAW),
            SyntheticTraceBuilder::new(18)
                .seed(29)
                .burstiness(3.0)
                .contact_process(ContactProcessKind::DUTY_CYCLED),
        ];
        for builder in builders {
            let built = builder.build();
            let stream = builder.stream();
            assert_eq!(stream.node_count(), built.node_count());
            assert_eq!(stream.duration(), built.duration());
            let streamed: Vec<Contact> = stream.collect();
            assert_eq!(streamed, built.contacts(), "stream != build");
        }
    }

    #[test]
    fn sampled_mode_streams_in_order_and_in_bounds() {
        // Above EXACT_PAIR_SWEEP_LIMIT the skip-sampled pair selection
        // kicks in; the stream must still be sorted by the trace key
        // and every contact must respect the node and time bounds.
        let builder = SyntheticTraceBuilder::new(3000)
            .duration(Duration::hours(6))
            .target_contacts(40_000)
            .edge_density(0.01)
            .communities(8)
            .seed(41);
        let stream = builder.stream();
        let duration = stream.duration();
        let mut count = 0usize;
        let mut prev: Option<Contact> = None;
        for c in stream {
            assert!(c.a.index() < 3000 && c.b.index() < 3000);
            assert!(c.a < c.b, "contacts are endpoint-normalized");
            assert!(c.end <= Time(duration.as_secs()));
            assert!(c.start < c.end);
            if let Some(p) = prev {
                assert!(
                    (p.start, p.a, p.b, p.end) <= (c.start, c.a, c.b, c.end),
                    "stream out of order: {p:?} before {c:?}"
                );
            }
            prev = Some(c);
            count += 1;
        }
        // Calibration is statistical; sampled pair selection keeps the
        // contact target within a loose band.
        assert!(
            (20_000..=80_000).contains(&count),
            "contact count {count} far from target"
        );
    }

    #[test]
    fn sampled_mode_concentrates_intra_community_contacts() {
        let builder = SyntheticTraceBuilder::new(2500)
            .duration(Duration::hours(6))
            .target_contacts(30_000)
            .edge_density(0.01)
            .communities(5)
            .community_boost(8.0)
            .seed(19);
        let mut intra = 0usize;
        let mut total = 0usize;
        for c in builder.stream() {
            if c.a.index() % 5 == c.b.index() % 5 {
                intra += 1;
            }
            total += 1;
        }
        // 5 communities: uniform mixing would put ~20% of contacts
        // intra-community; the boost must pull well past that.
        assert!(total > 1_000, "degenerate trace: {total} contacts");
        assert!(
            intra as f64 / total as f64 > 0.4,
            "intra share {:.3} too low",
            intra as f64 / total as f64
        );
    }

    #[test]
    fn empty_pair_plan_yields_empty_stream() {
        // With edge density driven to the floor and only two nodes the
        // kept-pair set can be empty; both paths must agree on that too.
        let builder = SyntheticTraceBuilder::new(2).edge_density(1e-9).seed(101);
        let built = builder.build();
        let streamed: Vec<Contact> = builder.stream().collect();
        assert_eq!(streamed, built.contacts());
    }
}
