//! Plain-text (CSV) serialisation of contact traces.
//!
//! The format is one header line `# nodes=<N> duration=<secs>` followed
//! by one `a,b,start,end` line per contact — the same shape as the
//! published Haggle/Reality trace dumps, so real traces can be converted
//! with a one-line awk script and loaded here.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use dtn_core::ids::NodeId;
use dtn_core::time::{Duration, Time};

use crate::trace::{Contact, ContactTrace};

/// Error produced while reading a trace.
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed header or contact line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for TraceReadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceReadError::Io(e) => Some(e),
            TraceReadError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceReadError {
    fn from(e: std::io::Error) -> Self {
        TraceReadError::Io(e)
    }
}

/// Writes a trace in CSV form. A mut reference works as the writer.
///
/// # Errors
///
/// Propagates any I/O error from `writer`.
///
/// # Example
///
/// ```
/// use dtn_trace::io::{read_trace, write_trace};
/// use dtn_trace::synthetic::SyntheticTraceBuilder;
///
/// let trace = SyntheticTraceBuilder::new(5).seed(2).build();
/// let mut buf = Vec::new();
/// write_trace(&trace, &mut buf)?;
/// let back = read_trace(&buf[..])?;
/// assert_eq!(trace, back);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_trace<W: Write>(trace: &ContactTrace, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# nodes={} duration={}",
        trace.node_count(),
        trace.duration().as_secs()
    )?;
    for c in trace.contacts() {
        writeln!(
            writer,
            "{},{},{},{}",
            c.a.0,
            c.b.0,
            c.start.as_secs(),
            c.end.as_secs()
        )?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`]. A mut reference
/// works as the reader.
///
/// # Errors
///
/// Returns [`TraceReadError`] on I/O failure or malformed input.
pub fn read_trace<R: BufRead>(reader: R) -> Result<ContactTrace, TraceReadError> {
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| TraceReadError::Parse {
        line: 1,
        reason: "empty input, expected header".into(),
    })??;
    let (nodes, duration) = parse_header(&header).ok_or_else(|| TraceReadError::Parse {
        line: 1,
        reason: format!("bad header {header:?}, expected `# nodes=N duration=SECS`"),
    })?;

    let mut contacts = Vec::new();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split(',');
        let mut field = |name: &str| -> Result<u64, TraceReadError> {
            parts
                .next()
                .and_then(|p| p.trim().parse().ok())
                .ok_or_else(|| TraceReadError::Parse {
                    line: line_no,
                    reason: format!("missing or non-numeric field `{name}` in {trimmed:?}"),
                })
        };
        let a = field("a")?;
        let b = field("b")?;
        let start = field("start")?;
        let end = field("end")?;
        if a == b || end <= start || a >= nodes as u64 || b >= nodes as u64 {
            return Err(TraceReadError::Parse {
                line: line_no,
                reason: format!("invalid contact {trimmed:?}"),
            });
        }
        contacts.push(Contact::new(
            NodeId(a as u32),
            NodeId(b as u32),
            Time(start),
            Time(end),
        ));
    }
    Ok(ContactTrace::new(nodes, contacts, Duration(duration)))
}

fn parse_header(header: &str) -> Option<(usize, u64)> {
    let rest = header.strip_prefix('#')?.trim();
    let mut nodes = None;
    let mut duration = None;
    for token in rest.split_whitespace() {
        if let Some(v) = token.strip_prefix("nodes=") {
            nodes = v.parse().ok();
        } else if let Some(v) = token.strip_prefix("duration=") {
            duration = v.parse().ok();
        }
    }
    Some((nodes?, duration?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticTraceBuilder;

    #[test]
    fn roundtrip_preserves_trace() {
        let t = SyntheticTraceBuilder::new(8).seed(5).build();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).expect("write to Vec cannot fail");
        let back = read_trace(&buf[..]).expect("own output must parse");
        assert_eq!(t, back);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = "# nodes=3 duration=100\n\n# comment\n0,1,10,20\n";
        let t = read_trace(input.as_bytes()).expect("valid input");
        assert_eq!(t.contact_count(), 1);
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn rejects_empty_input() {
        let err = read_trace(&b""[..]).unwrap_err();
        assert!(err.to_string().contains("header") || err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace(&b"nodes=3\n"[..]).unwrap_err();
        assert!(matches!(err, TraceReadError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_malformed_contact_line() {
        let err = read_trace(&b"# nodes=3 duration=100\n0,1,oops,20\n"[..]).unwrap_err();
        match err {
            TraceReadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_range_node() {
        let err = read_trace(&b"# nodes=3 duration=100\n0,9,10,20\n"[..]).unwrap_err();
        assert!(err.to_string().contains("invalid contact"));
    }

    #[test]
    fn rejects_inverted_interval() {
        let err = read_trace(&b"# nodes=3 duration=100\n0,1,20,20\n"[..]).unwrap_err();
        assert!(err.to_string().contains("invalid contact"));
    }
}
