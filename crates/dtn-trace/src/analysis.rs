//! Inter-contact time analysis.
//!
//! The network model (§III-B of the paper) assumes pairwise
//! inter-contact times are exponentially distributed, citing the
//! empirical analyses of \[2\]\[5\]\[19\]. This module lets users check
//! that assumption on any [`ContactTrace`] — real or synthetic: extract
//! per-pair or aggregate inter-contact samples, fit an exponential by
//! maximum likelihood, and measure how well the empirical tail matches
//! (an exponential CCDF is a straight line in log space, so the R² of
//! the log-CCDF regression is a natural goodness score).

use dtn_core::ids::NodeId;
use dtn_core::time::Duration;

use crate::trace::ContactTrace;

/// Inter-contact times (end of one contact to start of the next) of a
/// single node pair, in chronological order.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::time::{Duration, Time};
/// use dtn_trace::analysis::pair_intercontact_times;
/// use dtn_trace::trace::{Contact, ContactTrace};
///
/// let trace = ContactTrace::new(
///     2,
///     vec![
///         Contact::new(NodeId(0), NodeId(1), Time(0), Time(10)),
///         Contact::new(NodeId(0), NodeId(1), Time(100), Time(120)),
///         Contact::new(NodeId(0), NodeId(1), Time(500), Time(520)),
///     ],
///     Duration(1000),
/// );
/// let gaps = pair_intercontact_times(&trace, NodeId(0), NodeId(1));
/// assert_eq!(gaps, vec![Duration(90), Duration(380)]);
/// ```
pub fn pair_intercontact_times(trace: &ContactTrace, a: NodeId, b: NodeId) -> Vec<Duration> {
    let mut ends = Vec::new();
    for c in trace.contacts() {
        if (c.a == a && c.b == b) || (c.a == b && c.b == a) {
            ends.push((c.start, c.end));
        }
    }
    ends.windows(2)
        .map(|w| w[1].0.saturating_since(w[0].1))
        .collect()
}

/// Pools the inter-contact times of every pair that met at least twice.
pub fn aggregate_intercontact_times(trace: &ContactTrace) -> Vec<Duration> {
    use std::collections::HashMap;
    let mut last_end: HashMap<(NodeId, NodeId), dtn_core::time::Time> = HashMap::new();
    let mut gaps = Vec::new();
    for c in trace.contacts() {
        let key = (c.a, c.b);
        if let Some(prev_end) = last_end.get(&key) {
            gaps.push(c.start.saturating_since(*prev_end));
        }
        let entry = last_end.entry(key).or_insert(c.end);
        *entry = (*entry).max(c.end);
    }
    gaps
}

/// Empirical complementary CDF of a sample set: `(t, P(X > t))` at each
/// distinct sample value, ascending in `t`.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn ccdf(samples: &[Duration]) -> Vec<(f64, f64)> {
    assert!(!samples.is_empty(), "CCDF of an empty sample set");
    let mut secs: Vec<u64> = samples.iter().map(|d| d.as_secs()).collect();
    secs.sort_unstable();
    let n = secs.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < secs.len() {
        let v = secs[i];
        // count samples <= v
        let le = secs.partition_point(|&x| x <= v);
        let p_gt = 1.0 - le as f64 / n;
        out.push((v as f64, p_gt));
        i = le;
    }
    out
}

/// Maximum-likelihood exponential fit of inter-contact samples, plus a
/// goodness score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Fitted rate `λ = 1 / mean` (per second).
    pub rate: f64,
    /// Sample mean in seconds.
    pub mean_secs: f64,
    /// R² of the linear regression of `ln CCDF(t)` on `t` — 1.0 for a
    /// perfect exponential tail.
    pub log_ccdf_r2: f64,
    /// Number of samples fitted.
    pub samples: usize,
}

/// Fits an exponential distribution to the samples.
///
/// Returns `None` when there are fewer than 3 samples or the mean is
/// zero (all gaps degenerate) — too little information to fit.
///
/// # Example
///
/// ```
/// use dtn_core::time::Duration;
/// use dtn_trace::analysis::fit_exponential;
///
/// // A geometric-ish spread of gaps, roughly exponential.
/// let gaps: Vec<Duration> = (1..200u64).map(|i| Duration(i * 7 % 997 + 1)).collect();
/// let fit = fit_exponential(&gaps).unwrap();
/// assert!(fit.rate > 0.0);
/// assert!(fit.samples == gaps.len());
/// ```
pub fn fit_exponential(samples: &[Duration]) -> Option<ExponentialFit> {
    if samples.len() < 3 {
        return None;
    }
    let mean_secs = samples.iter().map(|d| d.as_secs_f64()).sum::<f64>() / samples.len() as f64;
    if mean_secs <= 0.0 {
        return None;
    }
    let rate = 1.0 / mean_secs;

    // Regression of ln CCDF(t) on t over the non-degenerate points.
    let points: Vec<(f64, f64)> = ccdf(samples)
        .into_iter()
        .filter(|&(_, p)| p > 0.0)
        .map(|(t, p)| (t, p.ln()))
        .collect();
    let r2 = if points.len() >= 2 {
        linear_r2(&points)
    } else {
        1.0
    };
    Some(ExponentialFit {
        rate,
        mean_secs,
        log_ccdf_r2: r2,
        samples: samples.len(),
    })
}

/// R² of the ordinary least-squares line through `points`.
fn linear_r2(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for &(x, y) in points {
        sxy += (x - mean_x) * (y - mean_y);
        sxx += (x - mean_x) * (x - mean_x);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 1.0; // degenerate: a single x or constant y fits exactly
    }
    (sxy * sxy) / (sxx * syy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticTraceBuilder;
    use dtn_core::time::Time;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pair_gaps_measure_end_to_start() {
        use crate::trace::Contact;
        let t = ContactTrace::new(
            3,
            vec![
                Contact::new(NodeId(0), NodeId(1), Time(0), Time(10)),
                Contact::new(NodeId(0), NodeId(2), Time(5), Time(15)), // other pair
                Contact::new(NodeId(1), NodeId(0), Time(50), Time(60)),
            ],
            Duration(100),
        );
        assert_eq!(
            pair_intercontact_times(&t, NodeId(1), NodeId(0)),
            vec![Duration(40)]
        );
        assert!(pair_intercontact_times(&t, NodeId(1), NodeId(2)).is_empty());
    }

    #[test]
    fn aggregate_pools_all_pairs() {
        use crate::trace::Contact;
        let t = ContactTrace::new(
            3,
            vec![
                Contact::new(NodeId(0), NodeId(1), Time(0), Time(10)),
                Contact::new(NodeId(0), NodeId(1), Time(30), Time(40)),
                Contact::new(NodeId(1), NodeId(2), Time(0), Time(5)),
                Contact::new(NodeId(1), NodeId(2), Time(105), Time(110)),
            ],
            Duration(200),
        );
        let mut gaps = aggregate_intercontact_times(&t);
        gaps.sort();
        assert_eq!(gaps, vec![Duration(20), Duration(100)]);
    }

    #[test]
    fn ccdf_is_monotone_decreasing_from_below_one() {
        let samples: Vec<Duration> = vec![10, 20, 20, 30, 50].into_iter().map(Duration).collect();
        let c = ccdf(&samples);
        assert!(c[0].1 < 1.0);
        for w in c.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 <= w[0].1);
        }
        assert_eq!(c.last().unwrap().1, 0.0);
    }

    #[test]
    fn exponential_samples_fit_well() {
        let mut rng = StdRng::seed_from_u64(3);
        let rate = 1e-3;
        let samples: Vec<Duration> = (0..2000)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                Duration((-u.ln() / rate) as u64)
            })
            .collect();
        let fit = fit_exponential(&samples).unwrap();
        assert!((fit.rate - rate).abs() < 0.15 * rate, "rate {}", fit.rate);
        assert!(fit.log_ccdf_r2 > 0.95, "r2 {}", fit.log_ccdf_r2);
    }

    #[test]
    fn uniform_samples_fit_poorly() {
        // A uniform distribution's log-CCDF is strongly curved.
        let samples: Vec<Duration> = (1..=2000u64).map(Duration).collect();
        let fit = fit_exponential(&samples).unwrap();
        assert!(fit.log_ccdf_r2 < 0.9, "r2 {}", fit.log_ccdf_r2);
    }

    #[test]
    fn too_few_samples_is_none() {
        assert!(fit_exponential(&[Duration(5), Duration(6)]).is_none());
        assert!(fit_exponential(&[]).is_none());
        assert!(fit_exponential(&[Duration(0), Duration(0), Duration(0)]).is_none());
    }

    #[test]
    fn synthetic_traces_have_exponential_intercontact_times() {
        // The generator emits Poisson contact processes (§III-B), so the
        // pooled per-pair gaps must look exponential.
        let trace = SyntheticTraceBuilder::new(15)
            .duration(Duration::days(4))
            .target_contacts(8_000)
            .edge_density(1.0)
            .activity_sigma(0.0) // homogeneous: pooled gaps stay exponential
            .heterogeneity(100.0) // near-degenerate Pareto → equal weights
            .seed(5)
            .build();
        let gaps = aggregate_intercontact_times(&trace);
        let fit = fit_exponential(&gaps).expect("plenty of samples");
        assert!(fit.log_ccdf_r2 > 0.9, "r2 {}", fit.log_ccdf_r2);
    }
}
