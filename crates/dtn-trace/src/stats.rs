//! Trace statistics (Table I) and NCL-metric distributions (Fig. 4).

use std::fmt;

use dtn_core::graph::ContactGraph;
use dtn_core::ncl::{all_metrics, CentralityScore};
use dtn_core::time::Time;

use crate::trace::ContactTrace;

/// Summary statistics of a contact trace — the columns of the paper's
/// Table I.
///
/// # Example
///
/// ```
/// use dtn_trace::{stats::TraceStats, synthetic::SyntheticTraceBuilder};
/// use dtn_core::time::Duration;
///
/// let trace = SyntheticTraceBuilder::new(10)
///     .duration(Duration::days(2))
///     .target_contacts(500)
///     .seed(3)
///     .build();
/// let stats = TraceStats::compute(&trace);
/// assert_eq!(stats.nodes, 10);
/// assert!(stats.pairwise_contact_frequency_per_day > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of devices.
    pub nodes: usize,
    /// Number of internal contacts.
    pub contacts: u64,
    /// Observation length in days (fractional).
    pub duration_days: f64,
    /// Mean contacts per unordered node pair per day.
    pub pairwise_contact_frequency_per_day: f64,
    /// Mean contact duration in seconds.
    pub mean_contact_duration_secs: f64,
}

impl TraceStats {
    /// Computes the statistics of a trace.
    pub fn compute(trace: &ContactTrace) -> Self {
        let nodes = trace.node_count();
        let contacts = trace.contact_count() as u64;
        let duration_days = trace.duration().as_secs_f64() / 86_400.0;
        let pairs = (nodes * (nodes - 1) / 2) as f64;
        let freq = if pairs > 0.0 && duration_days > 0.0 {
            contacts as f64 / pairs / duration_days
        } else {
            0.0
        };
        let mean_dur = if contacts > 0 {
            trace
                .contacts()
                .iter()
                .map(|c| c.duration().as_secs_f64())
                .sum::<f64>()
                / contacts as f64
        } else {
            0.0
        };
        TraceStats {
            nodes,
            contacts,
            duration_days,
            pairwise_contact_frequency_per_day: freq,
            mean_contact_duration_secs: mean_dur,
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} contacts over {:.1} days ({:.3}/pair/day, mean contact {:.0}s)",
            self.nodes,
            self.contacts,
            self.duration_days,
            self.pairwise_contact_frequency_per_day,
            self.mean_contact_duration_secs
        )
    }
}

/// The NCL selection metric of every node of a trace, sorted descending —
/// the data behind one subplot of the paper's Fig. 4.
///
/// The contact graph is built from the entire trace ("we calculate the
/// pairwise contact rates based on the cumulative contacts between each
/// pair of nodes during the entire trace", §IV-B) and weights are
/// evaluated at `horizon` seconds.
pub fn metric_distribution(trace: &ContactTrace, horizon: f64) -> Vec<CentralityScore> {
    let end = Time(trace.duration().as_secs());
    let table = trace.rate_table(end);
    let graph = ContactGraph::from_rate_table(&table, end);
    let mut scores = all_metrics(&graph, horizon);
    scores.sort_by(|a, b| {
        b.metric
            .total_cmp(&a.metric)
            .then_with(|| a.node.cmp(&b.node))
    });
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticTraceBuilder;
    use dtn_core::time::Duration;

    fn small_trace() -> ContactTrace {
        SyntheticTraceBuilder::new(12)
            .duration(Duration::days(1))
            .target_contacts(800)
            .seed(21)
            .build()
    }

    #[test]
    fn stats_fields_are_consistent() {
        let t = small_trace();
        let s = TraceStats::compute(&t);
        assert_eq!(s.nodes, 12);
        assert_eq!(s.contacts, t.contact_count() as u64);
        assert!((s.duration_days - 1.0).abs() < 0.05);
        let pairs = 12.0 * 11.0 / 2.0;
        let expect = s.contacts as f64 / pairs / s.duration_days;
        assert!((s.pairwise_contact_frequency_per_day - expect).abs() < 1e-9);
        assert!(s.mean_contact_duration_secs > 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = TraceStats::compute(&small_trace());
        let text = s.to_string();
        assert!(text.contains("12 nodes"));
        assert!(text.contains("contacts"));
    }

    #[test]
    fn metric_distribution_is_sorted_descending() {
        let t = small_trace();
        let dist = metric_distribution(&t, 3600.0);
        assert_eq!(dist.len(), 12);
        for w in dist.windows(2) {
            assert!(w[0].metric >= w[1].metric);
        }
        for s in &dist {
            assert!((0.0..=1.0).contains(&s.metric));
        }
    }
}
