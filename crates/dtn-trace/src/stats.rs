//! Trace statistics (Table I), NCL-metric distributions (Fig. 4), and
//! inter-contact tail diagnostics for the pluggable contact processes.

use std::fmt;

use dtn_core::graph::ContactGraph;
use dtn_core::ncl::{all_metrics, CentralityScore};
use dtn_core::time::{Duration, Time};

use crate::analysis;
use crate::trace::ContactTrace;

/// Summary statistics of a contact trace — the columns of the paper's
/// Table I.
///
/// # Example
///
/// ```
/// use dtn_trace::{stats::TraceStats, synthetic::SyntheticTraceBuilder};
/// use dtn_core::time::Duration;
///
/// let trace = SyntheticTraceBuilder::new(10)
///     .duration(Duration::days(2))
///     .target_contacts(500)
///     .seed(3)
///     .build();
/// let stats = TraceStats::compute(&trace);
/// assert_eq!(stats.nodes, 10);
/// assert!(stats.pairwise_contact_frequency_per_day > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of devices.
    pub nodes: usize,
    /// Number of internal contacts.
    pub contacts: u64,
    /// Observation length in days (fractional).
    pub duration_days: f64,
    /// Mean contacts per unordered node pair per day.
    pub pairwise_contact_frequency_per_day: f64,
    /// Mean contact duration in seconds.
    pub mean_contact_duration_secs: f64,
}

impl TraceStats {
    /// Computes the statistics of a trace.
    pub fn compute(trace: &ContactTrace) -> Self {
        let nodes = trace.node_count();
        let contacts = trace.contact_count() as u64;
        let duration_days = trace.duration().as_secs_f64() / 86_400.0;
        let pairs = (nodes * (nodes - 1) / 2) as f64;
        let freq = if pairs > 0.0 && duration_days > 0.0 {
            contacts as f64 / pairs / duration_days
        } else {
            0.0
        };
        let mean_dur = if contacts > 0 {
            trace
                .contacts()
                .iter()
                .map(|c| c.duration().as_secs_f64())
                .sum::<f64>()
                / contacts as f64
        } else {
            0.0
        };
        TraceStats {
            nodes,
            contacts,
            duration_days,
            pairwise_contact_frequency_per_day: freq,
            mean_contact_duration_secs: mean_dur,
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} contacts over {:.1} days ({:.3}/pair/day, mean contact {:.0}s)",
            self.nodes,
            self.contacts,
            self.duration_days,
            self.pairwise_contact_frequency_per_day,
            self.mean_contact_duration_secs
        )
    }
}

/// The NCL selection metric of every node of a trace, sorted descending —
/// the data behind one subplot of the paper's Fig. 4.
///
/// The contact graph is built from the entire trace ("we calculate the
/// pairwise contact rates based on the cumulative contacts between each
/// pair of nodes during the entire trace", §IV-B) and weights are
/// evaluated at `horizon` seconds.
pub fn metric_distribution(trace: &ContactTrace, horizon: f64) -> Vec<CentralityScore> {
    let end = Time(trace.duration().as_secs());
    let table = trace.rate_table(end);
    let graph = ContactGraph::from_rate_table(&table, end);
    let mut scores = all_metrics(&graph, horizon);
    scores.sort_by(|a, b| {
        b.metric
            .total_cmp(&a.metric)
            .then_with(|| a.node.cmp(&b.node))
    });
    scores
}

/// Empirical CCDF of the trace's pooled inter-contact times, as
/// `(gap_secs, P(gap > t))` pairs ascending in `t`. Empty when no pair
/// met twice.
pub fn intercontact_ccdf(trace: &ContactTrace) -> Vec<(f64, f64)> {
    let gaps = analysis::aggregate_intercontact_times(trace);
    if gaps.is_empty() {
        return Vec::new();
    }
    analysis::ccdf(&gaps)
}

/// Hill estimator of the power-law tail exponent α over the largest
/// `tail_fraction` of the samples: the maximum-likelihood exponent of a
/// Pareto fitted to the exceedances over the tail threshold. For a
/// process whose CCDF decays as `t^-α` the estimate recovers α; for an
/// exponential tail it grows without bound as the threshold rises.
///
/// Returns `None` with fewer than 8 positive samples or a degenerate
/// tail (all exceedances equal).
///
/// # Panics
///
/// Panics unless `tail_fraction` is in `(0, 1)`.
pub fn tail_exponent(samples: &[Duration], tail_fraction: f64) -> Option<f64> {
    assert!(
        tail_fraction > 0.0 && tail_fraction < 1.0,
        "tail fraction must be in (0, 1), got {tail_fraction}"
    );
    let mut secs: Vec<f64> = samples
        .iter()
        .map(|d| d.as_secs_f64())
        .filter(|&s| s > 0.0)
        .collect();
    if secs.len() < 8 {
        return None;
    }
    secs.sort_by(|a, b| b.total_cmp(a)); // descending
    let k = ((secs.len() as f64 * tail_fraction) as usize).clamp(2, secs.len() - 1);
    let threshold = secs[k];
    let log_sum: f64 = secs[..k].iter().map(|&x| (x / threshold).ln()).sum();
    if log_sum <= 0.0 {
        return None; // every exceedance equals the threshold
    }
    Some(k as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ContactProcessKind;
    use crate::synthetic::SyntheticTraceBuilder;

    fn small_trace() -> ContactTrace {
        SyntheticTraceBuilder::new(12)
            .duration(Duration::days(1))
            .target_contacts(800)
            .seed(21)
            .build()
    }

    #[test]
    fn stats_fields_are_consistent() {
        let t = small_trace();
        let s = TraceStats::compute(&t);
        assert_eq!(s.nodes, 12);
        assert_eq!(s.contacts, t.contact_count() as u64);
        assert!((s.duration_days - 1.0).abs() < 0.05);
        let pairs = 12.0 * 11.0 / 2.0;
        let expect = s.contacts as f64 / pairs / s.duration_days;
        assert!((s.pairwise_contact_frequency_per_day - expect).abs() < 1e-9);
        assert!(s.mean_contact_duration_secs > 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = TraceStats::compute(&small_trace());
        let text = s.to_string();
        assert!(text.contains("12 nodes"));
        assert!(text.contains("contacts"));
    }

    #[test]
    fn metric_distribution_is_sorted_descending() {
        let t = small_trace();
        let dist = metric_distribution(&t, 3600.0);
        assert_eq!(dist.len(), 12);
        for w in dist.windows(2) {
            assert!(w[0].metric >= w[1].metric);
        }
        for s in &dist {
            assert!((0.0..=1.0).contains(&s.metric));
        }
    }

    #[test]
    fn intercontact_ccdf_matches_pooled_gaps() {
        let t = small_trace();
        let c = intercontact_ccdf(&t);
        let gaps = crate::analysis::aggregate_intercontact_times(&t);
        assert!(!c.is_empty());
        assert_eq!(c, crate::analysis::ccdf(&gaps));
        // And an empty trace yields an empty CCDF, not a panic.
        let empty = ContactTrace::new(2, Vec::new(), Duration::hours(1));
        assert!(intercontact_ccdf(&empty).is_empty());
    }

    #[test]
    fn hill_estimator_recovers_a_known_pareto_exponent() {
        // Direct Pareto(α = 1.5) samples via inverse CDF on a uniform
        // grid — no RNG, no generator in the loop.
        let samples: Vec<Duration> = (1..20_000u64)
            .map(|i| {
                let u = i as f64 / 20_000.0;
                Duration((100.0 * u.powf(-1.0 / 1.5)) as u64)
            })
            .collect();
        let alpha = tail_exponent(&samples, 0.1).expect("plenty of samples");
        assert!((alpha - 1.5).abs() < 0.15, "hill estimate {alpha}");
    }

    /// A homogeneous-rate builder so the pooled gaps reflect the
    /// process's law and not per-pair rate heterogeneity.
    fn process_trace(kind: ContactProcessKind) -> ContactTrace {
        SyntheticTraceBuilder::new(10)
            .duration(Duration::days(60))
            .target_contacts(9_000)
            .granularity(Duration::secs(60))
            .edge_density(1.0)
            .activity_sigma(0.0)
            .heterogeneity(100.0) // near-degenerate Pareto → equal weights
            .contact_process(kind)
            .seed(8)
            .build()
    }

    #[test]
    fn generator_self_validation_poisson_tail_is_exponential() {
        let gaps = crate::analysis::aggregate_intercontact_times(&process_trace(
            ContactProcessKind::Poisson,
        ));
        let fit = crate::analysis::fit_exponential(&gaps).expect("samples");
        assert!(fit.log_ccdf_r2 > 0.9, "r2 {}", fit.log_ccdf_r2);
    }

    #[test]
    fn generator_self_validation_pareto_recovers_configured_tail() {
        let kind = ContactProcessKind::PARETO;
        let configured = kind.tail_exponent().expect("pareto has a tail");
        let gaps = crate::analysis::aggregate_intercontact_times(&process_trace(kind));
        let alpha = tail_exponent(&gaps, 0.1).expect("samples");
        // Span truncation censors the longest gaps, biasing the
        // estimate up; the configured exponent must still be visible.
        assert!(
            (alpha - configured).abs() < 0.5,
            "hill {alpha} vs configured {configured}"
        );
        // And the exponential story must fit this trace worse than the
        // Poisson reference fits its own.
        let fit = crate::analysis::fit_exponential(&gaps).expect("samples");
        assert!(fit.log_ccdf_r2 < 0.9, "pareto gaps look exponential?");
    }

    #[test]
    fn generator_self_validation_bounded_power_law_recovers_configured_tail() {
        let kind = ContactProcessKind::BOUNDED_POWER_LAW;
        let configured = kind.tail_exponent().expect("has a tail");
        let gaps = crate::analysis::aggregate_intercontact_times(&process_trace(kind));
        // Estimate in the power-law body (wide tail fraction): the
        // upper truncation piles mass at the cap, so a top-decile Hill
        // estimate would read the pile-up, not the exponent.
        let alpha = tail_exponent(&gaps, 0.5).expect("samples");
        assert!(
            (alpha - configured).abs() < 0.4,
            "hill {alpha} vs configured {configured}"
        );
    }

    #[test]
    fn generator_self_validation_lognormal_recovers_configured_sigma() {
        let ContactProcessKind::Lognormal { sigma } = ContactProcessKind::LOGNORMAL else {
            panic!("default changed");
        };
        let gaps = crate::analysis::aggregate_intercontact_times(&process_trace(
            ContactProcessKind::LOGNORMAL,
        ));
        // Gaps are lognormal by construction, so the σ of ln(gap) is
        // directly the configured parameter (contact-duration clipping
        // perturbs only the shortest gaps).
        let logs: Vec<f64> = gaps
            .iter()
            .map(|d| d.as_secs_f64())
            .filter(|&s| s > 0.0)
            .map(|s| s.ln())
            .collect();
        let n = logs.len() as f64;
        let mean = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
        let got = var.sqrt();
        assert!(
            (got - sigma).abs() < 0.25,
            "log-gap sigma {got} vs configured {sigma}"
        );
    }

    #[test]
    fn generator_self_validation_duty_cycle_concentrates_in_on_windows() {
        let ContactProcessKind::DutyCycled { period_secs, duty } = ContactProcessKind::DUTY_CYCLED
        else {
            panic!("default changed");
        };
        // A single pair: every contact start is one session start, so
        // starts folded modulo the period must fit inside one on-window
        // (the pair's phase is unknown — find the smallest circular
        // window covering all residues).
        let trace = SyntheticTraceBuilder::new(2)
            .duration(Duration::days(30))
            .target_contacts(800)
            .granularity(Duration::secs(60))
            .edge_density(1.0)
            .activity_sigma(0.0)
            .heterogeneity(100.0)
            .contact_process(ContactProcessKind::DUTY_CYCLED)
            .seed(4)
            .build();
        let mut residues: Vec<f64> = trace
            .contacts()
            .iter()
            .map(|c| c.start.as_secs() as f64 % period_secs)
            .collect();
        assert!(residues.len() > 200, "degenerate trace");
        residues.sort_by(f64::total_cmp);
        let mut largest_hole = period_secs - (residues.last().unwrap() - residues[0]);
        for w in residues.windows(2) {
            largest_hole = largest_hole.max(w[1] - w[0]);
        }
        let covering = period_secs - largest_hole;
        let on_len = duty * period_secs;
        assert!(
            covering <= on_len + 120.0,
            "session starts cover {covering:.0}s of the cycle, on-window is {on_len:.0}s"
        );
    }
}
