//! The contact trace data model.

use dtn_core::ids::NodeId;
use dtn_core::rate::RateTable;
use dtn_core::time::{Duration, Time};

/// One contact: two nodes are within radio range during `[start, end)`.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::time::Time;
/// use dtn_trace::trace::Contact;
///
/// let c = Contact::new(NodeId(3), NodeId(1), Time(100), Time(220));
/// // endpoints are normalised so that a < b
/// assert_eq!(c.a, NodeId(1));
/// assert_eq!(c.b, NodeId(3));
/// assert_eq!(c.duration().as_secs(), 120);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Contact {
    /// Lower-numbered endpoint.
    pub a: NodeId,
    /// Higher-numbered endpoint.
    pub b: NodeId,
    /// Instant the two nodes come into range.
    pub start: Time,
    /// Instant the contact ends (exclusive).
    pub end: Time,
}

impl Contact {
    /// Creates a contact, normalising the endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if `x == y` or `end <= start`.
    pub fn new(x: NodeId, y: NodeId, start: Time, end: Time) -> Self {
        assert_ne!(x, y, "a node does not contact itself");
        assert!(end > start, "contact must have positive duration");
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        Contact { a, b, start, end }
    }

    /// How long the two nodes stay in range.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// Whether `node` participates in this contact.
    pub fn involves(&self, node: NodeId) -> bool {
        self.a == node || self.b == node
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of the contact.
    pub fn peer_of(&self, node: NodeId) -> NodeId {
        if node == self.a {
            self.b
        } else if node == self.b {
            self.a
        } else {
            panic!("{node} is not an endpoint of {self:?}")
        }
    }
}

/// An immutable contact trace: a population of nodes plus a
/// start-time-ordered sequence of contacts.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::time::{Duration, Time};
/// use dtn_trace::trace::{Contact, ContactTrace};
///
/// let trace = ContactTrace::new(
///     3,
///     vec![
///         Contact::new(NodeId(0), NodeId(1), Time(50), Time(60)),
///         Contact::new(NodeId(1), NodeId(2), Time(10), Time(30)),
///     ],
///     Duration::minutes(5),
/// );
/// // contacts are sorted by start time on construction
/// assert_eq!(trace.contacts()[0].start, Time(10));
/// assert_eq!(trace.contact_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ContactTrace {
    node_count: usize,
    contacts: Vec<Contact>,
    duration: Duration,
}

impl ContactTrace {
    /// Creates a trace from its contacts, sorting them by start time.
    ///
    /// `duration` is the nominal observation length; it is extended to
    /// cover the last contact if necessary.
    ///
    /// # Panics
    ///
    /// Panics if `node_count == 0` or any contact references a node
    /// `>= node_count`.
    pub fn new(node_count: usize, mut contacts: Vec<Contact>, duration: Duration) -> Self {
        assert!(node_count > 0, "a trace needs at least one node");
        let mut max_end = Time::ZERO;
        for c in &contacts {
            assert!(
                c.b.index() < node_count,
                "contact {c:?} references a node outside the population of {node_count}"
            );
            max_end = max_end.max(c.end);
        }
        contacts.sort_by_key(|c| (c.start, c.a, c.b, c.end));
        let duration = Duration(duration.as_secs().max(max_end.as_secs()));
        ContactTrace {
            node_count,
            contacts,
            duration,
        }
    }

    /// Number of nodes in the population.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of contacts.
    pub fn contact_count(&self) -> usize {
        self.contacts.len()
    }

    /// The observation length of the trace.
    pub fn duration(&self) -> Duration {
        self.duration
    }

    /// The contacts, ordered by start time.
    pub fn contacts(&self) -> &[Contact] {
        &self.contacts
    }

    /// The midpoint of the trace — the paper uses the first half as the
    /// warm-up period and generates all data and queries in the second
    /// half (§VI-A).
    pub fn midpoint(&self) -> Time {
        Time(self.duration.as_secs() / 2)
    }

    /// Builds a [`RateTable`] from all contacts that *start* before
    /// `until`, with rates measured over `[0, until]`.
    ///
    /// This is the administrator's warm-up computation in §IV-A.
    pub fn rate_table(&self, until: Time) -> RateTable {
        let mut table = RateTable::new(self.node_count, Time::ZERO);
        for c in self.contacts.iter().take_while(|c| c.start < until) {
            table.record(c.a, c.b, c.start);
        }
        table
    }

    /// Contacts whose start time lies in `[from, to)`.
    pub fn contacts_between(&self, from: Time, to: Time) -> &[Contact] {
        let lo = self.contacts.partition_point(|c| c.start < from);
        let hi = self.contacts.partition_point(|c| c.start < to);
        &self.contacts[lo..hi]
    }

    /// Extracts the sub-trace of contacts starting in `[from, to)`,
    /// re-based so that `from` becomes time zero.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to`.
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_core::ids::NodeId;
    /// use dtn_core::time::{Duration, Time};
    /// use dtn_trace::trace::{Contact, ContactTrace};
    ///
    /// let trace = ContactTrace::new(
    ///     2,
    ///     vec![Contact::new(NodeId(0), NodeId(1), Time(500), Time(520))],
    ///     Duration(1000),
    /// );
    /// let slice = trace.slice(Time(400), Time(600));
    /// assert_eq!(slice.contacts()[0].start, Time(100));
    /// assert_eq!(slice.duration(), Duration(200));
    /// ```
    pub fn slice(&self, from: Time, to: Time) -> ContactTrace {
        assert!(from < to, "slice window must be non-empty");
        let contacts = self
            .contacts_between(from, to)
            .iter()
            .map(|c| {
                Contact::new(
                    c.a,
                    c.b,
                    Time(c.start.as_secs() - from.as_secs()),
                    Time(c.end.as_secs() - from.as_secs()),
                )
            })
            .collect();
        ContactTrace::new(self.node_count, contacts, to - from)
    }

    /// Restricts the trace to the given nodes, renumbering them densely
    /// in the order supplied. Contacts involving excluded nodes are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is empty, contains duplicates, or references a
    /// node outside the population.
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_core::ids::NodeId;
    /// use dtn_core::time::{Duration, Time};
    /// use dtn_trace::trace::{Contact, ContactTrace};
    ///
    /// let trace = ContactTrace::new(
    ///     4,
    ///     vec![
    ///         Contact::new(NodeId(0), NodeId(3), Time(10), Time(20)),
    ///         Contact::new(NodeId(1), NodeId(2), Time(30), Time(40)),
    ///     ],
    ///     Duration(100),
    /// );
    /// let sub = trace.restrict_to(&[NodeId(3), NodeId(0)]);
    /// assert_eq!(sub.node_count(), 2);
    /// assert_eq!(sub.contact_count(), 1);
    /// // node 3 became node 0, node 0 became node 1
    /// assert_eq!(sub.contacts()[0].a, NodeId(0));
    /// ```
    pub fn restrict_to(&self, keep: &[NodeId]) -> ContactTrace {
        assert!(!keep.is_empty(), "must keep at least one node");
        let mut renumber = vec![None; self.node_count];
        for (new, old) in keep.iter().enumerate() {
            assert!(
                old.index() < self.node_count,
                "{old} outside population of {}",
                self.node_count
            );
            assert!(
                renumber[old.index()].is_none(),
                "duplicate node {old} in keep list"
            );
            renumber[old.index()] = Some(NodeId(new as u32));
        }
        let contacts = self
            .contacts
            .iter()
            .filter_map(|c| {
                let a = renumber[c.a.index()]?;
                let b = renumber[c.b.index()]?;
                Some(Contact::new(a, b, c.start, c.end))
            })
            .collect();
        ContactTrace::new(keep.len(), contacts, self.duration)
    }

    /// Removes every contact of `node` that starts at or after `from` —
    /// the node fails / leaves the network at that instant. Earlier
    /// contacts (including ones still in progress) are kept.
    ///
    /// Useful for robustness studies: what happens to NCL caching when
    /// a central node dies mid-run?
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    ///
    /// # Example
    ///
    /// ```
    /// use dtn_core::ids::NodeId;
    /// use dtn_core::time::{Duration, Time};
    /// use dtn_trace::trace::{Contact, ContactTrace};
    ///
    /// let trace = ContactTrace::new(
    ///     3,
    ///     vec![
    ///         Contact::new(NodeId(0), NodeId(1), Time(10), Time(20)),
    ///         Contact::new(NodeId(0), NodeId(1), Time(100), Time(120)),
    ///         Contact::new(NodeId(1), NodeId(2), Time(150), Time(160)),
    ///     ],
    ///     Duration(500),
    /// );
    /// let failed = trace.fail_node_after(NodeId(0), Time(50));
    /// assert_eq!(failed.contact_count(), 2);
    /// ```
    pub fn fail_node_after(&self, node: NodeId, from: Time) -> ContactTrace {
        assert!(
            node.index() < self.node_count,
            "{node} outside population of {}",
            self.node_count
        );
        let contacts = self
            .contacts
            .iter()
            .filter(|c| !(c.involves(node) && c.start >= from))
            .copied()
            .collect();
        ContactTrace::new(self.node_count, contacts, self.duration)
    }

    /// Per-node contact counts (degree of activity, not graph degree).
    pub fn node_contact_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.node_count];
        for c in &self.contacts {
            counts[c.a.index()] += 1;
            counts[c.b.index()] += 1;
        }
        counts
    }

    /// Number of distinct peers each node ever meets (contact-graph
    /// degree).
    pub fn node_degrees(&self) -> Vec<usize> {
        let mut peers: Vec<std::collections::HashSet<NodeId>> =
            vec![std::collections::HashSet::new(); self.node_count];
        for c in &self.contacts {
            peers[c.a.index()].insert(c.b);
            peers[c.b.index()].insert(c.a);
        }
        peers.into_iter().map(|s| s.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ContactTrace {
        ContactTrace::new(
            4,
            vec![
                Contact::new(NodeId(0), NodeId(1), Time(100), Time(160)),
                Contact::new(NodeId(2), NodeId(3), Time(40), Time(70)),
                Contact::new(NodeId(0), NodeId(1), Time(300), Time(350)),
                Contact::new(NodeId(1), NodeId(2), Time(200), Time(230)),
            ],
            Duration(400),
        )
    }

    #[test]
    fn contacts_sorted_on_construction() {
        let t = sample_trace();
        let starts: Vec<u64> = t.contacts().iter().map(|c| c.start.as_secs()).collect();
        assert_eq!(starts, vec![40, 100, 200, 300]);
    }

    #[test]
    fn duration_extends_to_cover_contacts() {
        let t = ContactTrace::new(
            2,
            vec![Contact::new(NodeId(0), NodeId(1), Time(10), Time(500))],
            Duration(100),
        );
        assert_eq!(t.duration(), Duration(500));
    }

    #[test]
    fn midpoint_is_half_duration() {
        assert_eq!(sample_trace().midpoint(), Time(200));
    }

    #[test]
    fn rate_table_counts_contacts_before_cutoff() {
        let t = sample_trace();
        let table = t.rate_table(Time(200));
        assert_eq!(table.contact_count(NodeId(0), NodeId(1)), 1);
        assert_eq!(table.contact_count(NodeId(2), NodeId(3)), 1);
        assert_eq!(table.contact_count(NodeId(1), NodeId(2)), 0);
        // rate measured over [0, 200]
        assert_eq!(table.rate(NodeId(0), NodeId(1), Time(200)), Some(0.005));
    }

    #[test]
    fn contacts_between_slices_by_start() {
        let t = sample_trace();
        let mid = t.contacts_between(Time(100), Time(300));
        assert_eq!(mid.len(), 2);
        assert_eq!(mid[0].start, Time(100));
        assert_eq!(mid[1].start, Time(200));
        assert!(t.contacts_between(Time(500), Time(600)).is_empty());
    }

    #[test]
    fn contact_normalises_endpoints() {
        let c = Contact::new(NodeId(5), NodeId(2), Time(0), Time(10));
        assert_eq!((c.a, c.b), (NodeId(2), NodeId(5)));
        assert!(c.involves(NodeId(5)));
        assert!(!c.involves(NodeId(3)));
        assert_eq!(c.peer_of(NodeId(2)), NodeId(5));
        assert_eq!(c.peer_of(NodeId(5)), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_duration_contact_panics() {
        let _ = Contact::new(NodeId(0), NodeId(1), Time(10), Time(10));
    }

    #[test]
    #[should_panic(expected = "outside the population")]
    fn out_of_population_contact_panics() {
        let _ = ContactTrace::new(
            2,
            vec![Contact::new(NodeId(0), NodeId(5), Time(0), Time(10))],
            Duration(100),
        );
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn peer_of_non_member_panics() {
        let c = Contact::new(NodeId(0), NodeId(1), Time(0), Time(10));
        let _ = c.peer_of(NodeId(9));
    }

    #[test]
    fn slice_rebases_times() {
        let t = sample_trace();
        let s = t.slice(Time(100), Time(250));
        assert_eq!(s.contact_count(), 2);
        assert_eq!(s.contacts()[0].start, Time(0));
        assert_eq!(s.contacts()[1].start, Time(100));
        assert_eq!(s.duration(), Duration(150));
        assert_eq!(s.node_count(), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_slice_panics() {
        let _ = sample_trace().slice(Time(100), Time(100));
    }

    #[test]
    fn restrict_to_renumbers_and_filters() {
        let t = sample_trace();
        // Keep only nodes 0 and 1 (their two contacts survive).
        let sub = t.restrict_to(&[NodeId(1), NodeId(0)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.contact_count(), 2);
        for c in sub.contacts() {
            assert!(c.b.index() < 2);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn restrict_rejects_duplicates() {
        let _ = sample_trace().restrict_to(&[NodeId(0), NodeId(0)]);
    }

    #[test]
    fn contact_counts_and_degrees() {
        let t = sample_trace();
        let counts = t.node_contact_counts();
        assert_eq!(counts, vec![2, 3, 2, 1]);
        let degrees = t.node_degrees();
        assert_eq!(degrees, vec![1, 2, 2, 1]);
    }
}
