//! Contact traces for Disruption Tolerant Networks.
//!
//! The paper evaluates on four real traces (Infocom05, Infocom06,
//! MIT Reality, UCSD — Table I). Those traces are not redistributable, so
//! this crate provides a **synthetic trace generator** whose contact
//! processes follow the paper's own network model (§III-B: pairwise
//! Poisson contacts) with per-node *sociability* weights drawn from a
//! truncated power law plus optional community structure. The generator
//! ships presets calibrated to Table I's aggregate statistics (node
//! count, duration, granularity, total contact count), reproducing both
//! knobs the caching scheme actually depends on: Poisson pairwise
//! contacts and a highly skewed contact-rate distribution (Fig. 4).
//!
//! # Example
//!
//! ```
//! use dtn_trace::{TracePreset, synthetic::SyntheticTraceBuilder};
//!
//! let trace = SyntheticTraceBuilder::from_preset(TracePreset::Infocom05)
//!     .scale(0.1) // 10% of the real duration/contacts: fast tests
//!     .seed(1)
//!     .build();
//! assert_eq!(trace.node_count(), 41);
//! assert!(trace.contact_count() > 500);
//! ```

pub mod analysis;
pub mod import;
pub mod io;
pub mod process;
pub mod stats;
pub mod synthetic;
pub mod trace;

pub use process::{ContactProcess, ContactProcessKind};
pub use stats::TraceStats;
pub use synthetic::SyntheticTraceBuilder;
pub use trace::{Contact, ContactTrace};

use dtn_core::time::Duration;

/// The four traces of the paper's Table I, as calibration presets for the
/// synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePreset {
    /// Infocom 2005 conference, Bluetooth, 41 devices, 3 days.
    Infocom05,
    /// Infocom 2006 conference, Bluetooth, 78 devices, 4 days.
    Infocom06,
    /// MIT Reality Mining, Bluetooth, 97 devices, 246 days.
    MitReality,
    /// UCSD campus, WiFi, 275 devices, 77 days.
    Ucsd,
}

impl TracePreset {
    /// All four presets, in Table I order.
    pub const ALL: [TracePreset; 4] = [
        TracePreset::Infocom05,
        TracePreset::Infocom06,
        TracePreset::MitReality,
        TracePreset::Ucsd,
    ];

    /// Human-readable trace name as printed in Table I.
    pub fn name(self) -> &'static str {
        match self {
            TracePreset::Infocom05 => "Infocom05",
            TracePreset::Infocom06 => "Infocom06",
            TracePreset::MitReality => "MIT Reality",
            TracePreset::Ucsd => "UCSD",
        }
    }

    /// Radio type of the original trace ("Bluetooth" / "WiFi").
    pub fn network_type(self) -> &'static str {
        match self {
            TracePreset::Ucsd => "WiFi",
            _ => "Bluetooth",
        }
    }

    /// Number of devices (Table I).
    pub fn node_count(self) -> usize {
        match self {
            TracePreset::Infocom05 => 41,
            TracePreset::Infocom06 => 78,
            TracePreset::MitReality => 97,
            TracePreset::Ucsd => 275,
        }
    }

    /// Trace duration (Table I).
    pub fn duration(self) -> Duration {
        match self {
            TracePreset::Infocom05 => Duration::days(3),
            TracePreset::Infocom06 => Duration::days(4),
            TracePreset::MitReality => Duration::days(246),
            TracePreset::Ucsd => Duration::days(77),
        }
    }

    /// Detection granularity, also used as the mean contact duration
    /// (Table I).
    pub fn granularity(self) -> Duration {
        match self {
            TracePreset::Infocom05 | TracePreset::Infocom06 => Duration::secs(120),
            TracePreset::MitReality => Duration::secs(300),
            TracePreset::Ucsd => Duration::secs(20),
        }
    }

    /// Number of internal contacts to calibrate the generator to
    /// (Table I).
    pub fn total_contacts(self) -> u64 {
        match self {
            TracePreset::Infocom05 => 22_459,
            TracePreset::Infocom06 => 182_951,
            TracePreset::MitReality => 114_046,
            TracePreset::Ucsd => 123_225,
        }
    }

    /// The time horizon `T` the paper uses for this trace when computing
    /// NCL selection metrics (§IV-B: 1 h for the Infocom traces, 1 week
    /// for MIT Reality, 3 days for UCSD).
    pub fn ncl_horizon(self) -> Duration {
        match self {
            TracePreset::Infocom05 | TracePreset::Infocom06 => Duration::hours(1),
            TracePreset::MitReality => Duration::weeks(1),
            TracePreset::Ucsd => Duration::days(3),
        }
    }

    /// The number of NCLs the paper's evaluation uses on this trace
    /// (K = 8 for MIT Reality in §VI-B, K = 5 found best for Infocom06 in
    /// §VI-D; the Infocom05/UCSD values follow the Fig. 4 knees).
    pub fn default_ncl_count(self) -> usize {
        match self {
            TracePreset::Infocom05 => 4,
            TracePreset::Infocom06 => 5,
            TracePreset::MitReality => 8,
            TracePreset::Ucsd => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one() {
        assert_eq!(TracePreset::Infocom05.node_count(), 41);
        assert_eq!(TracePreset::Infocom06.node_count(), 78);
        assert_eq!(TracePreset::MitReality.node_count(), 97);
        assert_eq!(TracePreset::Ucsd.node_count(), 275);
        assert_eq!(TracePreset::MitReality.duration(), Duration::days(246));
        assert_eq!(TracePreset::Ucsd.granularity(), Duration::secs(20));
        assert_eq!(TracePreset::Infocom06.total_contacts(), 182_951);
    }

    #[test]
    fn horizons_match_section_four() {
        assert_eq!(TracePreset::Infocom05.ncl_horizon(), Duration::hours(1));
        assert_eq!(TracePreset::MitReality.ncl_horizon(), Duration::weeks(1));
        assert_eq!(TracePreset::Ucsd.ncl_horizon(), Duration::days(3));
    }

    #[test]
    fn names_and_types() {
        assert_eq!(TracePreset::MitReality.name(), "MIT Reality");
        assert_eq!(TracePreset::Ucsd.network_type(), "WiFi");
        assert_eq!(TracePreset::Infocom05.network_type(), "Bluetooth");
        assert_eq!(TracePreset::ALL.len(), 4);
    }
}
