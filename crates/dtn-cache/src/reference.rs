//! Reference implementation of the intentional NCL caching scheme.
//!
//! [`ReferenceIntentionalScheme`] is the original, straightforward
//! bookkeeping: full `retain`-sweeps over every pending pull, broadcast
//! and response on each contact, per-contact scans of the whole copy
//! table, and freshly allocated pools for every knapsack exchange. It is
//! kept verbatim (modulo a deterministic `BTreeMap` for the copy table —
//! the original `HashMap` iteration order was process-nondeterministic)
//! as the semantic baseline:
//!
//! - `tests/scheme_equivalence.rs` asserts the optimized
//!   [`IntentionalScheme`](crate::intentional::IntentionalScheme)
//!   produces bit-identical [`Metrics`](dtn_sim::metrics::Metrics)
//!   against this implementation across randomized traces, seeds and
//!   configurations;
//! - `crates/bench/benches/sim_engine.rs` measures the end-to-end
//!   speedup of the indexed-queue engine against this baseline
//!   (`BENCH_sim_engine.json`).
//!
//! Keep this file boring. Performance work belongs in
//! [`intentional`](crate::intentional); behavior changes must land in
//! both, or the differential suite will fail.

use std::collections::{BTreeMap, HashSet};

use rand::Rng;

use dtn_core::ids::{DataId, NodeId, QueryId};
use dtn_core::knapsack::{CacheItem, KnapsackSolver};
use dtn_core::sigmoid::ResponseFunction;
use dtn_core::time::{Duration, Time};
use dtn_sim::buffer::Buffer;
use dtn_sim::engine::{CacheStats, Scheme, SimCtx};
use dtn_sim::message::{DataItem, Query};
use dtn_sim::oracle::PathOracle;
use dtn_trace::trace::Contact;

use crate::common::{better_relay, DataRegistry};
use crate::intentional::{IntentionalConfig, ProtocolEvent, ResponseStrategy};
use crate::replacement::{make_room, NodeCacheMeta, ReplacementKind};
use crate::routing::{ForwardingStrategy, RoutedMessage};
use crate::{CachingScheme, NetworkSetup};

/// Where one NCL's copy of a data item currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyState {
    /// Still being pushed; the node is a *temporal* caching location.
    Carried(NodeId),
    /// Settled at this caching node.
    Settled(NodeId),
    /// Evicted or undeliverable.
    Dropped,
}

impl CopyState {
    fn holder(self) -> Option<NodeId> {
        match self {
            CopyState::Carried(n) | CopyState::Settled(n) => Some(n),
            CopyState::Dropped => None,
        }
    }

    /// A copy that just moved to `node`: settled if `node` is the target
    /// central node, still in transit otherwise.
    fn transit(node: NodeId, central: NodeId) -> CopyState {
        if node == central {
            CopyState::Settled(node)
        } else {
            CopyState::Carried(node)
        }
    }
}

/// A query copy traveling toward one central node.
#[derive(Debug, Clone, Copy)]
struct PullCopy {
    query: Query,
    ncl: usize,
    carrier: NodeId,
}

/// A query being broadcast among the caching nodes of one NCL.
#[derive(Debug, Clone)]
struct BroadcastCopy {
    query: Query,
    ncl: usize,
    holders: HashSet<NodeId>,
}

/// A cached data copy traveling back to a requester.
#[derive(Debug, Clone)]
struct ResponseInFlight {
    query: Query,
    msg: RoutedMessage,
}

/// The retain-sweep reference implementation of the intentional NCL
/// caching scheme (§V). See the module docs for why it exists.
#[derive(Debug)]
pub struct ReferenceIntentionalScheme {
    cfg: IntentionalConfig,
    centrals: Vec<NodeId>,
    oracle: Option<PathOracle>,
    buffers: Vec<Buffer>,
    meta: Vec<NodeCacheMeta>,
    registry: DataRegistry,
    /// copies[data][k] — the k-th NCL's copy of `data`.
    copies: BTreeMap<DataId, Vec<CopyState>>,
    pulls: Vec<PullCopy>,
    broadcasts: Vec<BroadcastCopy>,
    responses: Vec<ResponseInFlight>,
    /// (query, node) pairs that already made their response decision.
    responded: HashSet<(QueryId, NodeId)>,
    solver: KnapsackSolver,
    /// Queries that arrived at each central node (NCL load, by index).
    ncl_query_load: Vec<u64>,
    /// Responses spawned on behalf of each NCL (central or member).
    ncl_response_load: Vec<u64>,
    /// Opt-in protocol-milestone log, recording the same
    /// [`ProtocolEvent`] stream the optimized scheme emits so the
    /// differential suite can assert event-for-event equality. Unlike
    /// the optimized scheme, the reference never re-emits through the
    /// engine probe — it is the boring baseline, not an observability
    /// surface.
    event_log: Option<Vec<ProtocolEvent>>,
}

impl ReferenceIntentionalScheme {
    /// Creates an unconfigured scheme.
    pub fn new(cfg: IntentionalConfig) -> Self {
        let solver = KnapsackSolver::new(cfg.knapsack_quantum);
        ReferenceIntentionalScheme {
            cfg,
            centrals: Vec::new(),
            oracle: None,
            buffers: Vec::new(),
            meta: Vec::new(),
            registry: DataRegistry::default(),
            copies: BTreeMap::new(),
            pulls: Vec::new(),
            broadcasts: Vec::new(),
            responses: Vec::new(),
            responded: HashSet::new(),
            solver,
            ncl_query_load: Vec::new(),
            ncl_response_load: Vec::new(),
            event_log: None,
        }
    }

    /// Responses contributed by each NCL (its central node or caching
    /// members), by NCL index.
    pub fn ncl_response_load(&self) -> &[u64] {
        &self.ncl_response_load
    }

    /// Turns on protocol-event recording (off by default; events cost
    /// memory on long runs). Returns `self` for builder-style use.
    pub fn enable_event_log(mut self) -> Self {
        self.event_log = Some(Vec::new());
        self
    }

    /// Recorded protocol milestones (empty slice when logging is off).
    pub fn events(&self) -> &[ProtocolEvent] {
        self.event_log.as_deref().unwrap_or(&[])
    }

    fn log(&mut self, event: ProtocolEvent) {
        if let Some(log) = &mut self.event_log {
            log.push(event);
        }
    }

    fn configured(&self) -> bool {
        self.oracle.is_some()
    }

    /// Whether `node` currently holds a copy (carried or settled) on
    /// behalf of NCL `k`.
    fn is_member(&self, node: NodeId, ncl: usize) -> bool {
        self.copies
            .values()
            .any(|states| states.get(ncl).and_then(|s| s.holder()) == Some(node))
    }

    /// Drops expired data everywhere and dead in-flight messages.
    fn prune(&mut self, ctx: &SimCtx<'_>) {
        let now = ctx.now();
        for (node, buf) in self.buffers.iter_mut().enumerate() {
            let dead: Vec<DataId> = buf
                .iter()
                .filter(|d| !d.is_alive(now))
                .map(|d| d.id)
                .collect();
            for id in dead {
                buf.remove(id);
                self.meta[node].on_remove(id);
            }
        }
        // A holder whose buffer lost the item (expiry, eviction) no
        // longer holds the copy.
        let buffers = &self.buffers;
        for (&data, states) in self.copies.iter_mut() {
            for s in states.iter_mut() {
                if let Some(holder) = s.holder() {
                    if !buffers[holder.index()].contains(data) {
                        *s = CopyState::Dropped;
                    }
                }
            }
        }
        self.pulls.retain(|p| ctx.query_is_open(p.query.id));
        self.broadcasts.retain(|b| ctx.query_is_open(b.query.id));
        self.responses.retain(|r| ctx.query_is_open(r.query.id));
    }

    /// Inserts a physical copy of `item` at `node`, evicting per the
    /// traditional policies if configured. Returns whether it fits.
    fn insert_physical(&mut self, ctx: &mut SimCtx<'_>, node: NodeId, item: DataItem) -> bool {
        let buf = &mut self.buffers[node.index()];
        if buf.contains(item.id) {
            return true;
        }
        if !buf.fits(item.size) {
            let evicted = make_room(
                self.cfg.replacement,
                buf,
                &mut self.meta[node.index()],
                item.size,
            );
            if !evicted.is_empty() {
                ctx.note_replacements(evicted.len() as u64);
                for id in evicted {
                    if let Some(states) = self.copies.get_mut(&id) {
                        for s in states.iter_mut() {
                            if s.holder() == Some(node) {
                                *s = CopyState::Dropped;
                            }
                        }
                    }
                }
            }
        }
        let buf = &mut self.buffers[node.index()];
        if buf.insert(item).is_ok() {
            let pop = self.registry.popularity(item.id, ctx.now());
            self.meta[node.index()].on_insert(item.id, ctx.now(), pop, item.size);
            true
        } else {
            false
        }
    }

    /// Removes `node`'s physical copy of `data` if no NCL copy still
    /// points at it.
    fn drop_physical_if_unreferenced(&mut self, node: NodeId, data: DataId) {
        let referenced = self
            .copies
            .get(&data)
            .is_some_and(|states| states.iter().any(|s| s.holder() == Some(node)));
        if !referenced {
            self.buffers[node.index()].remove(data);
            self.meta[node.index()].on_remove(data);
        }
    }

    /// §V-A: advance the push copies carried by either contact endpoint.
    fn advance_pushes(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let data_ids: Vec<DataId> = self.copies.keys().copied().collect();
        for data in data_ids {
            let Some(&item) = self.registry.get(data) else {
                continue;
            };
            if !item.is_alive(now) {
                continue;
            }
            for k in 0..self.centrals.len() {
                let state = self.copies[&data][k];
                let CopyState::Carried(holder) = state else {
                    continue;
                };
                let (from, to) = if holder == a {
                    (a, b)
                } else if holder == b {
                    (b, a)
                } else {
                    continue;
                };
                let central = self.centrals[k];
                let oracle = self.oracle.as_mut().expect("configured");
                if !better_relay(oracle, ctx.rate_table(), now, from, to, central) {
                    continue;
                }
                // The next selected relay: forward if it can hold the
                // item, otherwise settle at the current relay (§V-A).
                let already_there = self.buffers[to.index()].contains(data);
                if already_there {
                    self.set_copy(data, k, CopyState::transit(to, central));
                    self.drop_physical_if_unreferenced(from, data);
                    continue;
                }
                if !self.buffers[to.index()].fits(item.size)
                    && self.cfg.replacement == ReplacementKind::UtilityKnapsack
                {
                    // Next relay's buffer is full: cache here.
                    self.set_copy(data, k, CopyState::Settled(from));
                    self.log(ProtocolEvent::PushSettled {
                        at: now,
                        data,
                        node: from,
                        ncl: k,
                    });
                    continue;
                }
                if !ctx.try_transmit(item.size) {
                    continue; // contact too short; retry later
                }
                if self.insert_physical(ctx, to, item) {
                    self.set_copy(data, k, CopyState::transit(to, central));
                    if to == central {
                        self.log(ProtocolEvent::PushSettled {
                            at: now,
                            data,
                            node: to,
                            ncl: k,
                        });
                    }
                    self.drop_physical_if_unreferenced(from, data);
                } else {
                    // Traditional policy could not make room either.
                    self.set_copy(data, k, CopyState::Settled(from));
                    self.log(ProtocolEvent::PushSettled {
                        at: now,
                        data,
                        node: from,
                        ncl: k,
                    });
                }
            }
        }
    }

    fn set_copy(&mut self, data: DataId, k: usize, state: CopyState) {
        if let Some(states) = self.copies.get_mut(&data) {
            states[k] = state;
        }
    }

    /// §V-B: advance query copies toward their central nodes.
    fn advance_pulls(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let mut arrived = Vec::new();
        let query_size = ctx.query_size();
        for (i, pull) in self.pulls.iter_mut().enumerate() {
            if !ctx.query_is_open(pull.query.id) {
                continue;
            }
            let (from, to) = if pull.carrier == a {
                (a, b)
            } else if pull.carrier == b {
                (b, a)
            } else {
                continue;
            };
            let central = self.centrals[pull.ncl];
            let oracle = self.oracle.as_mut().expect("configured");
            if !better_relay(oracle, ctx.rate_table(), now, from, to, central) {
                continue;
            }
            if !ctx.try_transmit(query_size) {
                continue;
            }
            pull.carrier = to;
            if to == central {
                arrived.push(i);
            }
        }
        // Handle arrivals (immediate reply or NCL broadcast), then drop
        // the delivered pull copies.
        for &i in &arrived {
            let pull = self.pulls[i];
            self.handle_query_at_central(ctx, pull.query, pull.ncl);
        }
        let mut index = 0;
        self.pulls.retain(|_| {
            let keep = !arrived.contains(&index);
            index += 1;
            keep
        });
    }

    /// A query reached central node `centrals[ncl]` (§V-B, Fig. 6).
    fn handle_query_at_central(&mut self, ctx: &mut SimCtx<'_>, query: Query, ncl: usize) {
        if let Some(slot) = self.ncl_query_load.get_mut(ncl) {
            *slot += 1;
        }
        self.log(ProtocolEvent::QueryAtCentral {
            at: ctx.now(),
            query: query.id,
            ncl,
        });
        let central = self.centrals[ncl];
        if self.buffers[central.index()].contains(query.data) {
            // "a central node immediately replies to the requester with
            // the data if it is cached locally"
            let pop = self.registry.popularity(query.data, ctx.now());
            self.meta[central.index()].on_use(
                query.data,
                ctx.now(),
                pop,
                self.registry.get(query.data).map_or(1, |d| d.size),
            );
            if let Some(slot) = self.ncl_response_load.get_mut(ncl) {
                *slot += 1;
            }
            self.spawn_response(ctx, query, central);
        } else {
            // Otherwise broadcast among the NCL's caching nodes.
            let mut holders = HashSet::new();
            holders.insert(central);
            self.broadcasts.push(BroadcastCopy {
                query,
                ncl,
                holders,
            });
        }
    }

    /// §V-B: spread broadcast queries among NCL members; §V-C: members
    /// caching the data decide probabilistically whether to respond.
    fn advance_broadcasts(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let query_size = ctx.query_size();
        let mut decisions: Vec<(Query, NodeId, usize)> = Vec::new();
        // Collect membership checks first to appease the borrow checker.
        let mut spreads: Vec<(usize, NodeId)> = Vec::new();
        for (i, bc) in self.broadcasts.iter().enumerate() {
            if !ctx.query_is_open(bc.query.id) {
                continue;
            }
            for (from, to) in [(a, b), (b, a)] {
                if bc.holders.contains(&from)
                    && !bc.holders.contains(&to)
                    && (self.is_member(to, bc.ncl) || to == self.centrals[bc.ncl])
                {
                    spreads.push((i, to));
                }
            }
        }
        for (i, to) in spreads {
            if !ctx.try_transmit(query_size) {
                continue;
            }
            let bc = &mut self.broadcasts[i];
            bc.holders.insert(to);
            let (query, data) = (bc.query, bc.query.data);
            if self.buffers[to.index()].contains(data) {
                decisions.push((query, to, bc.ncl));
            }
            self.log(ProtocolEvent::BroadcastSpread {
                at: ctx.now(),
                query: query.id,
                node: to,
            });
        }
        for (query, node, ncl) in decisions {
            let before = self.responses.len();
            self.maybe_respond(ctx, query, node);
            if self.responses.len() > before {
                if let Some(slot) = self.ncl_response_load.get_mut(ncl) {
                    *slot += 1;
                }
            }
        }
    }

    /// §V-C: one response decision per (query, caching node).
    fn maybe_respond(&mut self, ctx: &mut SimCtx<'_>, query: Query, node: NodeId) {
        if !self.responded.insert((query.id, node)) {
            return; // already decided
        }
        let remaining = query.remaining(ctx.now());
        if remaining == Duration::ZERO {
            return;
        }
        let probability = match self.cfg.response {
            ResponseStrategy::Sigmoid { p_min, p_max } => {
                match ResponseFunction::new(p_min, p_max, query.constraint()) {
                    Ok(f) => f.probability(remaining),
                    Err(_) => p_max.clamp(0.0, 1.0),
                }
            }
            ResponseStrategy::PathAware => {
                let oracle = self.oracle.as_mut().expect("configured");
                let table = oracle.table(ctx.rate_table(), ctx.now(), node);
                table
                    .path_to(query.requester)
                    .map_or(0.0, |p| p.weight(remaining.as_secs_f64()))
            }
        };
        let pop = self.registry.popularity(query.data, ctx.now());
        let size = self.registry.get(query.data).map_or(1, |d| d.size);
        if ctx.rng().gen_bool(probability.clamp(0.0, 1.0)) {
            self.meta[node.index()].on_use(query.data, ctx.now(), pop, size);
            self.spawn_response(ctx, query, node);
        }
    }

    fn spawn_response(&mut self, ctx: &mut SimCtx<'_>, query: Query, from: NodeId) {
        self.log(ProtocolEvent::ResponseSpawned {
            at: ctx.now(),
            query: query.id,
            node: from,
        });
        if from == query.requester {
            ctx.mark_delivered(query.id);
            self.log(ProtocolEvent::Delivered {
                at: ctx.now(),
                query: query.id,
            });
            return;
        }
        let Some(&item) = self.registry.get(query.data) else {
            return;
        };
        let mut msg = RoutedMessage::new(query.requester, item.size, from);
        if let ForwardingStrategy::SprayAndWait { initial_copies } = self.cfg.response_routing {
            msg = msg.with_copy_budget(initial_copies);
        }
        self.responses.push(ResponseInFlight { query, msg });
    }

    /// Return cached data copies to their requesters using the
    /// configured forwarding strategy (§V-B).
    fn advance_responses(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let open: Vec<bool> = self
            .responses
            .iter()
            .map(|r| ctx.query_is_open(r.query.id))
            .collect();
        let strategy = self.cfg.response_routing;
        let oracle = self.oracle.as_mut().expect("configured");
        let mut delivered = Vec::new();
        {
            let mut link = ctx.link_access();
            for (resp, is_open) in self.responses.iter_mut().zip(&open) {
                if !*is_open {
                    continue;
                }
                let out = resp.msg.on_contact(strategy, oracle, now, a, b, &mut link);
                if out.delivered {
                    delivered.push(resp.query.id);
                }
            }
        }
        let at = ctx.now();
        for id in delivered {
            if matches!(
                ctx.mark_delivered(id),
                dtn_sim::engine::DeliveryOutcome::Accepted { .. }
            ) {
                self.log(ProtocolEvent::Delivered { at, query: id });
            }
        }
        self.responses.retain(|r| !r.msg.is_delivered());
    }

    /// §V-D: contact-time cache replacement between two caching nodes.
    fn exchange_caches(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        if self.cfg.replacement != ReplacementKind::UtilityKnapsack {
            return;
        }
        let now = ctx.now();
        for k in 0..self.centrals.len() {
            self.exchange_ncl(ctx, a, b, k, now);
        }
    }

    fn exchange_ncl(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId, k: usize, now: Time) {
        // Pool the settled copies of NCL k held by either node, skipping
        // copies whose physical bytes are pinned by another NCL's tag at
        // the same node (they are not free to move).
        let mut pool: Vec<(DataItem, NodeId)> = Vec::new();
        for (&data, states) in &self.copies {
            let CopyState::Settled(holder) = states[k] else {
                continue;
            };
            if holder != a && holder != b {
                continue;
            }
            let Some(&item) = self.registry.get(data) else {
                continue;
            };
            if !item.is_alive(now) {
                continue;
            }
            let pinned = states
                .iter()
                .enumerate()
                .any(|(j, s)| j != k && s.holder() == Some(holder));
            if !pinned {
                pool.push((item, holder));
            }
        }
        if pool.is_empty() {
            return;
        }
        // Nothing to optimise if only one node participates and already
        // holds everything — still run when both hold copies or the
        // better-placed node differs.
        let central = self.centrals[k];
        let oracle = self.oracle.as_mut().expect("configured");
        let wa = oracle.weight(ctx.rate_table(), now, a, central);
        let wb = oracle.weight(ctx.rate_table(), now, b, central);
        let (first, second) = if wa >= wb { (a, b) } else { (b, a) };

        // Extract the pooled physical copies, remembering prior holders.
        for (item, holder) in &pool {
            self.buffers[holder.index()].remove(item.id);
            self.meta[holder.index()].on_remove(item.id);
        }

        let items: Vec<CacheItem> = pool
            .iter()
            .map(|(d, _)| CacheItem {
                size: d.size,
                utility: self.registry.popularity(d.id, now),
            })
            .collect();

        // Algorithm 1 (or the deterministic basic strategy when
        // ablated) for the better-placed node, then the remainder for
        // the other.
        let cap_first = self.buffers[first.index()].free();
        let chosen_first = if self.cfg.probabilistic_selection {
            self.solver
                .probabilistic_select(&items, cap_first, ctx.rng())
        } else {
            self.solver.solve(&items, cap_first).indices
        };
        let first_set: HashSet<usize> = chosen_first.iter().copied().collect();
        let rest: Vec<usize> = (0..items.len())
            .filter(|i| !first_set.contains(i))
            .collect();
        let rest_items: Vec<CacheItem> = rest.iter().map(|&i| items[i]).collect();
        let cap_second = self.buffers[second.index()].free();
        let chosen_second_local = if self.cfg.probabilistic_selection {
            self.solver
                .probabilistic_select(&rest_items, cap_second, ctx.rng())
        } else {
            self.solver.solve(&rest_items, cap_second).indices
        };
        let second_set: HashSet<usize> = chosen_second_local.iter().map(|&j| rest[j]).collect();

        let mut moves = 0u64;
        for (i, (item, prior_holder)) in pool.iter().enumerate() {
            let target = if first_set.contains(&i) {
                Some(first)
            } else if second_set.contains(&i) {
                Some(second)
            } else {
                None
            };
            // Preference: knapsack target, then where it was before.
            let mut candidates: Vec<NodeId> = Vec::new();
            if let Some(node) = target {
                candidates.push(node);
            }
            if !candidates.contains(prior_holder) {
                candidates.push(*prior_holder);
            }
            let mut placed = false;
            for node in candidates {
                let moved = node != *prior_holder;
                // Moving needs bandwidth unless the bytes are already
                // there via another NCL's copy.
                let needs_transfer = moved && !self.buffers[node.index()].contains(item.id);
                if needs_transfer && !ctx.try_transmit(item.size) {
                    continue; // contact too short to carry the move
                }
                if self.buffers[node.index()].insert(*item).is_ok() {
                    let pop = self.registry.popularity(item.id, now);
                    self.meta[node.index()].on_insert(item.id, now, pop, item.size);
                    self.set_copy(item.id, k, CopyState::Settled(node));
                    if moved {
                        moves += 1;
                    }
                    placed = true;
                    break;
                }
            }
            if !placed {
                self.set_copy(item.id, k, CopyState::Dropped);
                moves += 1;
            }
        }
        ctx.note_replacements(moves);
    }
}

impl Scheme for ReferenceIntentionalScheme {
    fn on_data_generated(&mut self, ctx: &mut SimCtx<'_>, item: DataItem) {
        if !self.configured() {
            return;
        }
        self.registry.register(item);
        // The source holds one physical copy and owes one to each NCL.
        if self.insert_physical(ctx, item.source, item) {
            self.copies.insert(
                item.id,
                vec![CopyState::Carried(item.source); self.centrals.len()],
            );
        } else {
            // The item never fits anywhere; it is lost.
            self.copies
                .insert(item.id, vec![CopyState::Dropped; self.centrals.len()]);
        }
    }

    fn on_query_issued(&mut self, ctx: &mut SimCtx<'_>, query: Query) {
        if !self.configured() {
            return;
        }
        self.registry.record_request(query.data, ctx.now());
        // Local hit: the requester happens to cache the data already.
        if self.buffers[query.requester.index()].contains(query.data) {
            ctx.mark_delivered(query.id);
            self.log(ProtocolEvent::Delivered {
                at: ctx.now(),
                query: query.id,
            });
            return;
        }
        let centrals = self.centrals.clone();
        for (k, &central) in centrals.iter().enumerate() {
            if central == query.requester {
                self.handle_query_at_central(ctx, query, k);
            } else {
                self.pulls.push(PullCopy {
                    query,
                    ncl: k,
                    carrier: query.requester,
                });
            }
        }
    }

    fn on_contact(&mut self, ctx: &mut SimCtx<'_>, contact: Contact) {
        if !self.configured() {
            return;
        }
        let (a, b) = (contact.a, contact.b);
        self.prune(ctx);
        self.advance_pushes(ctx, a, b);
        self.advance_pulls(ctx, a, b);
        self.advance_broadcasts(ctx, a, b);
        self.advance_responses(ctx, a, b);
        self.exchange_caches(ctx, a, b);
    }

    fn on_epoch(&mut self, _ctx: &mut SimCtx<'_>, _epoch: dtn_sim::engine::Epoch) {
        // The reference scheme keeps its NCLs frozen for the whole run:
        // it is the fixed point the optimized scheme must match bit for
        // bit when `epoch_interval` is `None`, and the frozen baseline
        // the re-election experiment compares against.
    }

    fn cache_stats(&self, now: Time) -> CacheStats {
        let mut copies = 0u64;
        let mut bytes = 0u64;
        let mut distinct = HashSet::new();
        for buf in &self.buffers {
            for item in buf.iter().filter(|d| d.is_alive(now)) {
                copies += 1;
                bytes += item.size;
                distinct.insert(item.id);
            }
        }
        CacheStats {
            copies,
            distinct: distinct.len() as u64,
            bytes,
        }
    }

    fn audit(&self, now: Time, report: &mut dtn_sim::audit::AuditReport) {
        use dtn_sim::audit::{check_buffers, AuditLaw, AuditViolation};
        check_buffers(&self.buffers, now, report);
        // Copy conservation: every live copy's holder physically stores
        // the bytes. `prune` flips copies whose holder lost the item to
        // Dropped at the start of each contact, so the law holds at
        // audit time (after the contact) for every alive item; expired
        // items are reconciled lazily and are exempt.
        for (&data, states) in &self.copies {
            if !self.registry.get(data).is_some_and(|d| d.is_alive(now)) {
                continue;
            }
            for (k, s) in states.iter().enumerate() {
                let Some(holder) = s.holder() else { continue };
                if !self.buffers[holder.index()].contains(data) {
                    report.violate(AuditViolation {
                        law: AuditLaw::CopyConservation,
                        at: now,
                        node: Some(holder),
                        item: Some(data),
                        detail: format!("NCL {k} copy points at a node lacking the bytes"),
                    });
                }
            }
        }
    }
}

impl CachingScheme for ReferenceIntentionalScheme {
    fn configure(&mut self, setup: &NetworkSetup<'_>) {
        let graph = dtn_core::graph::ContactGraph::from_rate_table(setup.rate_table, setup.now);
        let scores = dtn_core::ncl::select_by_strategy(
            &graph,
            self.cfg.ncl_count,
            setup.horizon,
            self.cfg.ncl_selection,
        );
        self.centrals = scores.iter().map(|s| s.node).collect();
        self.ncl_query_load = vec![0; self.centrals.len()];
        self.ncl_response_load = vec![0; self.centrals.len()];
        self.oracle = Some(PathOracle::new(
            setup.capacities.len(),
            setup.horizon,
            setup.path_refresh.unwrap_or(self.cfg.path_refresh),
        ));
        self.buffers = setup.capacities.iter().map(|&c| Buffer::new(c)).collect();
        self.meta = setup
            .capacities
            .iter()
            .map(|_| NodeCacheMeta::default())
            .collect();
    }

    fn central_nodes(&self) -> &[NodeId] {
        &self.centrals
    }

    fn ncl_query_load(&self) -> &[u64] {
        &self.ncl_query_load
    }
}
