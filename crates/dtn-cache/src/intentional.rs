//! The paper's contribution: intentional caching at Network Central
//! Locations (§V).
//!
//! Life of a data item under this scheme:
//!
//! 1. **Push** (§V-A): the source holds the item and owes one copy to
//!    each of the `K` central nodes. On every contact, a copy advances
//!    to relays with a strictly higher opportunistic-path weight to its
//!    target central node; the previous relay deletes its copy. A copy
//!    *settles* (becomes a caching location of that NCL) when it reaches
//!    the central node, or earlier when the next selected relay has no
//!    buffer space.
//! 2. **Pull** (§V-B): a requester multicasts the query to all central
//!    nodes (greedy forwarding again). A central node that caches the
//!    item responds immediately; otherwise it broadcasts the query among
//!    the NCL's caching nodes (which form a connected subgraph of the
//!    contact graph, so epidemic spreading among members reaches them).
//! 3. **Probabilistic response** (§V-C): a non-central caching node that
//!    receives the query replies with probability given either by the
//!    sigmoid of the remaining query time (Eq. 4) or, in path-aware
//!    mode, by the path weight `p_CR(T_q − t₀)` to the requester.
//! 4. **Cache replacement** (§V-D): when two caching nodes meet (and
//!    the native [`ReplacementKind::UtilityKnapsack`] policy is active),
//!    their cached items are pooled and reassigned by the probabilistic
//!    knapsack (Algorithm 1) so the node closer to the NCLs keeps the
//!    more popular data. With a traditional policy (FIFO/LRU/GDS — the
//!    Fig. 12 comparison) the exchange is disabled and evict-on-insert
//!    is used instead.
//!
//! # Hot-loop layout
//!
//! A contact only involves two nodes, so this implementation indexes all
//! per-contact state by carrier node instead of sweeping global vectors
//! (see DESIGN.md §7 and [`reference`](crate::reference) for the
//! original retain-based bookkeeping it is differentially tested
//! against):
//!
//! - pending pulls/broadcasts/responses live in slab allocators with
//!   monotone sequence numbers; per-node lists point into the slabs and
//!   a contact gathers only the two endpoints' entries, sorted by
//!   sequence number to reproduce the original global processing order;
//! - expired messages, data items and response-decision memos are
//!   garbage-collected from time-ordered heaps instead of full sweeps;
//! - push copies and settled copies are indexed per holder node, and
//!   NCL membership is a counter (`member_count`) instead of a scan of
//!   every copy record;
//! - the §V-D exchange is skipped outright when neither endpoint's cache
//!   changed since the pair's last (provably empty) exchange, tracked by
//!   per-node dirty generations.
//!
//! Every shortcut preserves the reference implementation's RNG draw
//! order, `try_transmit` charge order and event order bit-for-bit;
//! `tests/scheme_equivalence.rs` enforces this.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::mem;

use rand::Rng;

use dtn_core::ids::{DataId, NodeId, QueryId};
use dtn_core::knapsack::{CacheItem, KnapsackSolver};
use dtn_core::sigmoid::ResponseFunction;
use dtn_core::time::{Duration, Time};
use dtn_sim::buffer::Buffer;
use dtn_sim::engine::{CacheStats, Scheme, SimCtx};
use dtn_sim::message::{DataItem, Query};
use dtn_sim::oracle::PathOracle;
use dtn_trace::trace::Contact;

use crate::common::{better_relay, DataRegistry};
use crate::replacement::{make_room, NodeCacheMeta, ReplacementKind};
use crate::routing::{ForwardingStrategy, RoutedMessage};
use crate::{CachingScheme, NetworkSetup};

/// How a caching node decides whether to return data (§V-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResponseStrategy {
    /// Sigmoid of the remaining query time (Eq. 4) with the given
    /// `(p_min, p_max)`; used when nodes only know paths to the NCLs.
    Sigmoid {
        /// Response probability when no time remains.
        p_min: f64,
        /// Response probability when the full constraint remains.
        p_max: f64,
    },
    /// Path-aware: reply with probability `p_CR(T_q − t₀)` — the weight
    /// of the shortest opportunistic path to the requester evaluated at
    /// the remaining time.
    PathAware,
}

impl Default for ResponseStrategy {
    /// The §V-C example parameters: `p_min = 0.45`, `p_max = 0.8`.
    fn default() -> Self {
        ResponseStrategy::Sigmoid {
            p_min: 0.45,
            p_max: 0.8,
        }
    }
}

/// Configuration of the intentional caching scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct IntentionalConfig {
    /// Number of NCLs `K`.
    pub ncl_count: usize,
    /// Response strategy (§V-C).
    pub response: ResponseStrategy,
    /// Replacement policy (§V-D; Fig. 12 swaps this).
    pub replacement: ReplacementKind,
    /// Whether knapsack selection is probabilistic (Algorithm 1,
    /// §V-D-3) or deterministic (the basic strategy of §V-D-2). The
    /// paper argues the probabilistic variant protects cumulative data
    /// accessibility; setting this to `false` ablates that choice.
    pub probabilistic_selection: bool,
    /// How cached data copies travel back to requesters (§V-B: "any
    /// existing data forwarding protocol"). Default: greedy delegation.
    pub response_routing: ForwardingStrategy,
    /// How central nodes are picked from warm-up information. Default:
    /// the paper's probabilistic path metric (Eq. 3).
    pub ncl_selection: dtn_core::ncl::SelectionStrategy,
    /// How often cached path tables are refreshed.
    pub path_refresh: Duration,
    /// Knapsack size quantum in bytes (see
    /// [`dtn_core::knapsack::KnapsackSolver`]).
    pub knapsack_quantum: u64,
}

impl Default for IntentionalConfig {
    fn default() -> Self {
        IntentionalConfig {
            ncl_count: 8,
            response: ResponseStrategy::default(),
            replacement: ReplacementKind::UtilityKnapsack,
            probabilistic_selection: true,
            response_routing: ForwardingStrategy::Greedy,
            ncl_selection: dtn_core::ncl::SelectionStrategy::PathMetric,
            path_refresh: Duration::hours(12),
            knapsack_quantum: 1 << 20,
        }
    }
}

/// Where one NCL's copy of a data item currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyState {
    /// Still being pushed; the node is a *temporal* caching location.
    Carried(NodeId),
    /// Settled at this caching node.
    Settled(NodeId),
    /// Evicted or undeliverable.
    Dropped,
}

impl CopyState {
    fn holder(self) -> Option<NodeId> {
        match self {
            CopyState::Carried(n) | CopyState::Settled(n) => Some(n),
            CopyState::Dropped => None,
        }
    }

    /// A copy that just moved to `node`: settled if `node` is the target
    /// central node, still in transit otherwise.
    fn transit(node: NodeId, central: NodeId) -> CopyState {
        if node == central {
            CopyState::Settled(node)
        } else {
            CopyState::Carried(node)
        }
    }
}

/// A query copy traveling toward one central node.
#[derive(Debug, Clone, Copy)]
struct PullCopy {
    query: Query,
    ncl: usize,
    carrier: NodeId,
}

/// A query being broadcast among the caching nodes of one NCL.
#[derive(Debug, Clone)]
struct BroadcastCopy {
    query: Query,
    ncl: usize,
    holders: HashSet<NodeId>,
}

/// A cached data copy traveling back to a requester.
#[derive(Debug, Clone)]
struct ResponseInFlight {
    query: Query,
    msg: RoutedMessage,
}

/// One protocol milestone, recorded when event logging is enabled
/// (see [`IntentionalScheme::enable_event_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A push copy settled: `node` became a caching location of NCL
    /// `ncl` for `data`.
    PushSettled {
        /// When it settled.
        at: Time,
        /// The item.
        data: DataId,
        /// The new caching node.
        node: NodeId,
        /// NCL index.
        ncl: usize,
    },
    /// A query copy arrived at the central node of NCL `ncl`.
    QueryAtCentral {
        /// Arrival time.
        at: Time,
        /// The query.
        query: QueryId,
        /// NCL index.
        ncl: usize,
    },
    /// The query was broadcast to one more caching node of the NCL.
    BroadcastSpread {
        /// When the copy spread.
        at: Time,
        /// The query.
        query: QueryId,
        /// The node that received the broadcast copy.
        node: NodeId,
    },
    /// A caching node decided to return the data (§V-C succeeded).
    ResponseSpawned {
        /// Decision time.
        at: Time,
        /// The query being answered.
        query: QueryId,
        /// The responding caching node.
        node: NodeId,
    },
    /// The requester received the data.
    Delivered {
        /// Delivery time.
        at: Time,
        /// The satisfied query.
        query: QueryId,
    },
}

/// Slab of pending protocol messages. Slots are reused via a free list;
/// each live entry carries a monotone sequence number so (a) gathered
/// entries can be replayed in global insertion order and (b) stale heap
/// references to a reused slot can be detected.
#[derive(Debug)]
struct PendingSlab<T> {
    entries: Vec<Option<(u64, T)>>,
    free: Vec<u32>,
    next_seq: u64,
    len: usize,
}

impl<T> Default for PendingSlab<T> {
    fn default() -> Self {
        PendingSlab {
            entries: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }
}

impl<T> PendingSlab<T> {
    fn insert(&mut self, value: T) -> (u32, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let id = match self.free.pop() {
            Some(id) => {
                self.entries[id as usize] = Some((seq, value));
                id
            }
            None => {
                self.entries.push(Some((seq, value)));
                (self.entries.len() - 1) as u32
            }
        };
        (id, seq)
    }

    fn get(&self, id: u32) -> Option<&T> {
        self.entries
            .get(id as usize)
            .and_then(|e| e.as_ref())
            .map(|(_, v)| v)
    }

    fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.entries
            .get_mut(id as usize)
            .and_then(|e| e.as_mut())
            .map(|(_, v)| v)
    }

    fn seq(&self, id: u32) -> Option<u64> {
        self.entries
            .get(id as usize)
            .and_then(|e| e.as_ref())
            .map(|&(seq, _)| seq)
    }

    fn remove(&mut self, id: u32) -> Option<T> {
        let slot = self.entries.get_mut(id as usize)?;
        let (_, value) = slot.take()?;
        self.free.push(id);
        self.len -= 1;
        Some(value)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|(_, v)| (i as u32, v)))
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.free.clear();
        self.next_seq = 0;
        self.len = 0;
    }
}

/// Tags distinguishing slab kinds in the shared expiry heap.
const GC_PULL: u8 = 0;
const GC_BCAST: u8 = 1;
const GC_RESP: u8 = 2;

/// Removes one occurrence of `id` from a per-node index list.
fn remove_u32(list: &mut Vec<u32>, id: u32) {
    let pos = list
        .iter()
        .position(|&x| x == id)
        .expect("pending index entry missing");
    list.swap_remove(pos);
}

/// Removes the `(data, k)` entry from a per-node copy index list.
fn remove_copy_entry(list: &mut Vec<(DataId, u32)>, data: DataId, k: u32) {
    let pos = list
        .iter()
        .position(|&e| e == (data, k))
        .expect("copy index entry missing");
    list.swap_remove(pos);
}

/// The intentional NCL caching scheme (§V).
///
/// Construct with [`IntentionalScheme::new`], then install the warm-up
/// network state via [`CachingScheme::configure`] before feeding
/// workload events.
#[derive(Debug)]
pub struct IntentionalScheme {
    cfg: IntentionalConfig,
    centrals: Vec<NodeId>,
    oracle: Option<PathOracle>,
    buffers: Vec<Buffer>,
    meta: Vec<NodeCacheMeta>,
    registry: DataRegistry,
    /// copies[data][k] — the k-th NCL's copy of `data`. Never iterated
    /// in map order; all ordered traversal goes through the per-node
    /// indexes below.
    copies: HashMap<DataId, Vec<CopyState>>,
    pulls: PendingSlab<PullCopy>,
    broadcasts: PendingSlab<BroadcastCopy>,
    responses: PendingSlab<ResponseInFlight>,
    /// pull_at[n] — pending pulls currently carried by node `n`.
    pull_at: Vec<Vec<u32>>,
    /// bcast_at[n] — broadcasts whose holder set contains node `n`.
    bcast_at: Vec<Vec<u32>>,
    /// resp_at[n] — in-flight responses with a copy carried by `n`.
    resp_at: Vec<Vec<u32>>,
    /// carried_at[n] — `(data, k)` push copies in `Carried(n)` state.
    carried_at: Vec<Vec<(DataId, u32)>>,
    /// settled_at[n] — `(data, k)` copies in `Settled(n)` state.
    settled_at: Vec<Vec<(DataId, u32)>>,
    /// member_count[n][k] — copies (carried or settled) node `n` holds
    /// for NCL `k`; `is_member` in O(1).
    member_count: Vec<Vec<u32>>,
    /// Dirty generation per node, bumped on every copy-state change
    /// touching the node; drives the §V-D exchange skip.
    cache_gen: Vec<u64>,
    /// Last all-pools-empty exchange per ordered node pair:
    /// `(cache_gen_lo, cache_gen_hi, buffer_gen_lo, buffer_gen_hi)`.
    /// A pair whose generations are unchanged is skipped.
    pair_clean: HashMap<(NodeId, NodeId), (u64, u64, u64, u64)>,
    /// Expiry heap over pending messages: `(query expiry, kind, id,
    /// seq)`. Entries referencing reused slots are detected via `seq`.
    pending_gc: BinaryHeap<Reverse<(Time, u8, u32, u64)>>,
    /// Expiry heap over data items (replaces the all-buffer dead scan).
    data_gc: BinaryHeap<Reverse<(Time, DataId)>>,
    /// Nodes that already made their response decision, per query.
    responded: HashMap<QueryId, HashSet<NodeId>>,
    /// Expiry heap over `responded` entries.
    responded_gc: BinaryHeap<Reverse<(Time, QueryId)>>,
    solver: KnapsackSolver,
    /// Queries that arrived at each central node (NCL load, by index).
    ncl_query_load: Vec<u64>,
    /// Responses spawned on behalf of each NCL (central or member).
    ncl_response_load: Vec<u64>,
    /// Protocol milestones, recorded when enabled.
    event_log: Option<Vec<ProtocolEvent>>,
    // Reusable per-contact scratch buffers (all logically empty between
    // contacts; kept to avoid re-allocation in the hot loop).
    sx_batch: Vec<(u64, u32)>,
    sx_push_batch: Vec<(DataId, u32)>,
    sx_arrived: Vec<u32>,
    sx_spreads: Vec<(u32, NodeId)>,
    sx_decisions: Vec<(Query, NodeId, usize)>,
    sx_process: Vec<u32>,
    sx_delivered: Vec<(u32, QueryId)>,
    sx_pool: Vec<(DataItem, NodeId)>,
    sx_items: Vec<CacheItem>,
    sx_chosen: Vec<usize>,
    sx_rest: Vec<usize>,
    sx_rest_items: Vec<CacheItem>,
    sx_in_first: Vec<bool>,
    sx_in_second: Vec<bool>,
}

impl IntentionalScheme {
    /// Creates an unconfigured scheme.
    pub fn new(cfg: IntentionalConfig) -> Self {
        let solver = KnapsackSolver::new(cfg.knapsack_quantum);
        IntentionalScheme {
            cfg,
            centrals: Vec::new(),
            oracle: None,
            buffers: Vec::new(),
            meta: Vec::new(),
            registry: DataRegistry::default(),
            copies: HashMap::new(),
            pulls: PendingSlab::default(),
            broadcasts: PendingSlab::default(),
            responses: PendingSlab::default(),
            pull_at: Vec::new(),
            bcast_at: Vec::new(),
            resp_at: Vec::new(),
            carried_at: Vec::new(),
            settled_at: Vec::new(),
            member_count: Vec::new(),
            cache_gen: Vec::new(),
            pair_clean: HashMap::new(),
            pending_gc: BinaryHeap::new(),
            data_gc: BinaryHeap::new(),
            responded: HashMap::new(),
            responded_gc: BinaryHeap::new(),
            solver,
            ncl_query_load: Vec::new(),
            ncl_response_load: Vec::new(),
            event_log: None,
            sx_batch: Vec::new(),
            sx_push_batch: Vec::new(),
            sx_arrived: Vec::new(),
            sx_spreads: Vec::new(),
            sx_decisions: Vec::new(),
            sx_process: Vec::new(),
            sx_delivered: Vec::new(),
            sx_pool: Vec::new(),
            sx_items: Vec::new(),
            sx_chosen: Vec::new(),
            sx_rest: Vec::new(),
            sx_rest_items: Vec::new(),
            sx_in_first: Vec::new(),
            sx_in_second: Vec::new(),
        }
    }

    /// Turns on protocol-event recording (off by default; events cost
    /// memory on long runs). Returns `self` for builder-style use.
    pub fn enable_event_log(mut self) -> Self {
        self.event_log = Some(Vec::new());
        self
    }

    /// Recorded protocol milestones (empty slice when logging is off).
    pub fn events(&self) -> &[ProtocolEvent] {
        self.event_log.as_deref().unwrap_or(&[])
    }

    fn log(&mut self, event: ProtocolEvent) {
        if let Some(log) = &mut self.event_log {
            log.push(event);
        }
    }

    /// Queries that reached each central node, by NCL index — a
    /// load-balance view across the NCLs.
    pub fn ncl_query_load(&self) -> &[u64] {
        &self.ncl_query_load
    }

    /// Responses contributed by each NCL (its central node or caching
    /// members), by NCL index.
    pub fn ncl_response_load(&self) -> &[u64] {
        &self.ncl_response_load
    }

    /// The configuration the scheme was built with.
    pub fn config(&self) -> &IntentionalConfig {
        &self.cfg
    }

    /// Checks the scheme's internal invariants; used by stress tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: buffer
    /// byte-accounting, buffer over-commitment, an NCL copy pointing at
    /// a node that does not physically hold the data, or a per-node
    /// index (copy lists, membership counters, pending-message lists)
    /// out of sync with the canonical state.
    pub fn validate(&self) -> Result<(), String> {
        for (i, buf) in self.buffers.iter().enumerate() {
            let actual: u64 = buf.iter().map(|d| d.size).sum();
            if buf.used() != actual {
                return Err(format!("node {i}: used {} != sum {actual}", buf.used()));
            }
            if buf.used() > buf.capacity() {
                return Err(format!(
                    "node {i}: over-committed {}/{}",
                    buf.used(),
                    buf.capacity()
                ));
            }
        }
        let n = self.buffers.len();
        let mut expect_member = vec![vec![0u32; self.centrals.len()]; n];
        let mut carried_seen = 0usize;
        let mut settled_seen = 0usize;
        for (data, states) in &self.copies {
            for (k, s) in states.iter().enumerate() {
                let Some(holder) = s.holder() else { continue };
                if !self.buffers[holder.index()].contains(*data) {
                    return Err(format!(
                        "copy ({data}, ncl {k}) points at {holder} which lacks the bytes"
                    ));
                }
                expect_member[holder.index()][k] += 1;
                let list = match s {
                    CopyState::Carried(_) => {
                        carried_seen += 1;
                        &self.carried_at[holder.index()]
                    }
                    CopyState::Settled(_) => {
                        settled_seen += 1;
                        &self.settled_at[holder.index()]
                    }
                    CopyState::Dropped => unreachable!("holder implies not dropped"),
                };
                if !list.contains(&(*data, k as u32)) {
                    return Err(format!(
                        "copy ({data}, ncl {k}) missing from {holder}'s index list"
                    ));
                }
            }
        }
        if expect_member != self.member_count {
            return Err("member_count out of sync with copy states".into());
        }
        let carried_total: usize = self.carried_at.iter().map(Vec::len).sum();
        let settled_total: usize = self.settled_at.iter().map(Vec::len).sum();
        if carried_total != carried_seen || settled_total != settled_seen {
            return Err(format!(
                "copy index lists hold {carried_total}+{settled_total} entries, \
                 copy states say {carried_seen}+{settled_seen}"
            ));
        }
        for (node, list) in self.pull_at.iter().enumerate() {
            for &id in list {
                let Some(pull) = self.pulls.get(id) else {
                    return Err(format!("pull_at[{node}] references freed slot {id}"));
                };
                if pull.carrier.index() != node {
                    return Err(format!("pull {id} indexed at {node}, carried elsewhere"));
                }
            }
        }
        if self.pull_at.iter().map(Vec::len).sum::<usize>() != self.pulls.len() {
            return Err("pull index entry count != pull slab len".into());
        }
        for (node, list) in self.bcast_at.iter().enumerate() {
            for &id in list {
                let Some(bc) = self.broadcasts.get(id) else {
                    return Err(format!("bcast_at[{node}] references freed slot {id}"));
                };
                if !bc.holders.contains(&NodeId(node as u32)) {
                    return Err(format!("broadcast {id} indexed at non-holder {node}"));
                }
            }
        }
        let holder_total: usize = self.broadcasts.iter().map(|(_, bc)| bc.holders.len()).sum();
        if self.bcast_at.iter().map(Vec::len).sum::<usize>() != holder_total {
            return Err("broadcast index entry count != holder count".into());
        }
        for (node, list) in self.resp_at.iter().enumerate() {
            for &id in list {
                let Some(resp) = self.responses.get(id) else {
                    return Err(format!("resp_at[{node}] references freed slot {id}"));
                };
                if !resp.msg.carries(NodeId(node as u32)) {
                    return Err(format!("response {id} indexed at non-carrier {node}"));
                }
            }
        }
        let carrier_total: usize = self
            .responses
            .iter()
            .map(|(_, r)| r.msg.carriers().count())
            .sum();
        if self.resp_at.iter().map(Vec::len).sum::<usize>() != carrier_total {
            return Err("response index entry count != carrier count".into());
        }
        Ok(())
    }

    fn configured(&self) -> bool {
        self.oracle.is_some()
    }

    /// Whether `node` currently holds a copy (carried or settled) on
    /// behalf of NCL `ncl`.
    fn is_member(&self, node: NodeId, ncl: usize) -> bool {
        self.member_count[node.index()][ncl] > 0
    }

    /// Removes a pending pull and its index entry.
    fn remove_pull(&mut self, id: u32) -> Option<PullCopy> {
        let pull = self.pulls.remove(id)?;
        remove_u32(&mut self.pull_at[pull.carrier.index()], id);
        Some(pull)
    }

    /// Removes a pending broadcast and its index entries.
    fn remove_broadcast(&mut self, id: u32) -> Option<BroadcastCopy> {
        let bc = self.broadcasts.remove(id)?;
        for h in &bc.holders {
            remove_u32(&mut self.bcast_at[h.index()], id);
        }
        Some(bc)
    }

    /// Removes an in-flight response and its index entries.
    fn remove_response(&mut self, id: u32) -> Option<ResponseInFlight> {
        let resp = self.responses.remove(id)?;
        for c in resp.msg.carriers() {
            remove_u32(&mut self.resp_at[c.index()], id);
        }
        Some(resp)
    }

    /// Garbage-collects expired data and dead in-flight state from the
    /// expiry heaps. Unlike the original full sweeps this touches only
    /// entries that actually expired; messages whose query closed early
    /// (satisfied) are dropped lazily when next gathered, which is
    /// unobservable because every processing path checks
    /// `query_is_open` first.
    fn prune(&mut self, ctx: &SimCtx<'_>) {
        let now = ctx.now();
        while let Some(&Reverse((t, data))) = self.data_gc.peek() {
            if t > now {
                break;
            }
            self.data_gc.pop();
            let Some(states) = self.copies.remove(&data) else {
                continue;
            };
            for (k, s) in states.iter().enumerate() {
                let Some(h) = s.holder() else { continue };
                match s {
                    CopyState::Carried(_) => {
                        remove_copy_entry(&mut self.carried_at[h.index()], data, k as u32);
                    }
                    CopyState::Settled(_) => {
                        remove_copy_entry(&mut self.settled_at[h.index()], data, k as u32);
                    }
                    CopyState::Dropped => unreachable!("holder implies not dropped"),
                }
                self.member_count[h.index()][k] -= 1;
                self.cache_gen[h.index()] += 1;
                if self.buffers[h.index()].remove(data).is_some() {
                    self.meta[h.index()].on_remove(data);
                }
            }
        }
        while let Some(&Reverse((t, tag, id, seq))) = self.pending_gc.peek() {
            if t > now {
                break;
            }
            self.pending_gc.pop();
            match tag {
                GC_PULL => {
                    if self.pulls.seq(id) == Some(seq) {
                        self.remove_pull(id);
                    }
                }
                GC_BCAST => {
                    if self.broadcasts.seq(id) == Some(seq) {
                        self.remove_broadcast(id);
                    }
                }
                _ => {
                    if self.responses.seq(id) == Some(seq) {
                        self.remove_response(id);
                    }
                }
            }
        }
        while let Some(&Reverse((t, query))) = self.responded_gc.peek() {
            if t > now {
                break;
            }
            self.responded_gc.pop();
            self.responded.remove(&query);
        }
    }

    /// Inserts a physical copy of `item` at `node`, evicting per the
    /// traditional policies if configured. Returns whether it fits.
    fn insert_physical(&mut self, ctx: &mut SimCtx<'_>, node: NodeId, item: DataItem) -> bool {
        let buf = &mut self.buffers[node.index()];
        if buf.contains(item.id) {
            return true;
        }
        if !buf.fits(item.size) {
            let evicted = make_room(
                self.cfg.replacement,
                buf,
                &mut self.meta[node.index()],
                item.size,
            );
            if !evicted.is_empty() {
                ctx.note_replacements(evicted.len() as u64);
                for id in evicted {
                    for k in 0..self.centrals.len() {
                        let holds = self
                            .copies
                            .get(&id)
                            .is_some_and(|s| s[k].holder() == Some(node));
                        if holds {
                            self.set_copy(id, k, CopyState::Dropped);
                        }
                    }
                }
            }
        }
        let buf = &mut self.buffers[node.index()];
        if buf.insert(item).is_ok() {
            let pop = self.registry.popularity(item.id, ctx.now());
            self.meta[node.index()].on_insert(item.id, ctx.now(), pop, item.size);
            true
        } else {
            false
        }
    }

    /// Removes `node`'s physical copy of `data` if no NCL copy still
    /// points at it.
    fn drop_physical_if_unreferenced(&mut self, node: NodeId, data: DataId) {
        let referenced = self
            .copies
            .get(&data)
            .is_some_and(|states| states.iter().any(|s| s.holder() == Some(node)));
        if !referenced {
            self.buffers[node.index()].remove(data);
            self.meta[node.index()].on_remove(data);
        }
    }

    /// §V-A: advance the push copies carried by either contact endpoint.
    ///
    /// Gathers the two endpoints' carried copies from `carried_at` and
    /// replays them in ascending `(data, k)` order — exactly the order
    /// the reference implementation's full copy-table scan visits the
    /// same entries. States are re-read at visit time because an
    /// eviction earlier in the batch can drop a later entry.
    fn advance_pushes(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let mut batch = mem::take(&mut self.sx_push_batch);
        batch.clear();
        batch.extend_from_slice(&self.carried_at[a.index()]);
        if b != a {
            batch.extend_from_slice(&self.carried_at[b.index()]);
        }
        batch.sort_unstable();
        for &(data, k32) in &batch {
            let k = k32 as usize;
            let Some(&item) = self.registry.get(data) else {
                continue;
            };
            if !item.is_alive(now) {
                continue;
            }
            let Some(state) = self.copies.get(&data).map(|s| s[k]) else {
                continue;
            };
            let CopyState::Carried(holder) = state else {
                continue;
            };
            let (from, to) = if holder == a {
                (a, b)
            } else if holder == b {
                (b, a)
            } else {
                continue;
            };
            let central = self.centrals[k];
            let oracle = self.oracle.as_mut().expect("configured");
            if !better_relay(oracle, ctx.rate_table(), now, from, to, central) {
                continue;
            }
            // The next selected relay: forward if it can hold the
            // item, otherwise settle at the current relay (§V-A).
            let already_there = self.buffers[to.index()].contains(data);
            if already_there {
                self.set_copy(data, k, CopyState::transit(to, central));
                self.drop_physical_if_unreferenced(from, data);
                continue;
            }
            if !self.buffers[to.index()].fits(item.size)
                && self.cfg.replacement == ReplacementKind::UtilityKnapsack
            {
                // Next relay's buffer is full: cache here.
                self.set_copy(data, k, CopyState::Settled(from));
                self.log(ProtocolEvent::PushSettled {
                    at: now,
                    data,
                    node: from,
                    ncl: k,
                });
                continue;
            }
            if !ctx.try_transmit(item.size) {
                continue; // contact too short; retry later
            }
            if self.insert_physical(ctx, to, item) {
                self.set_copy(data, k, CopyState::transit(to, central));
                if to == central {
                    self.log(ProtocolEvent::PushSettled {
                        at: now,
                        data,
                        node: to,
                        ncl: k,
                    });
                }
                self.drop_physical_if_unreferenced(from, data);
            } else {
                // Traditional policy could not make room either.
                self.set_copy(data, k, CopyState::Settled(from));
                self.log(ProtocolEvent::PushSettled {
                    at: now,
                    data,
                    node: from,
                    ncl: k,
                });
            }
        }
        batch.clear();
        self.sx_push_batch = batch;
    }

    /// Routes every copy-state transition, keeping the per-node copy
    /// indexes, membership counters and dirty generations in sync.
    fn set_copy(&mut self, data: DataId, k: usize, state: CopyState) {
        let Some(states) = self.copies.get_mut(&data) else {
            return;
        };
        let old = states[k];
        if old == state {
            return;
        }
        states[k] = state;
        let k32 = k as u32;
        match old {
            CopyState::Carried(h) => {
                remove_copy_entry(&mut self.carried_at[h.index()], data, k32);
                self.member_count[h.index()][k] -= 1;
                self.cache_gen[h.index()] += 1;
            }
            CopyState::Settled(h) => {
                remove_copy_entry(&mut self.settled_at[h.index()], data, k32);
                self.member_count[h.index()][k] -= 1;
                self.cache_gen[h.index()] += 1;
            }
            CopyState::Dropped => {}
        }
        match state {
            CopyState::Carried(h) => {
                self.carried_at[h.index()].push((data, k32));
                self.member_count[h.index()][k] += 1;
                self.cache_gen[h.index()] += 1;
            }
            CopyState::Settled(h) => {
                self.settled_at[h.index()].push((data, k32));
                self.member_count[h.index()][k] += 1;
                self.cache_gen[h.index()] += 1;
            }
            CopyState::Dropped => {}
        }
    }

    /// §V-B: advance query copies toward their central nodes.
    fn advance_pulls(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let query_size = ctx.query_size();
        let mut batch = mem::take(&mut self.sx_batch);
        batch.clear();
        batch.extend(
            self.pull_at[a.index()]
                .iter()
                .map(|&id| (self.pulls.seq(id).expect("indexed pull live"), id)),
        );
        if b != a {
            batch.extend(
                self.pull_at[b.index()]
                    .iter()
                    .map(|&id| (self.pulls.seq(id).expect("indexed pull live"), id)),
            );
        }
        batch.sort_unstable();
        let mut arrived = mem::take(&mut self.sx_arrived);
        arrived.clear();
        for &(_, id) in &batch {
            let Some(&pull) = self.pulls.get(id) else {
                continue;
            };
            if !ctx.query_is_open(pull.query.id) {
                self.remove_pull(id);
                continue;
            }
            let (from, to) = if pull.carrier == a { (a, b) } else { (b, a) };
            let central = self.centrals[pull.ncl];
            let oracle = self.oracle.as_mut().expect("configured");
            if !better_relay(oracle, ctx.rate_table(), now, from, to, central) {
                continue;
            }
            if !ctx.try_transmit(query_size) {
                continue;
            }
            self.pulls.get_mut(id).expect("live").carrier = to;
            remove_u32(&mut self.pull_at[from.index()], id);
            self.pull_at[to.index()].push(id);
            if to == central {
                arrived.push(id);
            }
        }
        // Handle arrivals (immediate reply or NCL broadcast) in the
        // order they advanced, dropping the delivered pull copies.
        for &id in &arrived {
            let pull = self.remove_pull(id).expect("arrived pull live");
            self.handle_query_at_central(ctx, pull.query, pull.ncl);
        }
        arrived.clear();
        self.sx_arrived = arrived;
        batch.clear();
        self.sx_batch = batch;
    }

    /// A query reached central node `centrals[ncl]` (§V-B, Fig. 6).
    fn handle_query_at_central(&mut self, ctx: &mut SimCtx<'_>, query: Query, ncl: usize) {
        if let Some(slot) = self.ncl_query_load.get_mut(ncl) {
            *slot += 1;
        }
        self.log(ProtocolEvent::QueryAtCentral {
            at: ctx.now(),
            query: query.id,
            ncl,
        });
        let central = self.centrals[ncl];
        if self.buffers[central.index()].contains(query.data) {
            // "a central node immediately replies to the requester with
            // the data if it is cached locally"
            let pop = self.registry.popularity(query.data, ctx.now());
            self.meta[central.index()].on_use(
                query.data,
                ctx.now(),
                pop,
                self.registry.get(query.data).map_or(1, |d| d.size),
            );
            if let Some(slot) = self.ncl_response_load.get_mut(ncl) {
                *slot += 1;
            }
            self.spawn_response(ctx, query, central);
        } else {
            // Otherwise broadcast among the NCL's caching nodes.
            let mut holders = HashSet::new();
            holders.insert(central);
            let (id, seq) = self.broadcasts.insert(BroadcastCopy {
                query,
                ncl,
                holders,
            });
            self.bcast_at[central.index()].push(id);
            self.pending_gc
                .push(Reverse((query.expires_at, GC_BCAST, id, seq)));
        }
    }

    /// §V-B: spread broadcast queries among NCL members; §V-C: members
    /// caching the data decide probabilistically whether to respond.
    fn advance_broadcasts(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let query_size = ctx.query_size();
        let mut batch = mem::take(&mut self.sx_batch);
        batch.clear();
        batch.extend(
            self.bcast_at[a.index()]
                .iter()
                .map(|&id| (self.broadcasts.seq(id).expect("indexed broadcast live"), id)),
        );
        if b != a {
            batch.extend(
                self.bcast_at[b.index()]
                    .iter()
                    .map(|&id| (self.broadcasts.seq(id).expect("indexed broadcast live"), id)),
            );
        }
        batch.sort_unstable();
        batch.dedup(); // a broadcast held by both endpoints appears twice
        let mut spreads = mem::take(&mut self.sx_spreads);
        spreads.clear();
        for &(_, id) in &batch {
            let Some(open) = self
                .broadcasts
                .get(id)
                .map(|bc| ctx.query_is_open(bc.query.id))
            else {
                continue;
            };
            if !open {
                self.remove_broadcast(id);
                continue;
            }
            let bc = self.broadcasts.get(id).expect("live");
            for (from, to) in [(a, b), (b, a)] {
                if bc.holders.contains(&from)
                    && !bc.holders.contains(&to)
                    && (self.is_member(to, bc.ncl) || to == self.centrals[bc.ncl])
                {
                    spreads.push((id, to));
                }
            }
        }
        let mut decisions = mem::take(&mut self.sx_decisions);
        decisions.clear();
        for &(id, to) in &spreads {
            if !ctx.try_transmit(query_size) {
                continue;
            }
            let bc = self.broadcasts.get_mut(id).expect("live");
            bc.holders.insert(to);
            let (query, ncl) = (bc.query, bc.ncl);
            self.bcast_at[to.index()].push(id);
            if self.buffers[to.index()].contains(query.data) {
                decisions.push((query, to, ncl));
            }
            self.log(ProtocolEvent::BroadcastSpread {
                at: ctx.now(),
                query: query.id,
                node: to,
            });
        }
        for &(query, node, ncl) in &decisions {
            let before = self.responses.len();
            self.maybe_respond(ctx, query, node);
            if self.responses.len() > before {
                if let Some(slot) = self.ncl_response_load.get_mut(ncl) {
                    *slot += 1;
                }
            }
        }
        decisions.clear();
        self.sx_decisions = decisions;
        spreads.clear();
        self.sx_spreads = spreads;
        batch.clear();
        self.sx_batch = batch;
    }

    /// §V-C: one response decision per (query, caching node).
    fn maybe_respond(&mut self, ctx: &mut SimCtx<'_>, query: Query, node: NodeId) {
        match self.responded.entry(query.id) {
            Entry::Occupied(mut o) => {
                if !o.get_mut().insert(node) {
                    return; // already decided
                }
            }
            Entry::Vacant(v) => {
                v.insert(HashSet::from([node]));
                self.responded_gc
                    .push(Reverse((query.expires_at, query.id)));
            }
        }
        let remaining = query.remaining(ctx.now());
        if remaining == Duration::ZERO {
            return;
        }
        let probability = match self.cfg.response {
            ResponseStrategy::Sigmoid { p_min, p_max } => {
                match ResponseFunction::new(p_min, p_max, query.constraint()) {
                    Ok(f) => f.probability(remaining),
                    Err(_) => p_max.clamp(0.0, 1.0),
                }
            }
            ResponseStrategy::PathAware => {
                let oracle = self.oracle.as_mut().expect("configured");
                let table = oracle.table(ctx.rate_table(), ctx.now(), node);
                table
                    .path_to(query.requester)
                    .map_or(0.0, |p| p.weight(remaining.as_secs_f64()))
            }
        };
        let pop = self.registry.popularity(query.data, ctx.now());
        let size = self.registry.get(query.data).map_or(1, |d| d.size);
        if ctx.rng().gen_bool(probability.clamp(0.0, 1.0)) {
            self.meta[node.index()].on_use(query.data, ctx.now(), pop, size);
            self.spawn_response(ctx, query, node);
        }
    }

    fn spawn_response(&mut self, ctx: &mut SimCtx<'_>, query: Query, from: NodeId) {
        self.log(ProtocolEvent::ResponseSpawned {
            at: ctx.now(),
            query: query.id,
            node: from,
        });
        if from == query.requester {
            ctx.mark_delivered(query.id);
            self.log(ProtocolEvent::Delivered {
                at: ctx.now(),
                query: query.id,
            });
            return;
        }
        let Some(&item) = self.registry.get(query.data) else {
            return;
        };
        let mut msg = RoutedMessage::new(query.requester, item.size, from);
        if let ForwardingStrategy::SprayAndWait { initial_copies } = self.cfg.response_routing {
            msg = msg.with_copy_budget(initial_copies);
        }
        let (id, seq) = self.responses.insert(ResponseInFlight { query, msg });
        self.resp_at[from.index()].push(id);
        self.pending_gc
            .push(Reverse((query.expires_at, GC_RESP, id, seq)));
    }

    /// Return cached data copies to their requesters using the
    /// configured forwarding strategy (§V-B).
    fn advance_responses(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let mut batch = mem::take(&mut self.sx_batch);
        batch.clear();
        batch.extend(
            self.resp_at[a.index()]
                .iter()
                .map(|&id| (self.responses.seq(id).expect("indexed response live"), id)),
        );
        if b != a {
            batch.extend(
                self.resp_at[b.index()]
                    .iter()
                    .map(|&id| (self.responses.seq(id).expect("indexed response live"), id)),
            );
        }
        batch.sort_unstable();
        batch.dedup(); // multi-copy responses may be carried by both ends
        let mut process = mem::take(&mut self.sx_process);
        process.clear();
        for &(_, id) in &batch {
            let Some(resp) = self.responses.get(id) else {
                continue;
            };
            if ctx.query_is_open(resp.query.id) {
                process.push(id);
            } else {
                self.remove_response(id);
            }
        }
        let strategy = self.cfg.response_routing;
        let mut delivered = mem::take(&mut self.sx_delivered);
        delivered.clear();
        {
            let oracle = self.oracle.as_mut().expect("configured");
            let mut link = ctx.link_access();
            for &id in &process {
                let resp = self.responses.get_mut(id).expect("live");
                let had_a = resp.msg.carries(a);
                let had_b = resp.msg.carries(b);
                let done = resp
                    .msg
                    .on_contact_fast(strategy, oracle, now, a, b, &mut link);
                let has_a = resp.msg.carries(a);
                let has_b = resp.msg.carries(b);
                let query = resp.query.id;
                if had_a != has_a {
                    if has_a {
                        self.resp_at[a.index()].push(id);
                    } else {
                        remove_u32(&mut self.resp_at[a.index()], id);
                    }
                }
                if b != a && had_b != has_b {
                    if has_b {
                        self.resp_at[b.index()].push(id);
                    } else {
                        remove_u32(&mut self.resp_at[b.index()], id);
                    }
                }
                if done {
                    delivered.push((id, query));
                }
            }
        }
        let at = ctx.now();
        for &(id, query) in &delivered {
            if matches!(
                ctx.mark_delivered(query),
                dtn_sim::engine::DeliveryOutcome::Accepted { .. }
            ) {
                self.log(ProtocolEvent::Delivered { at, query });
            }
            self.remove_response(id);
        }
        delivered.clear();
        self.sx_delivered = delivered;
        process.clear();
        self.sx_process = process;
        batch.clear();
        self.sx_batch = batch;
    }

    /// §V-D: contact-time cache replacement between two caching nodes.
    ///
    /// The exchange is scoped per NCL: each NCL keeps (at most) one copy
    /// of each data item among its connected set of caching nodes, and
    /// the exchange re-places those copies so the node nearer the
    /// central node ends up with the more popular data. Items are only
    /// removed from the network when no participant can hold them
    /// ("in cases of limited cache space, some cached data with lower
    /// popularity may be removed", §V-D-2).
    ///
    /// When a previous meeting of this pair found every NCL pool empty
    /// and neither node's copy state or buffer changed since (dirty
    /// generations match), the whole exchange is provably a no-op — the
    /// reference implementation returns before any oracle or RNG use on
    /// empty pools — and is skipped.
    fn exchange_caches(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        if self.cfg.replacement != ReplacementKind::UtilityKnapsack {
            return;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        let gens = (
            self.cache_gen[key.0.index()],
            self.cache_gen[key.1.index()],
            self.buffers[key.0.index()].generation(),
            self.buffers[key.1.index()].generation(),
        );
        if self.pair_clean.get(&key) == Some(&gens) {
            return;
        }
        let now = ctx.now();
        let mut all_empty = true;
        for k in 0..self.centrals.len() {
            if !self.exchange_ncl(ctx, a, b, k, now) {
                all_empty = false;
            }
        }
        if all_empty {
            self.pair_clean.insert(key, gens);
        } else {
            self.pair_clean.remove(&key);
        }
    }

    /// Runs the §V-D exchange for NCL `k`. Returns whether the pooled
    /// item set was empty (used for the pair-skip memo).
    fn exchange_ncl(
        &mut self,
        ctx: &mut SimCtx<'_>,
        a: NodeId,
        b: NodeId,
        k: usize,
        now: Time,
    ) -> bool {
        // Pool the settled copies of NCL k held by either node, skipping
        // copies whose physical bytes are pinned by another NCL's tag at
        // the same node (they are not free to move). Candidates come
        // from the per-holder indexes, sorted by data id to match the
        // reference implementation's copy-table iteration order.
        let mut cand = mem::take(&mut self.sx_push_batch);
        cand.clear();
        for &(data, kk) in &self.settled_at[a.index()] {
            if kk as usize == k {
                cand.push((data, a.0));
            }
        }
        if b != a {
            for &(data, kk) in &self.settled_at[b.index()] {
                if kk as usize == k {
                    cand.push((data, b.0));
                }
            }
        }
        cand.sort_unstable();
        let mut pool = mem::take(&mut self.sx_pool);
        pool.clear();
        for &(data, holder_raw) in &cand {
            let holder = NodeId(holder_raw);
            let Some(&item) = self.registry.get(data) else {
                continue;
            };
            if !item.is_alive(now) {
                continue;
            }
            let states = self.copies.get(&data).expect("settled copy is tracked");
            let pinned = states
                .iter()
                .enumerate()
                .any(|(j, s)| j != k && s.holder() == Some(holder));
            if !pinned {
                pool.push((item, holder));
            }
        }
        cand.clear();
        self.sx_push_batch = cand;
        if pool.is_empty() {
            self.sx_pool = pool;
            return true;
        }
        // Nothing to optimise if only one node participates and already
        // holds everything — still run when both hold copies or the
        // better-placed node differs.
        let central = self.centrals[k];
        let oracle = self.oracle.as_mut().expect("configured");
        let wa = oracle.weight(ctx.rate_table(), now, a, central);
        let wb = oracle.weight(ctx.rate_table(), now, b, central);
        let (first, second) = if wa >= wb { (a, b) } else { (b, a) };

        // Extract the pooled physical copies, remembering prior holders.
        for (item, holder) in &pool {
            self.buffers[holder.index()].remove(item.id);
            self.meta[holder.index()].on_remove(item.id);
        }

        let mut items = mem::take(&mut self.sx_items);
        items.clear();
        items.extend(pool.iter().map(|(d, _)| CacheItem {
            size: d.size,
            utility: self.registry.popularity(d.id, now),
        }));

        // Algorithm 1 (or the deterministic basic strategy when
        // ablated) for the better-placed node, then the remainder for
        // the other. The solver reuses its DP scratch across calls.
        let cap_first = self.buffers[first.index()].free();
        let mut chosen_first = mem::take(&mut self.sx_chosen);
        chosen_first.clear();
        if self.cfg.probabilistic_selection {
            chosen_first.extend_from_slice(self.solver.probabilistic_select_in(
                &items,
                cap_first,
                ctx.rng(),
            ));
        } else {
            chosen_first.extend_from_slice(&self.solver.solve_in(&items, cap_first).indices);
        }
        let mut in_first = mem::take(&mut self.sx_in_first);
        in_first.clear();
        in_first.resize(items.len(), false);
        for &i in &chosen_first {
            in_first[i] = true;
        }
        let mut rest = mem::take(&mut self.sx_rest);
        rest.clear();
        rest.extend((0..items.len()).filter(|&i| !in_first[i]));
        let mut rest_items = mem::take(&mut self.sx_rest_items);
        rest_items.clear();
        rest_items.extend(rest.iter().map(|&i| items[i]));
        let cap_second = self.buffers[second.index()].free();
        let mut in_second = mem::take(&mut self.sx_in_second);
        in_second.clear();
        in_second.resize(items.len(), false);
        {
            let chosen_second: &[usize] = if self.cfg.probabilistic_selection {
                self.solver
                    .probabilistic_select_in(&rest_items, cap_second, ctx.rng())
            } else {
                &self.solver.solve_in(&rest_items, cap_second).indices
            };
            for &j in chosen_second {
                in_second[rest[j]] = true;
            }
        }

        let mut moves = 0u64;
        for (i, &(item, prior_holder)) in pool.iter().enumerate() {
            let target = if in_first[i] {
                Some(first)
            } else if in_second[i] {
                Some(second)
            } else {
                None
            };
            // Preference: knapsack target, then where it was before.
            let fallback = if target == Some(prior_holder) {
                None
            } else {
                Some(prior_holder)
            };
            let mut placed = false;
            for node in [target, fallback].into_iter().flatten() {
                let moved = node != prior_holder;
                // Moving needs bandwidth unless the bytes are already
                // there via another NCL's copy.
                let needs_transfer = moved && !self.buffers[node.index()].contains(item.id);
                if needs_transfer && !ctx.try_transmit(item.size) {
                    continue; // contact too short to carry the move
                }
                if self.buffers[node.index()].insert(item).is_ok() {
                    let pop = self.registry.popularity(item.id, now);
                    self.meta[node.index()].on_insert(item.id, now, pop, item.size);
                    self.set_copy(item.id, k, CopyState::Settled(node));
                    if moved {
                        moves += 1;
                    }
                    placed = true;
                    break;
                }
            }
            if !placed {
                self.set_copy(item.id, k, CopyState::Dropped);
                moves += 1;
            }
        }
        ctx.note_replacements(moves);

        pool.clear();
        self.sx_pool = pool;
        items.clear();
        self.sx_items = items;
        chosen_first.clear();
        self.sx_chosen = chosen_first;
        in_first.clear();
        self.sx_in_first = in_first;
        rest.clear();
        self.sx_rest = rest;
        rest_items.clear();
        self.sx_rest_items = rest_items;
        in_second.clear();
        self.sx_in_second = in_second;
        false
    }
}

impl Scheme for IntentionalScheme {
    fn on_data_generated(&mut self, ctx: &mut SimCtx<'_>, item: DataItem) {
        if !self.configured() {
            return;
        }
        self.registry.register(item);
        self.data_gc.push(Reverse((item.expires_at, item.id)));
        // The source holds one physical copy and owes one to each NCL.
        let k_count = self.centrals.len();
        if self.insert_physical(ctx, item.source, item) {
            self.copies
                .insert(item.id, vec![CopyState::Carried(item.source); k_count]);
            let src = item.source.index();
            for k in 0..k_count {
                self.carried_at[src].push((item.id, k as u32));
                self.member_count[src][k] += 1;
            }
            self.cache_gen[src] += 1;
        } else {
            // The item never fits anywhere; it is lost.
            self.copies
                .insert(item.id, vec![CopyState::Dropped; k_count]);
        }
    }

    fn on_query_issued(&mut self, ctx: &mut SimCtx<'_>, query: Query) {
        if !self.configured() {
            return;
        }
        self.registry.record_request(query.data, ctx.now());
        // Local hit: the requester happens to cache the data already.
        if self.buffers[query.requester.index()].contains(query.data) {
            ctx.mark_delivered(query.id);
            self.log(ProtocolEvent::Delivered {
                at: ctx.now(),
                query: query.id,
            });
            return;
        }
        let centrals = self.centrals.clone();
        for (k, &central) in centrals.iter().enumerate() {
            if central == query.requester {
                self.handle_query_at_central(ctx, query, k);
            } else {
                let (id, seq) = self.pulls.insert(PullCopy {
                    query,
                    ncl: k,
                    carrier: query.requester,
                });
                self.pull_at[query.requester.index()].push(id);
                self.pending_gc
                    .push(Reverse((query.expires_at, GC_PULL, id, seq)));
            }
        }
    }

    fn on_contact(&mut self, ctx: &mut SimCtx<'_>, contact: Contact) {
        if !self.configured() {
            return;
        }
        let (a, b) = (contact.a, contact.b);
        self.prune(ctx);
        self.advance_pushes(ctx, a, b);
        self.advance_pulls(ctx, a, b);
        self.advance_broadcasts(ctx, a, b);
        self.advance_responses(ctx, a, b);
        self.exchange_caches(ctx, a, b);
    }

    fn cache_stats(&self, now: Time) -> CacheStats {
        let mut copies = 0u64;
        let mut bytes = 0u64;
        let mut distinct = HashSet::new();
        for buf in &self.buffers {
            for item in buf.iter().filter(|d| d.is_alive(now)) {
                copies += 1;
                bytes += item.size;
                distinct.insert(item.id);
            }
        }
        CacheStats {
            copies,
            distinct: distinct.len() as u64,
            bytes,
        }
    }
}

impl CachingScheme for IntentionalScheme {
    fn configure(&mut self, setup: &NetworkSetup<'_>) {
        let graph = dtn_core::graph::ContactGraph::from_rate_table(setup.rate_table, setup.now);
        let scores = dtn_core::ncl::select_by_strategy(
            &graph,
            self.cfg.ncl_count,
            setup.horizon,
            self.cfg.ncl_selection,
        );
        self.centrals = scores.iter().map(|s| s.node).collect();
        self.ncl_query_load = vec![0; self.centrals.len()];
        self.ncl_response_load = vec![0; self.centrals.len()];
        self.oracle = Some(PathOracle::new(
            setup.capacities.len(),
            setup.horizon,
            self.cfg.path_refresh,
        ));
        self.buffers = setup.capacities.iter().map(|&c| Buffer::new(c)).collect();
        self.meta = setup
            .capacities
            .iter()
            .map(|_| NodeCacheMeta::default())
            .collect();
        let n = setup.capacities.len();
        self.copies.clear();
        self.pulls.clear();
        self.broadcasts.clear();
        self.responses.clear();
        self.pull_at = vec![Vec::new(); n];
        self.bcast_at = vec![Vec::new(); n];
        self.resp_at = vec![Vec::new(); n];
        self.carried_at = vec![Vec::new(); n];
        self.settled_at = vec![Vec::new(); n];
        self.member_count = vec![vec![0; self.centrals.len()]; n];
        self.cache_gen = vec![0; n];
        self.pair_clean.clear();
        self.pending_gc.clear();
        self.data_gc.clear();
        self.responded.clear();
        self.responded_gc.clear();
    }

    fn central_nodes(&self) -> &[NodeId] {
        &self.centrals
    }

    fn ncl_query_load(&self) -> &[u64] {
        &self.ncl_query_load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceIntentionalScheme;
    use dtn_core::time::Duration;
    use dtn_sim::engine::{SimConfig, Simulator, WorkloadEvent};
    use dtn_trace::synthetic::SyntheticTraceBuilder;
    use dtn_trace::trace::ContactTrace;

    fn run_scheme<S: CachingScheme>(
        trace: &ContactTrace,
        scheme: S,
        events: Vec<WorkloadEvent>,
        sim_cfg: SimConfig,
    ) -> dtn_sim::metrics::Metrics {
        let mut sim = Simulator::new(trace, scheme, sim_cfg);
        let mid = trace.midpoint();
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..trace.node_count() as u32)
            .map(|n| sim.buffer_capacity(NodeId(n)))
            .collect();
        let rate_table = sim.rate_table().clone();
        let setup = NetworkSetup {
            rate_table: &rate_table,
            now: mid,
            capacities,
            horizon: 3600.0,
        };
        sim.scheme_mut().configure(&setup);
        sim.add_workload(events);
        sim.run_to_end();
        sim.metrics().clone()
    }

    fn run_intentional(
        trace: &ContactTrace,
        cfg: IntentionalConfig,
        events: Vec<WorkloadEvent>,
        seed: u64,
    ) -> (dtn_sim::metrics::Metrics, Vec<NodeId>) {
        let sim_cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(trace, IntentionalScheme::new(cfg), sim_cfg);
        let mid = trace.midpoint();
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..trace.node_count() as u32)
            .map(|n| sim.buffer_capacity(NodeId(n)))
            .collect();
        let rate_table = sim.rate_table().clone();
        let setup = NetworkSetup {
            rate_table: &rate_table,
            now: mid,
            capacities,
            horizon: 3600.0,
        };
        sim.scheme_mut().configure(&setup);
        let centrals = sim.scheme().central_nodes().to_vec();
        sim.add_workload(events);
        sim.run_to_end();
        (sim.metrics().clone(), centrals)
    }

    fn busy_trace(seed: u64) -> ContactTrace {
        SyntheticTraceBuilder::new(16)
            .duration(Duration::days(2))
            .target_contacts(6_000)
            .seed(seed)
            .build()
    }

    fn gen_event(id: u64, source: u32, size: u64, at: Time, life: Duration) -> WorkloadEvent {
        WorkloadEvent::GenerateData {
            item: DataItem::new(DataId(id), NodeId(source), size, at, life),
        }
    }

    fn mixed_workload(trace: &ContactTrace, items: u64, size: u64) -> Vec<WorkloadEvent> {
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = Vec::new();
        for i in 0..items {
            events.push(gen_event(
                i,
                (i % 16) as u32,
                size,
                mid + Duration::minutes(i),
                life,
            ));
        }
        for i in 0..items {
            events.push(WorkloadEvent::IssueQuery {
                at: mid + Duration::hours(1) + Duration::minutes(i),
                requester: NodeId(((i + 5) % 16) as u32),
                data: DataId(i),
                constraint: Duration::hours(12),
            });
        }
        events
    }

    #[test]
    fn configure_selects_k_centrals() {
        let trace = busy_trace(1);
        let (_, centrals) = run_intentional(
            &trace,
            IntentionalConfig {
                ncl_count: 3,
                ..IntentionalConfig::default()
            },
            Vec::new(),
            1,
        );
        assert_eq!(centrals.len(), 3);
        let distinct: HashSet<_> = centrals.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn queries_get_satisfied_end_to_end() {
        let trace = busy_trace(2);
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = vec![gen_event(0, 3, 1000, mid + Duration::minutes(1), life)];
        for n in 0..16u32 {
            if n != 3 {
                events.push(WorkloadEvent::IssueQuery {
                    at: mid + Duration::hours(2),
                    requester: NodeId(n),
                    data: DataId(0),
                    constraint: Duration::hours(12),
                });
            }
        }
        let (metrics, _) = run_intentional(
            &trace,
            IntentionalConfig {
                ncl_count: 3,
                ..IntentionalConfig::default()
            },
            events,
            2,
        );
        assert_eq!(metrics.queries_issued, 15);
        assert!(
            metrics.queries_satisfied >= 8,
            "only {}/15 satisfied",
            metrics.queries_satisfied
        );
        assert!(metrics.avg_delay() > Duration::ZERO);
    }

    #[test]
    fn data_gets_pushed_away_from_source() {
        let trace = busy_trace(3);
        let mid = trace.midpoint();
        let events = vec![gen_event(
            0,
            5,
            1000,
            mid + Duration::minutes(1),
            Duration::days(1),
        )];
        let (metrics, _) = run_intentional(
            &trace,
            IntentionalConfig {
                ncl_count: 4,
                ..IntentionalConfig::default()
            },
            events,
            3,
        );
        // Pushing to 4 NCLs must replicate the item beyond the source.
        let last = metrics.samples.iter().rev().find(|s| s.distinct > 0);
        let copies = last.map_or(0, |s| s.copies);
        assert!(copies >= 2, "expected ≥2 cached copies, got {copies}");
        assert!(metrics.bytes_transmitted > 0);
    }

    #[test]
    fn unconfigured_scheme_ignores_events_gracefully() {
        let trace = busy_trace(4);
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig::default()),
            SimConfig::default(),
        );
        sim.add_workload(vec![gen_event(0, 1, 10, Time(10), Duration::days(1))]);
        sim.run_to_end();
        assert_eq!(sim.metrics().bytes_transmitted, 0);
    }

    #[test]
    fn zero_size_queries_do_not_block_on_capacity() {
        // Even with a tiny data item the scheme works with default cfg.
        let trace = busy_trace(5);
        let mid = trace.midpoint();
        let events = vec![
            gen_event(0, 1, 1, mid + Duration::minutes(1), Duration::days(1)),
            WorkloadEvent::IssueQuery {
                at: mid + Duration::hours(1),
                requester: NodeId(9),
                data: DataId(0),
                constraint: Duration::hours(20),
            },
        ];
        let (metrics, _) = run_intentional(&trace, IntentionalConfig::default(), events, 5);
        assert_eq!(metrics.queries_issued, 1);
    }

    #[test]
    fn requester_holding_data_is_satisfied_instantly() {
        let trace = busy_trace(6);
        let mid = trace.midpoint();
        // Source queries its own data: local hit with zero delay.
        let events = vec![
            gen_event(0, 2, 1000, mid + Duration::minutes(1), Duration::days(1)),
            WorkloadEvent::IssueQuery {
                at: mid + Duration::minutes(2),
                requester: NodeId(2),
                data: DataId(0),
                constraint: Duration::hours(10),
            },
        ];
        let (metrics, _) = run_intentional(&trace, IntentionalConfig::default(), events, 6);
        // Either the copy is still at the source (instant hit) or it was
        // pushed away — in a 1-minute window it must still be there.
        assert_eq!(metrics.queries_satisfied, 1);
        assert_eq!(metrics.total_delay_secs, 0);
    }

    #[test]
    fn tight_buffers_still_function_with_knapsack_replacement() {
        let trace = busy_trace(7);
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = Vec::new();
        // Many items of 1/3 buffer size → replacement pressure.
        for i in 0..12u64 {
            events.push(gen_event(
                i,
                (i % 16) as u32,
                400,
                mid + Duration::minutes(i),
                life,
            ));
        }
        for i in 0..12u64 {
            events.push(WorkloadEvent::IssueQuery {
                at: mid + Duration::hours(1),
                requester: NodeId(((i + 5) % 16) as u32),
                data: DataId(i),
                constraint: Duration::hours(12),
            });
        }
        let sim_cfg = SimConfig {
            buffer_range: (1000, 1200),
            seed: 7,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig {
                ncl_count: 2,
                ..IntentionalConfig::default()
            }),
            sim_cfg,
        );
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..16u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
        });
        sim.add_workload(events);
        sim.run_to_end();
        let m = sim.metrics();
        assert!(m.queries_satisfied > 0, "nothing satisfied under pressure");
        // Buffers must never be over-committed.
        for buf in &sim.scheme().buffers {
            assert!(buf.used() <= buf.capacity());
        }
        sim.scheme().validate().expect("indexes stay consistent");
    }

    #[test]
    fn traditional_replacement_evicts_and_counts() {
        let trace = busy_trace(8);
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = Vec::new();
        for i in 0..10u64 {
            events.push(gen_event(
                i,
                (i % 16) as u32,
                700,
                mid + Duration::minutes(i),
                life,
            ));
        }
        let sim_cfg = SimConfig {
            buffer_range: (1000, 1100),
            seed: 8,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig {
                ncl_count: 2,
                replacement: ReplacementKind::Lru,
                ..IntentionalConfig::default()
            }),
            sim_cfg,
        );
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..16u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
        });
        sim.add_workload(events);
        sim.run_to_end();
        assert!(
            sim.metrics().replacement_ops > 0,
            "LRU under pressure must evict"
        );
    }

    #[test]
    fn ncl_query_load_accumulates_per_central() {
        let trace = busy_trace(9);
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = vec![gen_event(0, 3, 1000, mid + Duration::minutes(1), life)];
        for n in 0..16u32 {
            if n != 3 {
                events.push(WorkloadEvent::IssueQuery {
                    at: mid + Duration::hours(2),
                    requester: NodeId(n),
                    data: DataId(0),
                    constraint: Duration::hours(12),
                });
            }
        }
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig {
                ncl_count: 3,
                ..IntentionalConfig::default()
            }),
            SimConfig {
                seed: 9,
                ..SimConfig::default()
            },
        );
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..16u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
        });
        sim.add_workload(events);
        sim.run_to_end();
        let load = sim.scheme().ncl_query_load();
        assert_eq!(load.len(), 3);
        let total: u64 = load.iter().sum();
        // Each of the 15 queries multicasts to 3 NCLs; most arrive.
        assert!(total > 15, "only {total} central arrivals");
        assert!(total <= 45);
        // Load is spread, not all on one NCL.
        assert!(
            load.iter().filter(|&&l| l > 0).count() >= 2,
            "load {load:?}"
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = IntentionalConfig::default();
        assert_eq!(cfg.ncl_count, 8);
        assert_eq!(cfg.replacement, ReplacementKind::UtilityKnapsack);
        assert_eq!(
            cfg.response,
            ResponseStrategy::Sigmoid {
                p_min: 0.45,
                p_max: 0.8
            }
        );
    }

    #[test]
    fn matches_reference_scheme_bit_for_bit() {
        // The indexed-queue engine must reproduce the retain-sweep
        // reference implementation exactly: same RNG draws, same link
        // charges, same metrics. The broader randomized suite lives in
        // tests/scheme_equivalence.rs; this is the fast smoke check.
        for seed in [11u64, 12, 13] {
            let trace = busy_trace(seed);
            let cfg = IntentionalConfig {
                ncl_count: 3,
                ..IntentionalConfig::default()
            };
            let events = mixed_workload(&trace, 10, 900);
            let sim_cfg = SimConfig {
                seed,
                ..SimConfig::default()
            };
            let fast = run_scheme(
                &trace,
                IntentionalScheme::new(cfg.clone()),
                events.clone(),
                sim_cfg.clone(),
            );
            let reference = run_scheme(
                &trace,
                ReferenceIntentionalScheme::new(cfg),
                events,
                sim_cfg,
            );
            assert_eq!(fast, reference, "seed {seed} diverged from reference");
        }
    }

    #[test]
    fn matches_reference_under_replacement_pressure() {
        // Tight buffers force evictions, knapsack exchanges and push
        // settles — the paths with the trickiest index bookkeeping.
        let trace = busy_trace(14);
        let cfg = IntentionalConfig {
            ncl_count: 2,
            ..IntentionalConfig::default()
        };
        let events = mixed_workload(&trace, 12, 400);
        let sim_cfg = SimConfig {
            buffer_range: (1000, 1200),
            seed: 14,
            ..SimConfig::default()
        };
        let fast = run_scheme(
            &trace,
            IntentionalScheme::new(cfg.clone()),
            events.clone(),
            sim_cfg.clone(),
        );
        let reference = run_scheme(
            &trace,
            ReferenceIntentionalScheme::new(cfg),
            events,
            sim_cfg,
        );
        assert_eq!(fast, reference);
    }
}
