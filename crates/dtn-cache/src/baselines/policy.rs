//! The concrete caching rules of the four baseline schemes.

use dtn_sim::message::DataItem;

use super::{IncidentalPolicy, PolicyCtx};

/// **NoCache** (§VI): "caching is not used for data access, and each
/// query result is returned only by the data source."
///
/// Only the source's own items ever sit in a buffer; eviction order is
/// oldest-created first (effectively FIFO over the node's own data).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCachePolicy;

impl IncidentalPolicy for NoCachePolicy {
    fn cache_at_requester(&self) -> bool {
        false
    }
    fn cache_passby(&self, _item: &DataItem, _ctx: PolicyCtx<'_>) -> bool {
        false
    }
    fn eviction_score(&self, item: &DataItem, _ctx: PolicyCtx<'_>) -> f64 {
        item.created_at.as_secs_f64()
    }
}

/// **RandomCache** (§VI): "every requester caches the received data to
/// facilitate data access in the future", with LRU replacement.
///
/// Recency is approximated by the item's creation time plus its locally
/// observed request count — requesters blindly keep what they fetched
/// most recently.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomCachePolicy;

impl IncidentalPolicy for RandomCachePolicy {
    fn cache_at_requester(&self) -> bool {
        true
    }
    fn cache_passby(&self, _item: &DataItem, _ctx: PolicyCtx<'_>) -> bool {
        false
    }
    fn eviction_score(&self, item: &DataItem, _ctx: PolicyCtx<'_>) -> f64 {
        // LRU stand-in: newer items score higher (evicted later).
        item.created_at.as_secs_f64()
    }
}

/// **CacheData** \[29\]: relays on the forwarding path cache pass-by
/// data "according to their popularity" — but in a DTN a relay only
/// knows the queries it personally carried, which is exactly why the
/// paper finds it ineffective here (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheDataPolicy {
    /// A relay caches a pass-by item once it has locally seen at least
    /// this many queries for it.
    pub popularity_threshold: u32,
}

impl Default for CacheDataPolicy {
    fn default() -> Self {
        CacheDataPolicy {
            popularity_threshold: 2,
        }
    }
}

impl IncidentalPolicy for CacheDataPolicy {
    fn cache_at_requester(&self) -> bool {
        false
    }
    fn cache_passby(&self, item: &DataItem, ctx: PolicyCtx<'_>) -> bool {
        let seen = ctx
            .local_seen
            .get(&(ctx.node, item.id))
            .copied()
            .unwrap_or(0);
        seen >= self.popularity_threshold
    }
    fn eviction_score(&self, item: &DataItem, ctx: PolicyCtx<'_>) -> f64 {
        f64::from(
            ctx.local_seen
                .get(&(ctx.node, item.id))
                .copied()
                .unwrap_or(0),
        )
    }
}

/// **BundleCache** \[23\]: relays cache pass-by bundles "by considering
/// the node contact pattern in DTNs, so as to minimize the average data
/// access delay" — the caching utility weights locally observed
/// popularity by how well-connected the caching node itself is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BundleCachePolicy {
    /// Contact rate (contacts/sec) at which a node counts as fully
    /// connected; utilities saturate above it. Default: one contact per
    /// 10 minutes.
    pub reference_contact_rate: f64,
}

impl Default for BundleCachePolicy {
    fn default() -> Self {
        BundleCachePolicy {
            reference_contact_rate: 1.0 / 600.0,
        }
    }
}

impl BundleCachePolicy {
    fn utility(&self, item: &DataItem, ctx: PolicyCtx<'_>) -> f64 {
        let seen = f64::from(
            ctx.local_seen
                .get(&(ctx.node, item.id))
                .copied()
                .unwrap_or(0),
        );
        let connectivity = (ctx.contact_rate / self.reference_contact_rate).min(1.0);
        // +1 so that even unseen data has a connectivity-driven utility:
        // well-connected relays opportunistically keep pass-by bundles.
        (seen + 1.0) * connectivity
    }
}

impl IncidentalPolicy for BundleCachePolicy {
    fn cache_at_requester(&self) -> bool {
        false
    }
    fn cache_passby(&self, item: &DataItem, ctx: PolicyCtx<'_>) -> bool {
        self.utility(item, ctx) > 0.25
    }
    fn eviction_score(&self, item: &DataItem, ctx: PolicyCtx<'_>) -> f64 {
        self.utility(item, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::ids::{DataId, NodeId};
    use dtn_core::time::{Duration, Time};
    use std::collections::HashMap;

    fn item(id: u64) -> DataItem {
        DataItem::new(DataId(id), NodeId(0), 100, Time(50), Duration(1000))
    }

    fn pctx<'a>(
        node: u32,
        seen: &'a HashMap<(NodeId, DataId), u32>,
        contact_rate: f64,
    ) -> PolicyCtx<'a> {
        PolicyCtx {
            node: NodeId(node),
            now: Time(100),
            local_seen: seen,
            contact_rate,
        }
    }

    #[test]
    fn no_cache_never_caches() {
        let seen = HashMap::new();
        let p = NoCachePolicy;
        assert!(!p.cache_at_requester());
        assert!(!p.cache_passby(&item(1), pctx(2, &seen, 0.01)));
    }

    #[test]
    fn random_cache_caches_at_requester_only() {
        let seen = HashMap::new();
        let p = RandomCachePolicy;
        assert!(p.cache_at_requester());
        assert!(!p.cache_passby(&item(1), pctx(2, &seen, 0.01)));
    }

    #[test]
    fn cache_data_needs_local_popularity() {
        let mut seen = HashMap::new();
        let p = CacheDataPolicy::default();
        assert!(!p.cache_passby(&item(1), pctx(2, &seen, 0.01)));
        seen.insert((NodeId(2), DataId(1)), 2);
        assert!(p.cache_passby(&item(1), pctx(2, &seen, 0.01)));
        // A different node's history does not help.
        assert!(!p.cache_passby(&item(1), pctx(3, &seen, 0.01)));
    }

    #[test]
    fn cache_data_evicts_least_locally_popular() {
        let mut seen = HashMap::new();
        seen.insert((NodeId(2), DataId(1)), 5);
        seen.insert((NodeId(2), DataId(2)), 1);
        let p = CacheDataPolicy::default();
        let s1 = p.eviction_score(&item(1), pctx(2, &seen, 0.01));
        let s2 = p.eviction_score(&item(2), pctx(2, &seen, 0.01));
        assert!(s1 > s2, "more popular data must score higher");
    }

    #[test]
    fn bundle_cache_prefers_connected_nodes() {
        let seen = HashMap::new();
        let p = BundleCachePolicy::default();
        let hub = p.eviction_score(&item(1), pctx(2, &seen, 1.0 / 60.0));
        let loner = p.eviction_score(&item(1), pctx(2, &seen, 1.0 / 86_400.0));
        assert!(hub > loner);
        // A hub caches pass-by data even without query history...
        assert!(p.cache_passby(&item(1), pctx(2, &seen, 1.0 / 60.0)));
        // ...a poorly connected node does not.
        assert!(!p.cache_passby(&item(1), pctx(2, &seen, 1.0 / 86_400.0)));
    }

    #[test]
    fn bundle_cache_utility_grows_with_popularity() {
        let mut seen = HashMap::new();
        let p = BundleCachePolicy::default();
        let before = p.eviction_score(&item(1), pctx(2, &seen, 1.0 / 60.0));
        seen.insert((NodeId(2), DataId(1)), 4);
        let after = p.eviction_score(&item(1), pctx(2, &seen, 1.0 / 60.0));
        assert!(after > before);
    }
}
