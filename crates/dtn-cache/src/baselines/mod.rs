//! The four comparison schemes of §VI: NoCache, RandomCache,
//! CacheData \[29\] and BundleCache \[23\].
//!
//! All four share the same *incidental* structure — queries are
//! greedy-forwarded toward the data source, responses are forwarded back
//! to the requester, and whatever caching happens is a side effect of
//! messages passing by — so they are implemented as one generic engine
//! ([`IncidentalScheme`]) parameterised by an [`IncidentalPolicy`] that
//! encodes each paper's caching rule:
//!
//! | scheme        | who caches              | eviction order            |
//! |---------------|-------------------------|---------------------------|
//! | `NoCache`     | nobody (source only)    | LRU on the source buffer  |
//! | `RandomCache` | every requester         | LRU                       |
//! | `CacheData`   | relays, by local query popularity | least locally popular |
//! | `BundleCache` | relays, by popularity × own contact pattern | lowest utility |

mod policy;

pub use policy::{BundleCachePolicy, CacheDataPolicy, NoCachePolicy, RandomCachePolicy};

use std::collections::{HashMap, HashSet};
use std::mem;

use dtn_core::ids::{DataId, NodeId};
use dtn_core::time::Time;
use dtn_sim::buffer::Buffer;
use dtn_sim::engine::{CacheStats, Scheme, SimCtx};
use dtn_sim::message::{DataItem, Query};
use dtn_sim::oracle::PathOracle;
use dtn_sim::probe::ProbeEvent;
use dtn_trace::trace::Contact;

use crate::common::DataRegistry;
use crate::routing::{ForwardingStrategy, RoutedMessage};
use crate::{CachingScheme, NetworkSetup};

/// Per-node view a policy uses to score items.
#[derive(Debug, Clone, Copy)]
pub struct PolicyCtx<'a> {
    /// The node making the decision.
    pub node: NodeId,
    /// Current time.
    pub now: Time,
    /// Queries for each item this node has personally carried or seen —
    /// the only query history available without global coordination.
    pub local_seen: &'a HashMap<(NodeId, DataId), u32>,
    /// How often this node contacts others, per second (its long-term
    /// contact pattern).
    pub contact_rate: f64,
}

/// The caching rule distinguishing the four baselines.
pub trait IncidentalPolicy {
    /// Whether a requester caches data it receives.
    fn cache_at_requester(&self) -> bool;

    /// Whether a relay caches a pass-by data copy it just forwarded.
    fn cache_passby(&self, item: &DataItem, ctx: PolicyCtx<'_>) -> bool;

    /// Eviction score — the *lowest* score is evicted first. Return
    /// `None` to forbid eviction entirely (NoCache's source keeps its
    /// originals until expiry unless space is needed for its own new
    /// data).
    fn eviction_score(&self, item: &DataItem, ctx: PolicyCtx<'_>) -> f64;
}

/// A data copy traveling back to its requester.
#[derive(Debug, Clone)]
struct ResponseInFlight {
    query: dtn_sim::message::Query,
    msg: RoutedMessage,
}

/// A query traveling toward the data source.
#[derive(Debug, Clone)]
struct QueryInFlight {
    query: Query,
    msg: RoutedMessage,
    answered: bool,
}

/// Generic incidental caching scheme driven by a policy.
#[derive(Debug)]
pub struct IncidentalScheme<P> {
    policy: P,
    query_routing: ForwardingStrategy,
    response_routing: ForwardingStrategy,
    oracle: Option<PathOracle>,
    buffers: Vec<Buffer>,
    registry: DataRegistry,
    queries: Vec<QueryInFlight>,
    responses: Vec<ResponseInFlight>,
    local_seen: HashMap<(NodeId, DataId), u32>,
    /// Cumulative contacts per node, to estimate contact patterns.
    node_contacts: Vec<u64>,
    started_at: Time,
    // Reusable per-contact scratch buffers (logically empty between
    // contacts; kept to avoid re-allocation in the hot loop).
    sx_open: Vec<bool>,
    sx_respond: Vec<(Query, NodeId)>,
    sx_bumps: Vec<(NodeId, DataId)>,
    sx_delivered: Vec<dtn_core::ids::QueryId>,
    sx_passby: Vec<(NodeId, DataItem)>,
    sx_req_caches: Vec<(NodeId, DataItem)>,
}

impl<P: IncidentalPolicy> IncidentalScheme<P> {
    /// Creates an unconfigured scheme with the given policy and the
    /// greedy forwarding the paper's evaluation assumes.
    pub fn new(policy: P) -> Self {
        Self::with_routing(
            policy,
            ForwardingStrategy::Greedy,
            ForwardingStrategy::Greedy,
        )
    }

    /// Creates a scheme with explicit query/response forwarding
    /// strategies — e.g. epidemic/epidemic for a delivery upper bound.
    pub fn with_routing(
        policy: P,
        query_routing: ForwardingStrategy,
        response_routing: ForwardingStrategy,
    ) -> Self {
        IncidentalScheme {
            policy,
            query_routing,
            response_routing,
            oracle: None,
            buffers: Vec::new(),
            registry: DataRegistry::default(),
            queries: Vec::new(),
            responses: Vec::new(),
            local_seen: HashMap::new(),
            node_contacts: Vec::new(),
            started_at: Time::ZERO,
            sx_open: Vec::new(),
            sx_respond: Vec::new(),
            sx_bumps: Vec::new(),
            sx_delivered: Vec::new(),
            sx_passby: Vec::new(),
            sx_req_caches: Vec::new(),
        }
    }

    fn configured(&self) -> bool {
        self.oracle.is_some()
    }

    fn policy_ctx(&self, node: NodeId, now: Time) -> PolicyCtx<'_> {
        // No observation window yet → no rate estimate, matching
        // `RateEstimator::rate` (which returns `None` until time has
        // elapsed). The old `.max(1.0)` clamp instead reported the raw
        // contact count as a per-second rate at `now == started_at`,
        // inflating every node's contact pattern during warm-up.
        let elapsed = now.saturating_since(self.started_at).as_secs_f64();
        let contact_rate = if elapsed > 0.0 {
            self.node_contacts[node.index()] as f64 / elapsed
        } else {
            0.0
        };
        PolicyCtx {
            node,
            now,
            local_seen: &self.local_seen,
            contact_rate,
        }
    }

    /// Caches `item` at `node`, evicting lowest-score items if needed.
    fn cache_at(&mut self, ctx: &mut SimCtx<'_>, node: NodeId, item: DataItem) -> bool {
        let now = ctx.now();
        if self.buffers[node.index()].contains(item.id) {
            return true;
        }
        if item.size > self.buffers[node.index()].capacity() {
            return false;
        }
        while !self.buffers[node.index()].fits(item.size) {
            // Evict the lowest-scoring item, but never to make room for
            // something the policy scores even lower.
            let pctx = self.policy_ctx(node, now);
            let candidate = self.buffers[node.index()]
                .iter()
                .map(|d| (self.policy.eviction_score(d, pctx), d.id))
                .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            let Some((score, victim)) = candidate else {
                return false;
            };
            let new_score = self.policy.eviction_score(&item, pctx);
            if new_score <= score {
                return false;
            }
            self.buffers[node.index()].remove(victim);
            ctx.note_replacements(1);
            ctx.probe().emit(|| ProbeEvent::ReplacementEvicted {
                at: now,
                node,
                data: victim,
            });
        }
        self.buffers[node.index()].insert(item).is_ok()
    }

    fn prune(&mut self, ctx: &SimCtx<'_>) {
        let now = ctx.now();
        for buf in &mut self.buffers {
            buf.drop_expired(now);
        }
        self.queries.retain(|q| ctx.query_is_open(q.query.id));
        self.responses.retain(|r| ctx.query_is_open(r.query.id));
    }

    /// Answers `query` from `holder`'s copy (holder caches or sources
    /// the data).
    fn respond(&mut self, ctx: &mut SimCtx<'_>, query: &dtn_sim::message::Query, holder: NodeId) {
        let at = ctx.now();
        let query_id = query.id;
        ctx.probe().emit(|| ProbeEvent::ResponseSpawned {
            at,
            query: query_id,
            node: holder,
        });
        if holder == query.requester {
            ctx.mark_delivered(query.id);
            return;
        }
        let Some(&item) = self.registry.get(query.data) else {
            return;
        };
        self.responses.push(ResponseInFlight {
            query: *query,
            msg: RoutedMessage::new(query.requester, item.size, holder),
        });
    }

    fn advance_queries(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let mut open = mem::take(&mut self.sx_open);
        open.clear();
        open.extend(self.queries.iter().map(|q| ctx.query_is_open(q.query.id)));
        let strategy = self.query_routing;
        let oracle = self.oracle.as_mut().expect("configured");
        let mut to_respond = mem::take(&mut self.sx_respond);
        to_respond.clear();
        let mut seen_bumps = mem::take(&mut self.sx_bumps);
        seen_bumps.clear();
        // Relay hops observed this contact, replayed to the probe after
        // the link borrow ends (empty and alloc-free when no probe is
        // installed).
        let probing = ctx.probe_enabled();
        let mut relay_hops: Vec<(dtn_core::ids::QueryId, NodeId, NodeId)> = Vec::new();
        {
            let mut link = ctx.link_access();
            for (qc, is_open) in self.queries.iter_mut().zip(&open) {
                if !*is_open || qc.answered {
                    continue;
                }
                let out = qc.msg.on_contact(strategy, oracle, now, a, b, &mut link);
                if probing {
                    let query = qc.query.id;
                    relay_hops.extend(out.transfers.iter().map(|&(f, t)| (query, f, t)));
                }
                for &(_, to) in &out.transfers {
                    seen_bumps.push((to, qc.query.data));
                    // En-route hit: a new carrier holds the data.
                    if !qc.answered && self.buffers[to.index()].contains(qc.query.data) {
                        to_respond.push((qc.query, to));
                        qc.answered = true;
                    }
                }
                if out.delivered && !qc.answered {
                    // Reached the source: answer if the source still has
                    // the item (it may have expired).
                    let dest = qc.msg.destination();
                    if self.buffers[dest.index()].contains(qc.query.data) {
                        to_respond.push((qc.query, dest));
                    }
                    qc.answered = true;
                }
            }
        }
        for &(query, from, to) in &relay_hops {
            ctx.probe().emit(|| ProbeEvent::QueryRelay {
                at: now,
                query,
                from,
                to,
            });
        }
        for &(node, data) in &seen_bumps {
            *self.local_seen.entry((node, data)).or_insert(0) += 1;
        }
        for &(query, holder) in &to_respond {
            self.respond(ctx, &query, holder);
        }
        self.queries.retain(|q| !q.answered);
        seen_bumps.clear();
        self.sx_bumps = seen_bumps;
        to_respond.clear();
        self.sx_respond = to_respond;
        open.clear();
        self.sx_open = open;
    }

    fn advance_responses(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let mut open = mem::take(&mut self.sx_open);
        open.clear();
        open.extend(self.responses.iter().map(|r| ctx.query_is_open(r.query.id)));
        let response_routing = self.response_routing;
        let oracle = self.oracle.as_mut().expect("configured");
        let mut delivered = mem::take(&mut self.sx_delivered);
        delivered.clear();
        let mut passby = mem::take(&mut self.sx_passby);
        passby.clear();
        let mut requester_caches = mem::take(&mut self.sx_req_caches);
        requester_caches.clear();
        let probing = ctx.probe_enabled();
        let mut relay_hops: Vec<(dtn_core::ids::QueryId, NodeId, NodeId)> = Vec::new();
        {
            let mut link = ctx.link_access();
            for (resp, is_open) in self.responses.iter_mut().zip(&open) {
                if !*is_open {
                    continue;
                }
                let Some(&item) = self.registry.get(resp.query.data) else {
                    continue;
                };
                // Greedy delegation by default (the paper's evaluation);
                // the Flooding bound overrides this with Epidemic.
                let out = resp
                    .msg
                    .on_contact(response_routing, oracle, now, a, b, &mut link);
                if probing {
                    let query = resp.query.id;
                    relay_hops.extend(out.transfers.iter().map(|&(f, t)| (query, f, t)));
                }
                for &(_, to) in &out.transfers {
                    if to == resp.query.requester {
                        if self.policy.cache_at_requester() {
                            requester_caches.push((to, item));
                        }
                    } else {
                        // Pass-by caching decision at the relay
                        // (CacheData / BundleCache).
                        passby.push((to, item));
                    }
                }
                if out.delivered {
                    delivered.push(resp.query.id);
                }
            }
        }
        for &(query, from, to) in &relay_hops {
            ctx.probe().emit(|| ProbeEvent::ResponseRelay {
                at: now,
                query,
                from,
                to,
            });
        }
        for &id in &delivered {
            ctx.mark_delivered(id);
        }
        for &(node, item) in &passby {
            let pctx = self.policy_ctx(node, now);
            if self.policy.cache_passby(&item, pctx) {
                self.cache_at(ctx, node, item);
            }
        }
        for &(node, item) in &requester_caches {
            self.cache_at(ctx, node, item);
        }
        self.responses.retain(|r| !r.msg.is_delivered());
        delivered.clear();
        self.sx_delivered = delivered;
        passby.clear();
        self.sx_passby = passby;
        requester_caches.clear();
        self.sx_req_caches = requester_caches;
    }
}

impl<P: IncidentalPolicy> Scheme for IncidentalScheme<P> {
    fn on_data_generated(&mut self, ctx: &mut SimCtx<'_>, item: DataItem) {
        if !self.configured() {
            return;
        }
        self.registry.register(item);
        // The source always tries to keep its own data, evicting its
        // lowest-score cached items if necessary.
        let node = item.source;
        if !self.buffers[node.index()].fits(item.size) {
            while !self.buffers[node.index()].fits(item.size) {
                let victim = self.buffers[node.index()]
                    .iter()
                    .map(|d| {
                        let pctx = self.policy_ctx(node, ctx.now());
                        (self.policy.eviction_score(d, pctx), d.id)
                    })
                    .min_by(|x, y| x.0.total_cmp(&y.0).then_with(|| x.1.cmp(&y.1)));
                match victim {
                    Some((_, id)) => {
                        self.buffers[node.index()].remove(id);
                        ctx.note_replacements(1);
                        let at = ctx.now();
                        ctx.probe()
                            .emit(|| ProbeEvent::ReplacementEvicted { at, node, data: id });
                    }
                    None => break,
                }
            }
        }
        let _ = self.buffers[node.index()].insert(item);
    }

    fn on_query_issued(&mut self, ctx: &mut SimCtx<'_>, query: Query) {
        if !self.configured() {
            return;
        }
        self.registry.record_request(query.data, ctx.now());
        *self
            .local_seen
            .entry((query.requester, query.data))
            .or_insert(0) += 1;
        if self.buffers[query.requester.index()].contains(query.data) {
            ctx.mark_delivered(query.id);
            return;
        }
        let Some(item) = self.registry.get(query.data) else {
            return;
        };
        let destination = item.source;
        if destination == query.requester {
            // Own expired data regenerated? Nothing to route.
            return;
        }
        let mut msg = RoutedMessage::new(destination, ctx.query_size(), query.requester);
        if let ForwardingStrategy::SprayAndWait { initial_copies } = self.query_routing {
            msg = msg.with_copy_budget(initial_copies);
        }
        self.queries.push(QueryInFlight {
            query,
            msg,
            answered: false,
        });
    }

    fn on_contact(&mut self, ctx: &mut SimCtx<'_>, contact: Contact) {
        if !self.configured() {
            return;
        }
        self.node_contacts[contact.a.index()] += 1;
        self.node_contacts[contact.b.index()] += 1;
        self.prune(ctx);
        self.advance_queries(ctx, contact.a, contact.b);
        self.advance_responses(ctx, contact.a, contact.b);
    }

    fn on_epoch(&mut self, _ctx: &mut SimCtx<'_>, _epoch: dtn_sim::engine::Epoch) {
        // Incidental caching has no NCLs to re-elect; epochs are no-ops.
    }

    fn cache_stats(&self, now: Time) -> CacheStats {
        let mut copies = 0u64;
        let mut bytes = 0u64;
        let mut distinct = HashSet::new();
        for buf in &self.buffers {
            for item in buf.iter().filter(|d| d.is_alive(now)) {
                copies += 1;
                bytes += item.size;
                distinct.insert(item.id);
            }
        }
        CacheStats {
            copies,
            distinct: distinct.len() as u64,
            bytes,
        }
    }

    fn audit(&self, now: Time, report: &mut dtn_sim::audit::AuditReport) {
        // Incidental caching keeps no redundant copy indexes; buffer
        // byte-accounting is the only law with scheme-side state.
        dtn_sim::audit::check_buffers(&self.buffers, now, report);
    }
}

impl<P: IncidentalPolicy> CachingScheme for IncidentalScheme<P> {
    fn configure(&mut self, setup: &NetworkSetup<'_>) {
        self.oracle = Some(PathOracle::new(
            setup.capacities.len(),
            setup.horizon,
            dtn_core::time::Duration::hours(12),
        ));
        self.buffers = setup.capacities.iter().map(|&c| Buffer::new(c)).collect();
        self.node_contacts = vec![0; setup.capacities.len()];
        self.started_at = setup.now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::ids::QueryId;
    use dtn_core::time::Duration;
    use dtn_sim::engine::{SimConfig, Simulator, WorkloadEvent};
    use dtn_trace::synthetic::SyntheticTraceBuilder;
    use dtn_trace::trace::ContactTrace;

    fn busy_trace(seed: u64) -> ContactTrace {
        SyntheticTraceBuilder::new(16)
            .duration(Duration::days(2))
            .target_contacts(6_000)
            .seed(seed)
            .build()
    }

    fn run<P: IncidentalPolicy>(
        trace: &ContactTrace,
        policy: P,
        events: Vec<WorkloadEvent>,
        seed: u64,
    ) -> dtn_sim::metrics::Metrics {
        let mut sim = Simulator::new(
            trace,
            IncidentalScheme::new(policy),
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        );
        let mid = trace.midpoint();
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..trace.node_count() as u32)
            .map(|n| sim.buffer_capacity(NodeId(n)))
            .collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        });
        sim.add_workload(events);
        sim.run_to_end();
        sim.metrics().clone()
    }

    fn basic_events(trace: &ContactTrace) -> Vec<WorkloadEvent> {
        let mid = trace.midpoint();
        let mut events = vec![WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(0),
                NodeId(3),
                1000,
                mid + Duration::minutes(1),
                Duration::days(1),
            ),
        }];
        for n in 0..16u32 {
            if n != 3 {
                events.push(WorkloadEvent::IssueQuery {
                    at: mid + Duration::hours(2),
                    requester: NodeId(n),
                    data: DataId(0),
                    constraint: Duration::hours(16),
                });
            }
        }
        events
    }

    #[test]
    fn no_cache_satisfies_some_queries_from_source() {
        let trace = busy_trace(11);
        let m = run(&trace, NoCachePolicy, basic_events(&trace), 11);
        assert_eq!(m.queries_issued, 15);
        assert!(m.queries_satisfied > 0, "source must answer something");
    }

    #[test]
    fn random_cache_caches_at_requesters() {
        let trace = busy_trace(12);
        let m = run(&trace, RandomCachePolicy, basic_events(&trace), 12);
        // Requesters that received the item now cache it → copies grow
        // beyond the source's single copy.
        let peak = m.samples.iter().map(|s| s.copies).max().unwrap_or(0);
        assert!(peak >= 2, "expected requester copies, peak {peak}");
    }

    #[test]
    fn no_cache_never_exceeds_one_copy() {
        let trace = busy_trace(13);
        let m = run(&trace, NoCachePolicy, basic_events(&trace), 13);
        for s in &m.samples {
            assert!(s.copies <= 1, "NoCache grew {} copies", s.copies);
        }
    }

    #[test]
    fn cache_data_caches_popular_passby_data() {
        let trace = busy_trace(14);
        // Many queries → relays see the query repeatedly → popular.
        let m = run(&trace, CacheDataPolicy::default(), basic_events(&trace), 14);
        assert!(m.queries_satisfied > 0);
    }

    #[test]
    fn bundle_cache_outperforms_no_cache_on_success() {
        // The paper's headline ordering, on a small trace with many
        // requesters: Bundle/Random caching helps vs. no caching at all.
        let trace = busy_trace(15);
        let no = run(&trace, NoCachePolicy, basic_events(&trace), 15);
        let bundle = run(
            &trace,
            BundleCachePolicy::default(),
            basic_events(&trace),
            15,
        );
        assert!(
            bundle.queries_satisfied >= no.queries_satisfied,
            "bundle {} < nocache {}",
            bundle.queries_satisfied,
            no.queries_satisfied
        );
    }

    #[test]
    fn epidemic_routing_replicates_more_than_greedy() {
        // The same policy with epidemic query+response routing must move
        // at least as much data and satisfy at least as many queries on
        // a sparse trace.
        let trace = busy_trace(18);
        let events = basic_events(&trace);
        let greedy = run(&trace, RandomCachePolicy, events.clone(), 18);
        let mut sim = Simulator::new(
            &trace,
            IncidentalScheme::with_routing(
                RandomCachePolicy,
                crate::routing::ForwardingStrategy::Epidemic,
                crate::routing::ForwardingStrategy::Epidemic,
            ),
            SimConfig {
                seed: 18,
                ..SimConfig::default()
            },
        );
        let mid = trace.midpoint();
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..trace.node_count() as u32)
            .map(|n| sim.buffer_capacity(NodeId(n)))
            .collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        });
        sim.add_workload(events);
        sim.run_to_end();
        let epidemic = sim.metrics().clone();
        assert!(
            epidemic.queries_satisfied >= greedy.queries_satisfied,
            "epidemic {} < greedy {}",
            epidemic.queries_satisfied,
            greedy.queries_satisfied
        );
        assert!(
            epidemic.bytes_transmitted > greedy.bytes_transmitted,
            "epidemic must burn more bandwidth"
        );
    }

    #[test]
    fn contact_rate_has_no_warmup_bias() {
        let mut scheme = IncidentalScheme::new(BundleCachePolicy::default());
        let rt = dtn_core::rate::RateTable::new(2, Time(1_000));
        scheme.configure(&NetworkSetup {
            rate_table: &rt,
            now: Time(1_000),
            capacities: vec![1_000; 2],
            horizon: 3600.0,
            path_refresh: None,
        });
        scheme.node_contacts[0] = 5;
        // At the configure instant no time has been observed yet: no
        // rate estimate — not the raw contact count the old `.max(1.0)`
        // clamp reported (5.0 contacts/s here).
        assert_eq!(scheme.policy_ctx(NodeId(0), Time(1_000)).contact_rate, 0.0);
        // Once time elapses the estimate aligns with `RateEstimator`:
        // contacts / observed seconds.
        assert_eq!(scheme.policy_ctx(NodeId(0), Time(1_010)).contact_rate, 0.5);
    }

    #[test]
    fn unconfigured_scheme_is_inert() {
        let trace = busy_trace(16);
        let mut sim = Simulator::new(
            &trace,
            IncidentalScheme::new(NoCachePolicy),
            SimConfig::default(),
        );
        sim.add_workload(vec![WorkloadEvent::IssueQuery {
            at: Time(100),
            requester: NodeId(0),
            data: DataId(0),
            constraint: Duration::hours(1),
        }]);
        sim.run_to_end();
        assert_eq!(sim.metrics().bytes_transmitted, 0);
    }

    #[test]
    fn query_for_unknown_data_is_dropped() {
        let trace = busy_trace(17);
        let events = vec![WorkloadEvent::IssueQuery {
            at: trace.midpoint() + Duration::hours(1),
            requester: NodeId(0),
            data: DataId(77),
            constraint: Duration::hours(5),
        }];
        let m = run(&trace, NoCachePolicy, events, 17);
        assert_eq!(m.queries_satisfied, 0);
        let _ = QueryId(0); // silence unused import in some cfgs
    }
}
