//! End-to-end experiment runner: warm-up → NCL selection → workload →
//! metrics (the §VI-A protocol used by every table and figure).

use dtn_core::ids::NodeId;
use dtn_core::time::{Duration, Time};
use dtn_sim::engine::{SimConfig, Simulator};
use dtn_sim::metrics::Metrics;
use dtn_trace::trace::ContactTrace;
use dtn_workload::{Workload, WorkloadConfig};

use crate::baselines::{
    BundleCachePolicy, CacheDataPolicy, IncidentalScheme, NoCachePolicy, RandomCachePolicy,
};
use crate::intentional::{IntentionalConfig, IntentionalScheme, ResponseStrategy};
use crate::replacement::ReplacementKind;
use crate::routing::ForwardingStrategy;
use crate::{CachingScheme, NetworkSetup, SchemeKind};

/// All knobs of one experiment run, defaulting to the paper's §VI-B
/// setup (MIT Reality defaults: `K = 8`, `T_L` = 1 week,
/// `s_avg` = 100 Mb, Zipf `s = 1`, buffers 200–600 Mb).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of NCLs `K`.
    pub ncl_count: usize,
    /// Mean data lifetime `T_L`.
    pub mean_data_lifetime: Duration,
    /// Mean data size `s_avg` in bytes.
    pub mean_data_size: u64,
    /// Zipf exponent `s` of the query pattern.
    pub zipf_exponent: f64,
    /// Data-generation probability `p_G`.
    pub generation_probability: f64,
    /// Query time constraint; `None` = `T_L / 2`.
    pub query_constraint: Option<Duration>,
    /// Per-node buffer range in bytes.
    pub buffer_range: (u64, u64),
    /// Time horizon `T` (seconds) for path weights and NCL selection;
    /// `None` picks `T_L` (bounded to ≥ 1 h).
    pub horizon: Option<f64>,
    /// Cache replacement policy (Fig. 12 swaps this).
    pub replacement: ReplacementKind,
    /// Probabilistic response strategy (§V-C).
    pub response: ResponseStrategy,
    /// Algorithm 1 probabilistic selection (`true`, the paper's scheme)
    /// vs the deterministic basic strategy (`false`, §V-D-2 ablation).
    pub probabilistic_selection: bool,
    /// How the intentional scheme's data responses are forwarded back
    /// to requesters (§V-B: "any existing data forwarding protocol").
    pub response_routing: crate::routing::ForwardingStrategy,
    /// NCL selection strategy (the paper's path metric by default).
    pub ncl_selection: dtn_core::ncl::SelectionStrategy,
    /// Interval between cache-occupancy samples.
    pub sample_interval: Duration,
    /// Interval between maintenance epochs (online NCL re-election);
    /// `None` keeps the warm-up NCLs frozen for the whole run.
    pub epoch_interval: Option<Duration>,
    /// Overrides the scheme's default path-oracle refresh interval.
    pub path_refresh: Option<Duration>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            ncl_count: 8,
            mean_data_lifetime: Duration::weeks(1),
            mean_data_size: dtn_sim::engine::megabits(100),
            zipf_exponent: 1.0,
            generation_probability: 0.2,
            query_constraint: None,
            buffer_range: (
                dtn_sim::engine::megabits(200),
                dtn_sim::engine::megabits(600),
            ),
            horizon: None,
            replacement: ReplacementKind::UtilityKnapsack,
            response: ResponseStrategy::default(),
            probabilistic_selection: true,
            response_routing: crate::routing::ForwardingStrategy::Greedy,
            ncl_selection: dtn_core::ncl::SelectionStrategy::PathMetric,
            sample_interval: Duration::hours(6),
            epoch_interval: None,
            path_refresh: None,
        }
    }
}

impl ExperimentConfig {
    fn effective_horizon(&self) -> f64 {
        self.horizon
            .unwrap_or_else(|| self.mean_data_lifetime.as_secs_f64().max(3600.0))
    }
}

/// The outcome of one experiment run — one point of one curve in
/// Fig. 10–13.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Which scheme ran.
    pub scheme: SchemeKind,
    /// Queries issued during the measurement phase.
    pub queries_issued: u64,
    /// The paper's "successful ratio".
    pub success_ratio: f64,
    /// The paper's "data access delay", in hours.
    pub avg_delay_hours: f64,
    /// The paper's "caching overhead": cached copies per item.
    pub avg_copies_per_item: f64,
    /// The Fig. 12(c) metric: replacements per generated item.
    pub avg_replacements_per_item: f64,
    /// Data items generated.
    pub data_items: u64,
    /// Central nodes selected (empty for baselines without NCLs).
    pub central_nodes: Vec<NodeId>,
    /// Queries that reached each central node (NCL load balance; empty
    /// for baselines).
    pub ncl_query_load: Vec<u64>,
    /// Bytes transmitted per satisfied query (network cost of one
    /// successful access).
    pub bytes_per_satisfied_query: f64,
    /// Full raw metrics for deeper analysis.
    pub metrics: Metrics,
}

/// Builds an unconfigured scheme instance of the requested kind.
pub fn build_scheme(kind: SchemeKind, config: &ExperimentConfig) -> Box<dyn CachingScheme> {
    match kind {
        SchemeKind::NoCache => Box::new(IncidentalScheme::new(NoCachePolicy)),
        SchemeKind::RandomCache => Box::new(IncidentalScheme::new(RandomCachePolicy)),
        SchemeKind::CacheData => Box::new(IncidentalScheme::new(CacheDataPolicy::default())),
        SchemeKind::BundleCache => Box::new(IncidentalScheme::new(BundleCachePolicy::default())),
        SchemeKind::Flooding => Box::new(IncidentalScheme::with_routing(
            RandomCachePolicy,
            ForwardingStrategy::Epidemic,
            ForwardingStrategy::Epidemic,
        )),
        SchemeKind::Intentional => Box::new(IntentionalScheme::new(IntentionalConfig {
            ncl_count: config.ncl_count,
            response: config.response,
            replacement: config.replacement,
            probabilistic_selection: config.probabilistic_selection,
            response_routing: config.response_routing,
            ncl_selection: config.ncl_selection,
            ..IntentionalConfig::default()
        })),
    }
}

/// Runs one full experiment: the first half of `trace` is warm-up, the
/// second half carries the generated workload (§VI-A).
///
/// `seed` drives buffer assignment, workload generation and every
/// probabilistic protocol decision — the same seed reproduces the same
/// run exactly.
///
/// # Example
///
/// ```
/// use dtn_cache::experiment::{run_experiment, ExperimentConfig};
/// use dtn_cache::SchemeKind;
/// use dtn_core::time::Duration;
/// use dtn_trace::synthetic::SyntheticTraceBuilder;
///
/// let trace = SyntheticTraceBuilder::new(12)
///     .duration(Duration::days(1))
///     .target_contacts(2_000)
///     .seed(3)
///     .build();
/// let cfg = ExperimentConfig {
///     ncl_count: 2,
///     mean_data_lifetime: Duration::hours(4),
///     mean_data_size: 1 << 20,
///     ..ExperimentConfig::default()
/// };
/// let report = run_experiment(&trace, SchemeKind::Intentional, &cfg, 7);
/// assert!(report.success_ratio >= 0.0 && report.success_ratio <= 1.0);
/// ```
pub fn run_experiment(
    trace: &ContactTrace,
    kind: SchemeKind,
    config: &ExperimentConfig,
    seed: u64,
) -> ExperimentReport {
    run_experiment_with(trace, kind, build_scheme(kind, config), config, seed)
}

/// [`run_experiment`] with a caller-supplied scheme instance instead of
/// one built from `kind` — used to run alternative implementations of a
/// scheme (e.g. [`crate::reference::ReferenceIntentionalScheme`]) under
/// the exact same warm-up, buffers and workload. `kind` is only recorded
/// in the report.
pub fn run_experiment_with(
    trace: &ContactTrace,
    kind: SchemeKind,
    scheme: Box<dyn CachingScheme>,
    config: &ExperimentConfig,
    seed: u64,
) -> ExperimentReport {
    let sim_config = SimConfig {
        buffer_range: config.buffer_range,
        sample_interval: config.sample_interval,
        epoch_interval: config.epoch_interval,
        path_refresh: config.path_refresh,
        seed,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(trace, scheme, sim_config);

    // Phase 1: warm-up over the first half of the trace.
    let mid = trace.midpoint();
    sim.run_until(mid);

    // Phase 2: NCL selection and scheme configuration from the
    // accumulated network information.
    let capacities: Vec<u64> = (0..trace.node_count() as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    let setup = NetworkSetup {
        rate_table: &rate_table,
        now: mid,
        capacities,
        horizon: config.effective_horizon(),
        path_refresh: config.path_refresh,
    };
    sim.scheme_mut().configure(&setup);

    // Phase 3: workload over the second half.
    let end = Time(trace.duration().as_secs());
    let workload_cfg = WorkloadConfig {
        generation_probability: config.generation_probability,
        mean_lifetime: config.mean_data_lifetime,
        mean_size: config.mean_data_size,
        zipf_exponent: config.zipf_exponent,
        query_constraint: config.query_constraint,
        window: (mid, end),
        seed,
    };
    let workload = Workload::generate(trace.node_count(), &workload_cfg);
    let data_items = workload.items().len() as u64;
    sim.add_workload(workload.into_events());
    sim.run_to_end();

    // The central set is read back *after* the run so reports reflect
    // any online re-elections (with epochs off it equals the warm-up
    // selection).
    let metrics = sim.metrics().clone();
    ExperimentReport {
        scheme: kind,
        queries_issued: metrics.queries_issued,
        success_ratio: metrics.success_ratio(),
        avg_delay_hours: metrics.avg_delay_hours(),
        avg_copies_per_item: metrics.avg_copies_per_item(),
        avg_replacements_per_item: metrics.avg_replacements_per_item(),
        data_items,
        central_nodes: sim.scheme().central_nodes().to_vec(),
        ncl_query_load: sim.scheme().ncl_query_load().to_vec(),
        bytes_per_satisfied_query: metrics.bytes_per_satisfied_query(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_trace::synthetic::SyntheticTraceBuilder;

    fn small_trace(seed: u64) -> ContactTrace {
        SyntheticTraceBuilder::new(14)
            .duration(Duration::days(2))
            .target_contacts(5_000)
            .seed(seed)
            .build()
    }

    fn small_config() -> ExperimentConfig {
        ExperimentConfig {
            ncl_count: 3,
            mean_data_lifetime: Duration::hours(8),
            mean_data_size: 1 << 20, // 1 MiB
            buffer_range: (8 << 20, 16 << 20),
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn every_scheme_runs_end_to_end() {
        let trace = small_trace(1);
        let cfg = small_config();
        for kind in SchemeKind::ALL {
            let report = run_experiment(&trace, kind, &cfg, 1);
            assert!(report.queries_issued > 0, "{kind}: no queries issued");
            assert!(
                (0.0..=1.0).contains(&report.success_ratio),
                "{kind}: bad ratio"
            );
            if kind == SchemeKind::Intentional {
                assert_eq!(report.central_nodes.len(), 3);
            } else {
                assert!(report.central_nodes.is_empty());
            }
        }
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let trace = small_trace(2);
        let cfg = small_config();
        let a = run_experiment(&trace, SchemeKind::Intentional, &cfg, 9);
        let b = run_experiment(&trace, SchemeKind::Intentional, &cfg, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn intentional_beats_no_cache_on_success_ratio() {
        // The paper's headline result, at test scale. Caching only helps
        // when sources are hard to reach directly, so use a sparse,
        // strongly heterogeneous trace (the realistic DTN regime) and
        // average over seeds to damp variance.
        let trace = SyntheticTraceBuilder::new(24)
            .duration(Duration::days(3))
            .target_contacts(4_000)
            .edge_density(0.15)
            .activity_sigma(2.0)
            .seed(3)
            .build();
        let cfg = ExperimentConfig {
            ncl_count: 3,
            mean_data_lifetime: Duration::hours(10),
            mean_data_size: 1 << 20,
            buffer_range: (8 << 20, 16 << 20),
            ..ExperimentConfig::default()
        };
        let mut ours = 0.0;
        let mut theirs = 0.0;
        for seed in 0..4 {
            ours += run_experiment(&trace, SchemeKind::Intentional, &cfg, seed).success_ratio;
            theirs += run_experiment(&trace, SchemeKind::NoCache, &cfg, seed).success_ratio;
        }
        assert!(
            ours > theirs,
            "intentional {ours:.3} must beat nocache {theirs:.3}"
        );
    }

    #[test]
    fn default_config_matches_paper_section_6b() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.ncl_count, 8);
        assert_eq!(cfg.mean_data_lifetime, Duration::weeks(1));
        assert_eq!(cfg.mean_data_size, dtn_sim::engine::megabits(100));
        assert_eq!(cfg.zipf_exponent, 1.0);
        assert_eq!(cfg.generation_probability, 0.2);
        assert_eq!(
            cfg.buffer_range,
            (
                dtn_sim::engine::megabits(200),
                dtn_sim::engine::megabits(600)
            )
        );
    }
}
