//! DTN forwarding strategies for returning data to requesters.
//!
//! §V-B of the paper: "The data can be sent to the requester by any
//! existing data forwarding protocol in DTNs." This module provides the
//! classic options as a pluggable [`ForwardingStrategy`]:
//!
//! - [`Direct`](ForwardingStrategy::Direct) — the holder waits until it
//!   meets the destination itself (Direct Delivery),
//! - [`Greedy`](ForwardingStrategy::Greedy) — single-copy delegation
//!   forwarding along rising opportunistic-path weight (what the paper's
//!   own push/pull uses, §V-A),
//! - [`SprayAndWait`](ForwardingStrategy::SprayAndWait) — binary
//!   Spray-and-Wait: `L` logical copies split in half at each spray
//!   contact, then direct delivery,
//! - [`Epidemic`](ForwardingStrategy::Epidemic) — replicate to every
//!   encountered node (delivery-optimal, bandwidth-hungry).
//!
//! [`RoutedMessage`] tracks the copies of one message and advances them
//! on contacts, charging every replication/move to the simulator's link
//! budget through a caller-supplied `transmit` closure.

use dtn_core::ids::NodeId;
use dtn_core::time::Time;
use dtn_sim::engine::Link;
use dtn_sim::oracle::PathOracle;

use crate::common::better_relay;

/// How a message travels toward its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingStrategy {
    /// Hold until meeting the destination.
    Direct,
    /// Single copy, forwarded to relays with strictly better
    /// opportunistic-path weight to the destination.
    Greedy,
    /// Binary Spray-and-Wait with the given initial copy budget.
    SprayAndWait {
        /// Total logical copies `L` (≥ 1).
        initial_copies: u32,
    },
    /// Unbounded replication to every encountered node.
    Epidemic,
}

impl Default for ForwardingStrategy {
    /// Greedy delegation — the relay rule the paper itself uses for the
    /// push and pull phases.
    fn default() -> Self {
        ForwardingStrategy::Greedy
    }
}

/// One physical copy of a routed message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RoutedCopy {
    carrier: NodeId,
    /// Remaining logical copies (Spray-and-Wait tokens); 1 elsewhere.
    tokens: u32,
}

/// What happened to a message during one contact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContactOutcome {
    /// The destination received the message during this contact.
    pub delivered: bool,
    /// Relay hops performed: `(from, to)` pairs, destination hops
    /// included.
    pub transfers: Vec<(NodeId, NodeId)>,
}

/// A message with one destination and a set of carried copies.
///
/// # Example
///
/// ```
/// use dtn_cache::routing::{ForwardingStrategy, RoutedMessage};
/// use dtn_core::ids::NodeId;
/// use dtn_core::rate::RateTable;
/// use dtn_core::time::{Duration, Time};
/// use dtn_sim::engine::Link;
/// use dtn_sim::oracle::PathOracle;
///
/// struct Wire(RateTable);
/// impl Link for Wire {
///     fn rate_table(&self) -> &RateTable { &self.0 }
///     fn try_transmit(&mut self, _bytes: u64) -> bool { true }
/// }
///
/// let mut wire = Wire(RateTable::new(3, Time::ZERO));
/// let mut oracle = PathOracle::new(3, 3600.0, Duration::hours(1));
/// let mut msg = RoutedMessage::new(NodeId(2), 100, NodeId(0));
/// // Direct delivery: carrying node 0 meets the destination 2.
/// let out = msg.on_contact(
///     ForwardingStrategy::Direct,
///     &mut oracle,
///     Time(10),
///     NodeId(0),
///     NodeId(2),
///     &mut wire,
/// );
/// assert!(out.delivered);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedMessage {
    destination: NodeId,
    size: u64,
    copies: Vec<RoutedCopy>,
    delivered: bool,
}

impl RoutedMessage {
    /// Creates a message at `origin` heading for `destination`.
    ///
    /// # Panics
    ///
    /// Panics if `origin == destination` (nothing to route) or
    /// `size == 0`.
    pub fn new(destination: NodeId, size: u64, origin: NodeId) -> Self {
        assert_ne!(origin, destination, "message already at its destination");
        assert!(size > 0, "messages have positive size");
        RoutedMessage {
            destination,
            size,
            copies: vec![RoutedCopy {
                carrier: origin,
                tokens: 1,
            }],
            delivered: false,
        }
    }

    /// Sets the Spray-and-Wait token budget on the initial copy.
    pub fn with_copy_budget(mut self, tokens: u32) -> Self {
        for c in &mut self.copies {
            c.tokens = tokens.max(1);
        }
        self
    }

    /// The destination node.
    pub fn destination(&self) -> NodeId {
        self.destination
    }

    /// Message size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Whether the destination has received the message.
    pub fn is_delivered(&self) -> bool {
        self.delivered
    }

    /// Nodes currently carrying a copy.
    pub fn carriers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.copies.iter().map(|c| c.carrier)
    }

    /// Number of physical copies in flight.
    pub fn copy_count(&self) -> usize {
        self.copies.len()
    }

    /// Whether `node` currently carries a copy.
    pub fn carries(&self, node: NodeId) -> bool {
        self.carried_by(node).is_some()
    }

    fn carried_by(&self, node: NodeId) -> Option<usize> {
        self.copies.iter().position(|c| c.carrier == node)
    }

    /// Advances the message over a contact between `a` and `b`.
    ///
    /// Every attempted hop is charged to `link` (wire it to
    /// [`SimCtx::link_access`](dtn_sim::engine::SimCtx::link_access)).
    ///
    /// Returns what happened; once delivered, later contacts are no-ops.
    pub fn on_contact(
        &mut self,
        strategy: ForwardingStrategy,
        oracle: &mut PathOracle,
        now: Time,
        a: NodeId,
        b: NodeId,
        link: &mut impl Link,
    ) -> ContactOutcome {
        let mut outcome = ContactOutcome::default();
        outcome.delivered = self.advance_inner(strategy, oracle, now, a, b, link, &mut |f, t| {
            outcome.transfers.push((f, t))
        });
        outcome
    }

    /// Advances the message like [`on_contact`](Self::on_contact) but
    /// only reports delivery, skipping the per-hop transfer log — for
    /// hot paths that never read `ContactOutcome::transfers`. Same state
    /// transitions and the same `link` charge sequence.
    pub fn on_contact_fast(
        &mut self,
        strategy: ForwardingStrategy,
        oracle: &mut PathOracle,
        now: Time,
        a: NodeId,
        b: NodeId,
        link: &mut impl Link,
    ) -> bool {
        self.advance_inner(strategy, oracle, now, a, b, link, &mut |_, _| {})
    }

    /// Shared advancement core; `transfers` observes each relay hop.
    /// Returns whether the destination received the message during this
    /// contact.
    #[allow(clippy::too_many_arguments)]
    fn advance_inner(
        &mut self,
        strategy: ForwardingStrategy,
        oracle: &mut PathOracle,
        now: Time,
        a: NodeId,
        b: NodeId,
        link: &mut impl Link,
        transfers: &mut dyn FnMut(NodeId, NodeId),
    ) -> bool {
        if self.delivered {
            return false;
        }
        for (from, to) in [(a, b), (b, a)] {
            let Some(idx) = self.carried_by(from) else {
                continue;
            };
            // Delivery dominates every strategy.
            if to == self.destination {
                if link.try_transmit(self.size) {
                    self.delivered = true;
                    transfers(from, to);
                    return true;
                }
                return false;
            }
            match strategy {
                ForwardingStrategy::Direct => {}
                ForwardingStrategy::Greedy => {
                    if self.carried_by(to).is_none()
                        && better_relay(oracle, link.rate_table(), now, from, to, self.destination)
                        && link.try_transmit(self.size)
                    {
                        self.copies[idx].carrier = to;
                        transfers(from, to);
                    }
                }
                ForwardingStrategy::SprayAndWait { .. } => {
                    let tokens = self.copies[idx].tokens;
                    if tokens > 1 && self.carried_by(to).is_none() && link.try_transmit(self.size) {
                        let given = tokens / 2;
                        self.copies[idx].tokens = tokens - given;
                        self.copies.push(RoutedCopy {
                            carrier: to,
                            tokens: given,
                        });
                        transfers(from, to);
                    }
                }
                ForwardingStrategy::Epidemic => {
                    if self.carried_by(to).is_none() && link.try_transmit(self.size) {
                        self.copies.push(RoutedCopy {
                            carrier: to,
                            tokens: 1,
                        });
                        transfers(from, to);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::rate::RateTable;
    use dtn_core::time::Duration;

    /// Test link: programmable success plus a rate table.
    struct Wire {
        rates: RateTable,
        up: bool,
    }

    impl Link for Wire {
        fn rate_table(&self) -> &RateTable {
            &self.rates
        }
        fn try_transmit(&mut self, _bytes: u64) -> bool {
            self.up
        }
    }

    fn rates_line() -> RateTable {
        // 0 — 1 — 2 — 3 with frequent contacts
        let mut r = RateTable::new(4, Time::ZERO);
        for t in 1..=5u64 {
            r.record(NodeId(0), NodeId(1), Time(t * 100));
            r.record(NodeId(1), NodeId(2), Time(t * 100));
            r.record(NodeId(2), NodeId(3), Time(t * 100));
        }
        r
    }

    fn oracle() -> PathOracle {
        PathOracle::new(4, 3600.0, Duration::hours(1))
    }

    fn wire() -> Wire {
        Wire {
            rates: rates_line(),
            up: true,
        }
    }

    #[test]
    fn direct_only_delivers_to_destination() {
        let mut w = wire();
        let mut o = oracle();
        let mut m = RoutedMessage::new(NodeId(3), 100, NodeId(0));
        // Meeting a great relay does nothing under Direct.
        let out = m.on_contact(
            ForwardingStrategy::Direct,
            &mut o,
            Time(600),
            NodeId(0),
            NodeId(2),
            &mut w,
        );
        assert!(!out.delivered && out.transfers.is_empty());
        assert_eq!(m.copy_count(), 1);
        // Meeting the destination delivers.
        let out = m.on_contact(
            ForwardingStrategy::Direct,
            &mut o,
            Time(700),
            NodeId(3),
            NodeId(0),
            &mut w,
        );
        assert!(out.delivered);
        assert!(m.is_delivered());
    }

    #[test]
    fn greedy_moves_single_copy_toward_destination() {
        let mut w = wire();
        let mut o = oracle();
        let mut m = RoutedMessage::new(NodeId(3), 100, NodeId(0));
        let out = m.on_contact(
            ForwardingStrategy::Greedy,
            &mut o,
            Time(600),
            NodeId(0),
            NodeId(1),
            &mut w,
        );
        assert_eq!(out.transfers, vec![(NodeId(0), NodeId(1))]);
        assert_eq!(m.copy_count(), 1, "greedy keeps a single copy");
        assert_eq!(m.carriers().next(), Some(NodeId(1)));
        // Backwards move is refused.
        let out = m.on_contact(
            ForwardingStrategy::Greedy,
            &mut o,
            Time(700),
            NodeId(1),
            NodeId(0),
            &mut w,
        );
        assert!(out.transfers.is_empty());
    }

    #[test]
    fn spray_splits_tokens_binary() {
        let mut w = wire();
        let mut o = oracle();
        let mut m = RoutedMessage::new(NodeId(3), 100, NodeId(0)).with_copy_budget(4);
        let strat = ForwardingStrategy::SprayAndWait { initial_copies: 4 };
        let _ = m.on_contact(strat, &mut o, Time(600), NodeId(0), NodeId(1), &mut w);
        assert_eq!(m.copy_count(), 2);
        // 4 tokens split 2/2; the new copy can spray once more…
        let _ = m.on_contact(strat, &mut o, Time(700), NodeId(1), NodeId(2), &mut w);
        assert_eq!(m.copy_count(), 3);
        // …but single-token copies wait for the destination.
        let out = m.on_contact(strat, &mut o, Time(800), NodeId(2), NodeId(0), &mut w);
        assert!(out.transfers.is_empty(), "wait phase must not spray");
    }

    #[test]
    fn epidemic_replicates_everywhere() {
        let mut w = wire();
        let mut o = oracle();
        let mut m = RoutedMessage::new(NodeId(3), 100, NodeId(0));
        let _ = m.on_contact(
            ForwardingStrategy::Epidemic,
            &mut o,
            Time(600),
            NodeId(0),
            NodeId(1),
            &mut w,
        );
        let _ = m.on_contact(
            ForwardingStrategy::Epidemic,
            &mut o,
            Time(700),
            NodeId(1),
            NodeId(2),
            &mut w,
        );
        assert_eq!(m.copy_count(), 3);
        // No duplicate copies at the same node.
        let _ = m.on_contact(
            ForwardingStrategy::Epidemic,
            &mut o,
            Time(800),
            NodeId(0),
            NodeId(1),
            &mut w,
        );
        assert_eq!(m.copy_count(), 3);
    }

    #[test]
    fn failed_transmit_blocks_everything() {
        let mut w = wire();
        w.up = false;
        let mut o = oracle();
        let mut m = RoutedMessage::new(NodeId(3), 100, NodeId(0));
        let out = m.on_contact(
            ForwardingStrategy::Epidemic,
            &mut o,
            Time(600),
            NodeId(0),
            NodeId(3),
            &mut w,
        );
        assert!(!out.delivered);
        assert!(!m.is_delivered());
        assert_eq!(m.copy_count(), 1);
    }

    #[test]
    fn delivered_message_ignores_later_contacts() {
        let mut w = wire();
        let mut o = oracle();
        let mut m = RoutedMessage::new(NodeId(3), 100, NodeId(0));
        let _ = m.on_contact(
            ForwardingStrategy::Greedy,
            &mut o,
            Time(600),
            NodeId(0),
            NodeId(3),
            &mut w,
        );
        assert!(m.is_delivered());
        let out = m.on_contact(
            ForwardingStrategy::Epidemic,
            &mut o,
            Time(700),
            NodeId(3),
            NodeId(1),
            &mut w,
        );
        assert_eq!(out, ContactOutcome::default());
    }

    #[test]
    #[should_panic(expected = "already at its destination")]
    fn message_to_self_panics() {
        let _ = RoutedMessage::new(NodeId(1), 10, NodeId(1));
    }

    #[test]
    fn fast_path_matches_logged_path() {
        // on_contact and on_contact_fast must produce identical state and
        // delivery results for the same contact sequence.
        let mut w = wire();
        let mut o = oracle();
        let mut logged = RoutedMessage::new(NodeId(3), 100, NodeId(0));
        let mut fast = logged.clone();
        for (a, b, t) in [(0u32, 1u32, 600u64), (1, 2, 700), (2, 3, 800)] {
            let out = logged.on_contact(
                ForwardingStrategy::Greedy,
                &mut o,
                Time(t),
                NodeId(a),
                NodeId(b),
                &mut w,
            );
            let delivered = fast.on_contact_fast(
                ForwardingStrategy::Greedy,
                &mut o,
                Time(t),
                NodeId(a),
                NodeId(b),
                &mut w,
            );
            assert_eq!(out.delivered, delivered);
            assert_eq!(logged, fast);
        }
        assert!(fast.is_delivered());
        assert!(
            fast.carries(NodeId(2)),
            "copy stays where it delivered from"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn strategy_strategy() -> impl Strategy<Value = ForwardingStrategy> {
            prop_oneof![
                Just(ForwardingStrategy::Direct),
                Just(ForwardingStrategy::Greedy),
                (2u32..16).prop_map(|l| ForwardingStrategy::SprayAndWait { initial_copies: l }),
                Just(ForwardingStrategy::Epidemic),
            ]
        }

        proptest! {
            /// Under arbitrary contact sequences: carriers stay unique,
            /// spray never exceeds its token budget, delivery is sticky,
            /// and total spray tokens are conserved until delivery.
            #[test]
            fn copies_respect_invariants(
                strategy in strategy_strategy(),
                contacts in prop::collection::vec((0u32..6, 0u32..6), 1..40),
                origin in 0u32..5,
            ) {
                let mut w = wire();
                // Extend the rate table to 6 nodes for this test.
                w.rates = {
                    let mut r = RateTable::new(6, Time::ZERO);
                    for t in 1..=5u64 {
                        r.record(NodeId(0), NodeId(1), Time(t * 100));
                        r.record(NodeId(1), NodeId(2), Time(t * 100));
                        r.record(NodeId(2), NodeId(3), Time(t * 100));
                        r.record(NodeId(3), NodeId(4), Time(t * 100));
                        r.record(NodeId(4), NodeId(5), Time(t * 100));
                    }
                    r
                };
                let mut o = PathOracle::new(6, 3600.0, Duration::hours(1));
                let dest = NodeId(5);
                let origin = NodeId(origin);
                prop_assume!(origin != dest);
                let budget = match strategy {
                    ForwardingStrategy::SprayAndWait { initial_copies } => initial_copies,
                    _ => 1,
                };
                let mut m = RoutedMessage::new(dest, 10, origin).with_copy_budget(budget);
                let mut was_delivered = false;
                for (i, (a, b)) in contacts.into_iter().enumerate() {
                    if a == b {
                        continue;
                    }
                    let out = m.on_contact(
                        strategy,
                        &mut o,
                        Time(1000 + i as u64),
                        NodeId(a),
                        NodeId(b),
                        &mut w,
                    );
                    // Carriers are unique.
                    let mut carriers: Vec<NodeId> = m.carriers().collect();
                    carriers.sort();
                    let len = carriers.len();
                    carriers.dedup();
                    prop_assert_eq!(carriers.len(), len, "duplicate carriers");
                    // Spray copy count bounded by the budget.
                    if let ForwardingStrategy::SprayAndWait { initial_copies } = strategy {
                        prop_assert!(m.copy_count() <= initial_copies as usize);
                    }
                    if matches!(strategy, ForwardingStrategy::Direct | ForwardingStrategy::Greedy) {
                        prop_assert_eq!(m.copy_count(), 1);
                    }
                    // Delivery is sticky: once delivered, stays delivered
                    // and nothing further happens.
                    if was_delivered {
                        prop_assert_eq!(out, ContactOutcome::default());
                    }
                    was_delivered |= m.is_delivered();
                }
            }
        }
    }
}
